"""A leaderboard that survives a flaky estimator and a killed server.

Two failure stories the audit batch job cannot tell, on one 4-party
MNIST-like cell:

**Act 1 — degraded, never down.**  The serving process runs with the
full resilience kit armed: per-query deadlines, a bounded admission
queue, and a circuit breaker per run.  Mid-serving, the run's estimator
turns hostile (seeded chaos injection: every compute raises).  Queries
keep answering — the last good leaderboard, marked ``"stale": true`` —
the breaker trips after two consecutive failures, ``/healthz`` flips to
``degraded``, and the moment the estimator heals, one half-open probe
closes the breaker and fresh numbers flow again.  No query ever saw a
bare 500.

**Act 2 — killed, recovered, bit-for-bit.**  A second service writes
every registration and ingest to a write-ahead log (fsync per record,
checksummed).  The process dies without any shutdown handshake; a fresh
process replays the WAL with :func:`repro.serve.recover`, rebuilds the
run to the exact ingested epoch, and serves contribution totals that are
``np.array_equal`` to the pre-crash answer.

Run:  PYTHONPATH=src python examples/resilient_leaderboard.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.workloads import build_hfl_workload
from repro.hfl.log import TrainingLog
from repro.io import save_training_log
from repro.serve import (
    ChaosPolicy,
    EvaluationService,
    WriteAheadLog,
    inject_chaos,
    recover,
)
from repro.serve.http import register_from_spec

DATASET = "mnist"
N_PARTIES = 4
EPOCHS = 6
N_SAMPLES = 300
SEED = 0


def act_one_degraded_serving(cell) -> None:
    print("=== act 1: chaos at the estimator, stale answers, healing ===")
    log = cell.result.log
    service = EvaluationService(
        query_deadline_ms=250.0,
        admission_limit=64,
        breaker_failures=2,
        breaker_reset_s=0.0,  # half-open immediately: heal on next probe
    )
    with service:
        run_id = service.register_hfl(
            log.participant_ids, cell.federation.validation, cell.model_factory
        )
        service.ingest_log(
            run_id,
            TrainingLog(
                participant_ids=log.participant_ids,
                records=log.records[: EPOCHS - 1],
            ),
        )
        good = service.leaderboard(run_id)
        leader = good["leaderboard"][0]
        print(
            f"epoch {good['epochs']}: leader is party {leader['participant']} "
            f"({leader['contribution']:+.5f}), stale={good['stale']}"
        )

        # The estimator turns hostile: every compute now raises.
        policy = ChaosPolicy(seed=7, error_prob=1.0)
        inject_chaos(service, run_id, policy)
        policy.disarm()
        service.ingest(run_id, log.records[EPOCHS - 1])  # new epoch arrives
        policy.arm()

        for attempt in (1, 2):
            stale = service.leaderboard(run_id)
            print(
                f"failure {attempt}: served last good leaderboard, "
                f"stale={stale['stale']}, epochs={stale['epochs']}"
            )
        health = service.health()
        breaker = service.stats()["breakers"][run_id]
        print(
            f"healthz status: {health['status']} "
            f"(degraded runs: {health['degraded_runs']}, "
            f"breaker opened {breaker['opens']}x)"
        )

        policy.disarm()  # the estimator heals; next query is the probe
        fresh = service.leaderboard(run_id)
        print(
            f"healed: stale={fresh['stale']}, epochs={fresh['epochs']}, "
            f"healthz status: {service.health()['status']}"
        )


def act_two_crash_and_recover(cell, workdir: Path) -> None:
    print("\n=== act 2: SIGKILL the registry, replay the WAL ===")
    log_path = workdir / "audit_run.npz"
    save_training_log(cell.result.log, log_path)

    before = EvaluationService(wal=WriteAheadLog(workdir / "wal"))
    register_from_spec(
        before,
        {
            "kind": "hfl",
            "log_path": str(log_path),
            "dataset": DATASET,
            "seed": SEED,
            "n_samples": N_SAMPLES,
            "run_id": "audit",
        },
    )
    want = before.report("audit").totals
    print(
        f"pre-crash: run 'audit' at {cell.result.log.n_epochs} epochs, "
        f"{len(before.wal.replay())} WAL records fsync'd"
    )
    # The process dies here.  Closing the file handle is all a SIGKILL
    # would do: every append was already flushed and fsync'd, so the
    # bytes on disk are identical either way.
    before.wal._fh.close()

    after = EvaluationService()
    report = recover(after, WriteAheadLog(workdir / "wal"))
    with after:
        print(f"recovery: {report.summary()}")
        got = after.report("audit").totals
        print(
            "recovered totals bit-for-bit equal pre-crash: "
            f"{np.array_equal(got, want)}"
        )
        board = after.leaderboard("audit")["leaderboard"]
        print("leaderboard served by the recovered process (best first):")
        for row in board:
            print(
                f"  #{row['rank']} party {row['participant']}: "
                f"{row['contribution']:+.5f}"
            )


def main() -> None:
    cell = build_hfl_workload(
        DATASET, n_parties=N_PARTIES, epochs=EPOCHS, n_samples=N_SAMPLES, seed=SEED
    )
    act_one_degraded_serving(cell)
    with tempfile.TemporaryDirectory() as tmp:
        act_two_crash_and_recover(cell, Path(tmp))


if __name__ == "__main__":
    main()
