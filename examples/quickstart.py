"""Quickstart: estimate participant contributions in 30 lines.

Builds a 5-participant horizontal federation on synthetic MNIST-like data
(one participant's labels half-corrupted, one holding class-skewed data),
trains FedSGD, and prints each participant's DIG-FL contribution next to
its ground-truth data quality.

Run:  python examples/quickstart.py
"""

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_hfl_model


def main() -> None:
    federation = build_hfl_federation(
        mnist_like(2000, seed=0),
        n_parties=5,
        n_mislabeled=1,  # one participant gets 50% wrong labels
        n_noniid=1,  # one participant holds only a few classes
        seed=0,
    )

    def model_factory():
        return make_hfl_model("mnist", seed=0)

    trainer = HFLTrainer(model_factory, epochs=15, lr_schedule=LRSchedule(0.5))
    result = trainer.train(
        federation.locals, federation.validation, track_validation=True
    )
    print(f"final validation accuracy: {result.log.records[-1].val_accuracy:.3f}")

    # DIG-FL Algorithm 2: contributions from the training log alone —
    # no retraining, no access to any participant's data.
    report = estimate_hfl_resource_saving(
        result.log, federation.validation, model_factory
    )

    print("\nparticipant  quality      contribution")
    for i, (quality, phi) in enumerate(zip(federation.qualities, report.totals)):
        print(f"{i:>11}  {quality:<11}  {phi:+.4f}")
    print(f"\nranking (best first): {report.ranking()}")
    print(f"estimation took {report.ledger.compute_seconds*1000:.1f} ms, "
          f"{report.ledger.total_comm_bytes} extra bytes of communication")


if __name__ == "__main__":
    main()
