"""A fully traced federated run: spans next to contribution scores.

Scenario: a five-party federation trains under the thread-pool runtime
with the tracer armed.  Every round and every participant's local-update
task becomes a span, so after the run the operator can lay the *slowest*
work of each round directly beside that round's DIG-FL contribution
column — was the most expensive participant also the most valuable one?
The whole trace is then exported as JSONL, the same file a ``repro serve
--trace --trace-export`` deployment would produce, and read back with
:func:`repro.obs.load_jsonl` to show the export round-trips.

Run:  PYTHONPATH=src python examples/traced_run.py
"""

import os
import tempfile

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_hfl_model
from repro.obs import Observability, load_jsonl, slowest_spans
from repro.runtime import FederatedRuntime, RuntimeConfig

N_PARTIES = 5
EPOCHS = 6


def main() -> None:
    federation = build_hfl_federation(
        mnist_like(1500, seed=7),
        n_parties=N_PARTIES,
        n_mislabeled=1,
        mislabel_fraction=0.5,
        seed=7,
    )

    def model_factory():
        return make_hfl_model("mnist", seed=7)

    obs = Observability(trace=True)
    trainer = HFLTrainer(model_factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5))
    runtime = FederatedRuntime(
        RuntimeConfig(executor="threads", workers=3), obs=obs
    )
    result = runtime.run_hfl(trainer, federation.locals, federation.validation)

    report = estimate_hfl_resource_saving(
        result.log, federation.validation, model_factory
    )

    spans = obs.tracer.spans()
    tasks_by_round: dict[int, list] = {}
    for span in spans:
        if span.name == "engine.task":
            tasks_by_round.setdefault(span.attributes["epoch"], []).append(span)

    print("round  slowest task        duration  round contributions (per party)")
    for epoch in sorted(tasks_by_round):
        (slowest,) = slowest_spans(tasks_by_round[epoch], n=1)
        row = "  ".join(f"{v:+.4f}" for v in report.per_epoch[epoch - 1])
        print(
            f"{epoch:>5}  party {slowest.attributes['party']:<4} "
            f"{'':<7} {slowest.duration_s * 1e3:>7.2f}ms  {row}"
        )

    worst = min(range(N_PARTIES), key=lambda i: report.totals[i])
    mislabeled = federation.qualities.index("mislabeled")
    print(
        f"\nlowest total contribution: party {worst} "
        f"(mislabeled party is {mislabeled})"
    )

    path = os.path.join(tempfile.mkdtemp(prefix="repro_trace_"), "run.jsonl")
    count = obs.tracer.export_jsonl(path)
    rows = load_jsonl(path)
    roots = [row for row in rows if row["parent_id"] is None]
    print(f"exported {count} spans -> {path}")
    print(
        f"read back {len(rows)} spans, {len(roots)} root(s), "
        f"statuses all ok: {all(row['status'] == 'ok' for row in rows)}"
    )


if __name__ == "__main__":
    main()
