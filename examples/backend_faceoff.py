"""Backend face-off: one training run, every contribution estimator.

Trains a small horizontal federation once (one participant's labels
half-corrupted), then asks every backend registered in
:mod:`repro.estimators` — DIG-FL's first-order estimator, GTG-Shapley's
guided truncation Monte-Carlo, DPVS-style dynamic pruning — the same
question from the same training log.  Prints each backend's leaderboard
side by side and the volatility report: per-participant coefficient of
variation, per-backend rank stability across epochs, and the pairwise
Spearman agreement matrix.

Run:  python examples/backend_faceoff.py
"""

from repro.core import backend_names, get_backend
from repro.data import build_hfl_federation, mnist_like
from repro.estimators import volatility_report
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_mlp_classifier


def main() -> None:
    federation = build_hfl_federation(
        mnist_like(600, seed=0),
        n_parties=4,
        n_mislabeled=1,  # one participant gets 50% wrong labels
        seed=0,
    )

    def model_factory():
        return make_mlp_classifier(100, 10, hidden=(16,), seed=0)

    trainer = HFLTrainer(model_factory, epochs=6, lr_schedule=LRSchedule(0.5))
    result = trainer.train(
        federation.locals, federation.validation, track_validation=True
    )

    # Train once, estimate with everything: each backend replays the
    # same log, so the spread below is methodology, not training noise.
    reports = {}
    for name in backend_names():
        backend = get_backend(name)
        if backend.supports("hfl"):
            reports[name] = backend.estimate_hfl(
                result.log, federation.validation, model_factory
            )

    print("leaderboards (best participant first)")
    for name, report in reports.items():
        print(f"  {name:<12} {report.ranking()}   method={report.method}")

    print("\nper-backend totals")
    header = "  ".join(f"p{i}({q[:4]})" for i, q in enumerate(federation.qualities))
    print(f"{'backend':<12}  {header}")
    for name, report in reports.items():
        cells = "  ".join(f"{v:+8.4f}" for v in report.totals)
        print(f"{name:<12}  {cells}")

    print()
    print(volatility_report(reports).table())

    sampled = reports["gtg_shapley"].extra["gtg"]
    print(
        f"\ngtg_shapley budget: {sampled['permutations_run']} permutations, "
        f"{sampled['coalition_evaluations']} coalition evaluations, "
        f"{sampled['walks_truncated']} walks truncated early"
    )


if __name__ == "__main__":
    main()
