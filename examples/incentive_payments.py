"""Per-epoch contributions as a streaming incentive mechanism.

Scenario: a federation pays participants per training round.  DIG-FL's
per-epoch contributions (Eq. 14) arrive for free during training, so the
operator can (a) stream payments proportional to each round's rectified
contribution, and (b) select the best participant subset under a budget —
two of the applications Sec. II-F sketches.

Run:  python examples/incentive_payments.py
"""

import numpy as np

from repro.core import estimate_hfl_resource_saving, rectified_weights
from repro.data import build_hfl_federation, cifar_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_hfl_model


def main() -> None:
    federation = build_hfl_federation(
        cifar_like(2500, seed=9),
        n_parties=8,
        n_mislabeled=2,
        n_noniid=2,
        seed=9,
    )

    def model_factory():
        return make_hfl_model("cifar10", seed=9)

    trainer = HFLTrainer(model_factory, epochs=12, lr_schedule=LRSchedule(0.5))
    result = trainer.train(federation.locals, federation.validation)
    report = estimate_hfl_resource_saving(
        result.log, federation.validation, model_factory
    )

    # --- streaming per-round payments -------------------------------------
    round_budget = 1_000.0
    payments = np.zeros(8)
    for t in range(report.per_epoch.shape[0]):
        payments += round_budget * rectified_weights(report.per_epoch[t])

    print("participant  quality      total contribution   paid")
    for i in range(8):
        print(
            f"{i:>11}  {federation.qualities[i]:<11}  {report.totals[i]:+18.4f}"
            f"   {payments[i]:>7,.0f}"
        )
    print(f"total paid: {payments.sum():,.0f} over {report.per_epoch.shape[0]} rounds")

    # --- participant selection under budget --------------------------------
    # Keep the cheapest subset whose cumulative contribution covers 90% of
    # the total positive contribution (greedy by contribution density).
    per_round_fee = np.full(8, 125.0)  # what each participant charges
    order = np.argsort(report.totals / per_round_fee)[::-1]
    target = 0.9 * np.maximum(report.totals, 0).sum()
    chosen: list[int] = []
    covered = 0.0
    for i in order:
        if covered >= target:
            break
        if report.totals[i] > 0:
            chosen.append(int(i))
            covered += report.totals[i]
    print(
        f"\nselected participants for next campaign (90% of value, "
        f"fee {per_round_fee[0]:.0f}/round each): {sorted(chosen)}"
    )
    dropped = sorted(set(range(8)) - set(chosen))
    print(f"dropped: {dropped} "
          f"(qualities: {[federation.qualities[i] for i in dropped]})")


if __name__ == "__main__":
    main()
