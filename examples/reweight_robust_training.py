"""Robust federated training with the DIG-FL reweight mechanism.

Scenario: a crowd-sourced image federation where 4 of 5 contributors have
mislabeled data.  Plain FedSGD stalls; the DIG-FL reweight mechanism
(Eq. 17-18) silences harmful updates epoch by epoch and recovers accuracy —
the Fig. 7 effect, rendered as ASCII convergence curves.

Run:  python examples/reweight_robust_training.py
"""

from repro.core import DIGFLReweighter
from repro.data import build_hfl_federation, motor_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_hfl_model

EPOCHS = 25


def sparkline(values, lo=0.4, hi=1.0, width=50) -> str:
    """Render an accuracy curve as a row of block characters."""
    blocks = " .:-=+*#%@"
    cells = []
    step = max(1, len(values) // width)
    for v in values[::step]:
        frac = min(max((v - lo) / (hi - lo), 0.0), 1.0)
        cells.append(blocks[int(frac * (len(blocks) - 1))])
    return "".join(cells)


def main() -> None:
    federation = build_hfl_federation(
        motor_like(2000, seed=5),
        n_parties=5,
        n_mislabeled=4,  # >80% of participants hold low-quality data
        mislabel_fraction=0.5,
        seed=5,
    )

    def model_factory():
        return make_hfl_model("motor", seed=5)

    trainer = HFLTrainer(model_factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5))

    plain = trainer.train(
        federation.locals, federation.validation, track_validation=True
    )
    reweighter = DIGFLReweighter(federation.validation)
    robust = trainer.train(
        federation.locals,
        federation.validation,
        reweighter=reweighter,
        track_validation=True,
    )

    plain_curve = plain.log.val_accuracy_curve()
    robust_curve = robust.log.val_accuracy_curve()

    print("validation accuracy over epochs (scale 0.4 .. 1.0)")
    print(f"  FedSGD   |{sparkline(plain_curve)}|  final {plain_curve[-1]:.3f}")
    print(f"  DIG-FL   |{sparkline(robust_curve)}|  final {robust_curve[-1]:.3f}")

    # How much weight did the corrupted participants actually receive?
    import numpy as np

    mean_weights = np.mean(
        [rec.weights for rec in robust.log.records], axis=0
    )
    print("\nmean aggregation weight per participant (uniform would be 0.200):")
    for i, (quality, w) in enumerate(zip(federation.qualities, mean_weights)):
        print(f"  participant {i} ({quality:<10}): {w:.3f}")


if __name__ == "__main__":
    main()
