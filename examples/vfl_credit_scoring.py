"""Vertical FL credit scoring with encrypted training and revenue split.

Scenario: a bank (holding repayment labels + account features), a telecom
and an e-commerce platform pool *features* about shared customers to train
a credit model.  Nobody may see anyone else's columns, so training runs the
paper's Paillier protocol (Algorithm 3): encrypted residual chain, masked
gradients through a trusted key authority.  DIG-FL contributions — which
each party computes from values it already holds — then drive the revenue
split.

The example also verifies the encrypted run against the plaintext
simulator: same model, same contributions, to fixed-point precision.

Run:  python examples/vfl_credit_scoring.py   (~10s: real Paillier, 256-bit keys)
"""

import numpy as np

from repro.core import estimate_vfl_first_order
from repro.data import credit_card_like, build_vfl_federation
from repro.nn import LRSchedule
from repro.vfl import VFLTrainer, build_encrypted_session

PARTY_NAMES = ["bank (labels)", "telecom", "e-commerce"]


def main() -> None:
    dataset = credit_card_like(seed=7).standardized()
    split = build_vfl_federation(dataset, n_parties=3, max_rows=120, seed=7)
    schedule = LRSchedule(0.5)
    epochs = 6

    print("columns per party:", [len(b) for b in split.feature_blocks])

    # --- encrypted run (Algorithm 3) -------------------------------------
    train_blocks = [split.train.X[:, b] for b in split.feature_blocks]
    val_blocks = [split.validation.X[:, b] for b in split.feature_blocks]
    session = build_encrypted_session(
        "binary", train_blocks, split.train.y, schedule, epochs,
        key_bits=256, seed=42,
    )
    encrypted = session.train(split.train.y, split.validation.y, val_blocks)
    print(
        f"encrypted training: {encrypted.ledger.compute_seconds:.1f}s, "
        f"{encrypted.ledger.total_comm_mb:.2f} MB exchanged"
    )

    # --- plaintext reference (fast path used by the benchmarks) ----------
    trainer = VFLTrainer("binary", split.feature_blocks, epochs, schedule)
    plain = trainer.train(split.train, split.validation)
    digfl = estimate_vfl_first_order(plain.log)
    acc = trainer.model.score(plain.theta, split.validation.X, split.validation.y)
    print(f"plaintext reference accuracy: {acc:.3f}")

    # The encrypted logistic protocol uses the Taylor residual, so its
    # contributions differ slightly from the exact-sigmoid plaintext run.
    print("\nparty          encrypted φ̂   plaintext φ̂")
    for i, name in enumerate(PARTY_NAMES):
        print(f"{name:<14} {encrypted.contributions[i]:+.5f}      {digfl.totals[i]:+.5f}")

    # --- contribution-based revenue split ---------------------------------
    pool = 100_000.0  # annual data-partnership budget
    weights = np.maximum(encrypted.contributions, 0.0)
    shares = weights / weights.sum() * pool
    print(f"\nrevenue split of a {pool:,.0f} budget:")
    for name, share in zip(PARTY_NAMES, shares):
        print(f"  {name:<14} {share:>10,.0f}")


if __name__ == "__main__":
    main()
