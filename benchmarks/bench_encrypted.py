"""Extension bench: Paillier protocol overhead vs the plaintext fast path."""

import pytest

from repro.data import boston_like, build_vfl_federation
from repro.experiments.encrypted_overhead import run_encrypted_overhead
from repro.nn import LRSchedule
from repro.vfl import VFLTrainer, build_encrypted_session


@pytest.fixture(scope="module")
def tiny_split():
    dataset = boston_like(seed=0).standardized()
    return build_vfl_federation(dataset, 3, max_rows=50, seed=1)


def test_bench_plaintext_epoch(benchmark, tiny_split):
    trainer = VFLTrainer("regression", tiny_split.feature_blocks, 1, LRSchedule(0.1))
    benchmark(trainer.train, tiny_split.train, tiny_split.validation)


def test_bench_encrypted_epoch(benchmark, tiny_split):
    """One full encrypted round (train + validation exchange, 256-bit keys)."""
    schedule = LRSchedule(0.1)
    Xb = [tiny_split.train.X[:, b] for b in tiny_split.feature_blocks]
    Xvb = [tiny_split.validation.X[:, b] for b in tiny_split.feature_blocks]

    def run():
        session = build_encrypted_session(
            "regression", Xb, tiny_split.train.y, schedule, 1,
            key_bits=256, seed=4,
        )
        return session.train(tiny_split.train.y, tiny_split.validation.y, Xvb)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["comm_mb"] = result.ledger.total_comm_mb


def test_bench_overhead_sweep(benchmark):
    report = benchmark.pedantic(
        lambda: run_encrypted_overhead(key_bits=(128, 256), epochs=2, n_rows=40),
        rounds=1,
        iterations=1,
    )
    by_bits = {row.labels["key_bits"]: row.metrics for row in report.rows}
    benchmark.extra_info["t_by_key_bits"] = {
        str(k): v["t_s"] for k, v in by_bits.items()
    }
    # Superlinear growth with key size; identical results either way.
    assert by_bits[256]["t_s"] > 2 * by_bits[128]["t_s"]
    assert by_bits[256]["pcc_vs_plaintext"] > 0.999
