"""Cost of the observability layer on the hot serving paths.

The :mod:`repro.obs` contract is that *disabled* tracing is a no-op: the
shipping default (``Observability()`` — tracing off, metrics and
profiling on) must answer warm cached queries and ingest epochs at the
same speed as uninstrumented code.  Two gates pin that down (both
enforced in CI via ``--check``):

1. **Disabled-tracing warm query**: the full ``query()`` path (which
   reads ``tracer.enabled`` once) within 5% of a baseline that skips the
   tracer check entirely — the pre-instrumentation request path.
2. **Default-posture ingest**: streaming ingest under the shipping
   default (tracing off, per-run phase timers on) within 5% of a fully
   bare service (tracing *and* profiling off).  Ingest does
   millisecond-scale numerical work per epoch (validation gradient, dot
   products, digest), so the disabled-span plumbing must disappear into
   it.

The cost of *enabled* tracing is reported for information only on both
paths: a warm hit is ~5µs, so two live spans roughly double it, and one
live span plus three phase timers add a few percent to a small cell's
ingest — which is exactly why tracing defaults to off.

Gates judge the best of up to :data:`GATE_ATTEMPTS` measurements: host
noise is strictly additive, so it can fake a breach but never hide one —
a single clean attempt under the limit proves the contract.

Run any of three ways::

    PYTHONPATH=src python benchmarks/bench_obs.py            # report
    PYTHONPATH=src python benchmarks/bench_obs.py --check    # CI gate
    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py --benchmark-only
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.workloads import build_hfl_workload
from repro.obs import Observability
from repro.serve import EvaluationService

DATASET = "mnist"
EPOCHS = 12
N_PARTIES = 5
N_SAMPLES = 400
# Small batches, many interleaved repetitions: this host's timer noise
# is large relative to a 5µs query, so best-of needs many chances to
# land a clean window on each side.
BATCH_QUERIES = 500
BATCHES = 25
INGEST_BATCHES = 15
INGEST_PASSES = 3
MAX_OVERHEAD = 0.05
# Noise on a shared host is strictly additive (preemption, timer
# jitter): it can only inflate a measured overhead, never hide real
# cost.  So a gate re-measures up to this many times and judges the
# cleanest attempt — one attempt under the limit proves the contract.
GATE_ATTEMPTS = 3


@pytest.fixture(scope="module")
def cell():
    return build_hfl_workload(
        DATASET, n_parties=N_PARTIES, epochs=EPOCHS, n_samples=N_SAMPLES, seed=0
    )


def _register(service, cell) -> str:
    return service.register_hfl_log(
        cell.result.log, cell.federation.validation, cell.model_factory
    )


def _query_batch(service, run_id) -> float:
    start = time.perf_counter()
    for _ in range(BATCH_QUERIES):
        service.query("leaderboard", run_id)
    return time.perf_counter() - start


def _bare_query_batch(service, run_id) -> float:
    """The warm-query loop minus the ``tracer.enabled`` check.

    Replicates exactly what ``query()`` did before instrumentation —
    open check, method validation, straight into the admission ladder
    with no root span — so the measured delta against
    :func:`_query_batch` is precisely the cost disabled tracing adds.
    """
    admit = service._admit_and_run
    ensure_open = service._ensure_open
    start = time.perf_counter()
    for _ in range(BATCH_QUERIES):
        ensure_open()
        allowed = {"contributions", "leaderboard", "weights"}
        if "leaderboard" not in allowed:
            raise ValueError
        admit("leaderboard", (run_id,), {}, None)
    return time.perf_counter() - start


def _measure_warm_query():
    """(bare_s, disabled_s, traced_s) best-of batches, interleaved."""
    cell = _measure_warm_query.cell
    traced_obs = Observability(trace=True, capacity=1024)
    with (
        EvaluationService() as disabled,
        EvaluationService(obs=traced_obs) as traced,
    ):
        disabled_id = _register(disabled, cell)
        traced_id = _register(traced, cell)
        disabled.query("leaderboard", disabled_id)  # populate both caches
        traced.query("leaderboard", traced_id)
        bare_s = disabled_s = traced_s = float("inf")
        # Interleave so clock drift and allocator state hit all sides
        # equally; compare best-of over the pairs (bench_resilience.py
        # methodology).  The bare baseline runs on the *same* service as
        # the disabled one — identical cache, identical run.
        for _ in range(BATCHES):
            bare_s = min(bare_s, _bare_query_batch(disabled, disabled_id))
            disabled_s = min(disabled_s, _query_batch(disabled, disabled_id))
            traced_s = min(traced_s, _query_batch(traced, traced_id))
    return bare_s, disabled_s, traced_s


def _measure_ingest(cell):
    """(bare, default, armed) per-epoch seconds, best-of interleaved batches."""
    log = cell.result.log

    def ingest_batch(service) -> float:
        # Fresh empty runs per batch (registration is outside the timed
        # region); each batch times several full-log passes to drown
        # per-call jitter.
        run_ids = [
            service.register_hfl(
                log.participant_ids, cell.federation.validation, cell.model_factory
            )
            for _ in range(INGEST_PASSES)
        ]
        start = time.perf_counter()
        for run_id in run_ids:
            for record in log.records:
                service.ingest(run_id, record)
        return (time.perf_counter() - start) / (INGEST_PASSES * log.n_epochs)

    bare_obs = Observability(trace=False, profile=False)
    armed_obs = Observability(trace=True, profile=True, capacity=4096)
    with (
        EvaluationService(obs=bare_obs) as bare,
        EvaluationService() as default,  # the shipping posture
        EvaluationService(obs=armed_obs) as armed,
    ):
        for service in (bare, default, armed):
            ingest_batch(service)  # warm: imports, allocator, caches
        bare_s = default_s = armed_s = float("inf")
        for _ in range(INGEST_BATCHES):
            bare_s = min(bare_s, ingest_batch(bare))
            default_s = min(default_s, ingest_batch(default))
            armed_s = min(armed_s, ingest_batch(armed))
    return bare_s, default_s, armed_s


def _gated(measure, overhead_of):
    """Best attempt out of :data:`GATE_ATTEMPTS`, stopping early on a pass."""
    best = None
    for _ in range(GATE_ATTEMPTS):
        result = measure()
        if best is None or overhead_of(result) < overhead_of(best):
            best = result
        if overhead_of(best) < MAX_OVERHEAD:
            break
    return best


def test_bench_disabled_tracing_warm_query_under_5_percent(benchmark, cell):
    """Default service (tracing off) within 5% of the uninstrumented path."""
    _measure_warm_query.cell = cell
    bare_s, disabled_s, traced_s = _gated(
        _measure_warm_query, lambda r: r[1] / r[0] - 1.0
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    overhead = disabled_s / bare_s - 1.0
    benchmark.extra_info["bare_batch_sec"] = bare_s
    benchmark.extra_info["disabled_batch_sec"] = disabled_s
    benchmark.extra_info["traced_batch_sec"] = traced_s
    benchmark.extra_info["disabled_overhead_fraction"] = overhead
    assert overhead < MAX_OVERHEAD


def test_bench_default_posture_ingest_under_5_percent(benchmark, cell):
    """The default obs posture costs <5% on the streaming ingest path."""
    _ = benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bare_s, default_s, armed_s = _gated(
        lambda: _measure_ingest(cell), lambda r: r[1] / r[0] - 1.0
    )
    overhead = default_s / bare_s - 1.0
    benchmark.extra_info["bare_per_epoch_sec"] = bare_s
    benchmark.extra_info["default_per_epoch_sec"] = default_s
    benchmark.extra_info["armed_per_epoch_sec"] = armed_s
    benchmark.extra_info["default_overhead_fraction"] = overhead
    assert overhead < MAX_OVERHEAD


def main(argv: list[str] | None = None) -> int:
    """Standalone report; ``--check`` turns the two gates into exit codes."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if either gate reaches {MAX_OVERHEAD:.0%} overhead",
    )
    args = parser.parse_args(argv)

    cell = build_hfl_workload(
        DATASET, n_parties=N_PARTIES, epochs=EPOCHS, n_samples=N_SAMPLES, seed=0
    )
    print(f"{N_PARTIES}-party {DATASET} cell, {EPOCHS} logged epochs")

    _measure_warm_query.cell = cell
    bare_s, disabled_s, traced_s = _gated(
        _measure_warm_query, lambda r: r[1] / r[0] - 1.0
    )
    disabled_overhead = disabled_s / bare_s - 1.0
    per = 1e6 / BATCH_QUERIES
    print(f"\nwarm cached query ({BATCH_QUERIES}/batch, best of {BATCHES}):")
    print(f"  no tracer check : {bare_s * per:>7.2f} µs/query")
    print(
        f"  tracing disabled: {disabled_s * per:>7.2f} µs/query  "
        f"({disabled_overhead:+.1%})  [gate <{MAX_OVERHEAD:.0%}]"
    )
    print(
        f"  tracing enabled : {traced_s * per:>7.2f} µs/query  "
        f"({traced_s / bare_s - 1.0:+.1%})  [info only]"
    )

    ingest_bare, ingest_default, ingest_armed = _gated(
        lambda: _measure_ingest(cell), lambda r: r[1] / r[0] - 1.0
    )
    ingest_overhead = ingest_default / ingest_bare - 1.0
    print(f"\nstreaming ingest of one epoch (best of {INGEST_BATCHES}):")
    print(f"  obs fully off      : {ingest_bare * 1e3:>6.2f} ms")
    print(
        f"  default (trace off): {ingest_default * 1e3:>6.2f} ms  "
        f"({ingest_overhead:+.1%})  [gate <{MAX_OVERHEAD:.0%}]"
    )
    print(
        f"  trace+profile armed: {ingest_armed * 1e3:>6.2f} ms  "
        f"({ingest_armed / ingest_bare - 1.0:+.1%})  [info only]"
    )

    if args.check:
        failures = []
        if disabled_overhead >= MAX_OVERHEAD:
            failures.append(
                f"disabled-tracing warm query overhead {disabled_overhead:.1%}"
            )
        if ingest_overhead >= MAX_OVERHEAD:
            failures.append(f"default-posture ingest overhead {ingest_overhead:.1%}")
        if failures:
            print("\nFAIL: " + "; ".join(failures))
            return 1
        print(f"\nOK: both gates under {MAX_OVERHEAD:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
