"""Microbenchmarks of the repro.robust defense layer.

Robust aggregation and screening sit inside the per-round server loop, so
their cost must stay a small multiple of the weighted mean they replace —
otherwise "turn the defense on for long audits" is not practical advice.
Krum is the known outlier: its pairwise-distance matrix is O(m²p), and
the bench pins that it is the *only* super-linear rule at audit scale.
"""

import numpy as np
import pytest

from repro.robust import ScreenConfig, UpdateScreener, make_aggregator

M_PARTIES = 32
DIM = 20_000  # ~ the 100->16->10 MLP used across the test suite, x10
RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def cohort():
    updates = RNG.normal(size=(M_PARTIES, DIM))
    weights = np.full(M_PARTIES, 1.0 / M_PARTIES)
    mask = np.ones(M_PARTIES, dtype=bool)
    return updates, weights, mask


@pytest.mark.parametrize(
    "name, kwargs",
    [
        ("mean", {}),
        ("median", {}),
        ("trimmed", {"trim_ratio": 0.2}),
        ("clip", {}),
        ("krum", {"n_byzantine": 3}),
        ("multikrum", {"n_byzantine": 3, "multi": 5}),
    ],
)
def test_bench_aggregator(benchmark, cohort, name, kwargs):
    """One aggregation round at 32 parties x 20k parameters."""
    updates, weights, mask = cohort
    agg = make_aggregator(name, **kwargs)
    out = benchmark(agg.aggregate, updates, weights, mask)
    assert out.shape == (DIM,)
    assert np.isfinite(out).all()


def test_bench_screening_pass(benchmark, cohort):
    """One full screening pass (all three rules) over a warm cohort."""
    updates, _, mask = cohort
    screener = UpdateScreener(ScreenConfig())
    screener.observe_norms([1.0] * 10)  # arm the norm rule

    def run():
        return screener.screen(
            1, list(range(M_PARTIES)), updates, mask.copy()
        )

    verdict = benchmark(run)
    assert verdict.all()  # homogeneous Gaussian cohort: nobody quarantined
