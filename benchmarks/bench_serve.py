"""Streaming ingest vs. batch recompute, cold vs. warm query cache.

The serving layer's two pitches, measured:

1. **O(1) incremental ingest** (Lemma 3 additivity): feeding epoch
   ``τ+1`` into a :class:`StreamingHFLEstimator` costs one validation
   gradient and ``n`` dot products regardless of ``τ``, while a batch
   ``estimate_hfl_resource_saving`` call re-reads the whole prefix —
   O(τ) and growing.
2. **Warm-cache queries**: a repeated leaderboard/contributions query is
   answered from the content-addressed cache without touching the
   estimator, ≥10× faster than recomputing the batch estimate.

Run either way::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py --benchmark-only
"""

from __future__ import annotations

import time

import pytest

from repro.core import estimate_hfl_resource_saving
from repro.experiments.workloads import build_hfl_workload
from repro.hfl.log import TrainingLog
from repro.serve import EvaluationService, StreamingHFLEstimator

DATASET = "mnist"
EPOCHS = 24
N_PARTIES = 5
N_SAMPLES = 600
PREFIXES = (6, 12, 24)
WARM_QUERIES = 50


@pytest.fixture(scope="module")
def cell():
    return build_hfl_workload(
        DATASET, n_parties=N_PARTIES, epochs=EPOCHS, n_samples=N_SAMPLES, seed=0
    )


def _prefix(log: TrainingLog, epochs: int) -> TrainingLog:
    return TrainingLog(
        participant_ids=log.participant_ids, records=log.records[:epochs]
    )


def _ingest_one_more(cell, tau: int) -> float:
    """Seconds to ingest epoch ``τ+1`` after ``τ`` epochs are in."""
    estimator = StreamingHFLEstimator(
        cell.result.log.participant_ids,
        cell.federation.validation,
        cell.model_factory,
    )
    estimator.ingest_log(_prefix(cell.result.log, tau))
    start = time.perf_counter()
    estimator.ingest(cell.result.log.records[tau])
    return time.perf_counter() - start


def _batch_recompute(cell, epochs: int) -> float:
    """Seconds for one batch estimate of the ``epochs``-long prefix."""
    start = time.perf_counter()
    estimate_hfl_resource_saving(
        _prefix(cell.result.log, epochs),
        cell.federation.validation,
        cell.model_factory,
    )
    return time.perf_counter() - start


@pytest.mark.parametrize("tau", [p for p in PREFIXES if p < EPOCHS])
def test_bench_incremental_ingest_is_o1(benchmark, cell, tau):
    """Ingest cost of epoch τ+1 is flat in τ; batch recompute is not."""

    def setup():
        estimator = StreamingHFLEstimator(
            cell.result.log.participant_ids,
            cell.federation.validation,
            cell.model_factory,
        )
        estimator.ingest_log(_prefix(cell.result.log, tau))
        return (estimator,), {}

    benchmark.pedantic(
        lambda estimator: estimator.ingest(cell.result.log.records[tau]),
        setup=setup,
        rounds=3,
        iterations=1,
    )
    batch_seconds = min(_batch_recompute(cell, tau + 1) for _ in range(3))
    ingest_seconds = benchmark.stats.stats.min
    benchmark.extra_info["tau"] = tau
    benchmark.extra_info["batch_recompute_sec"] = batch_seconds
    # One epoch of streaming work must undercut re-reading the prefix.
    assert ingest_seconds < batch_seconds


def test_bench_warm_cache_queries(benchmark, cell):
    """Warm repeated queries beat batch recompute by ≥10×."""
    with EvaluationService() as service:
        run_id = service.register_hfl_log(
            cell.result.log, cell.federation.validation, cell.model_factory
        )
        start = time.perf_counter()
        cold = service.leaderboard(run_id)  # miss: populates the cache
        cold_seconds = time.perf_counter() - start

        def warm():
            return service.leaderboard(run_id)

        warm_payload = benchmark(warm)
        assert warm_payload == cold
        warm_seconds = benchmark.stats.stats.mean
        batch_seconds = min(_batch_recompute(cell, EPOCHS) for _ in range(3))
        stats = service.cache.stats()
        benchmark.extra_info["cold_query_sec"] = cold_seconds
        benchmark.extra_info["speedup_vs_batch"] = batch_seconds / warm_seconds
        benchmark.extra_info["cache_hits"] = stats["hits"]
        assert stats["hits"] > 0
        assert warm_seconds < cold_seconds
        assert batch_seconds / warm_seconds >= 10.0


def main() -> int:
    """Standalone report: the ingest-scaling table and the cache speedup."""
    cell = build_hfl_workload(
        DATASET, n_parties=N_PARTIES, epochs=EPOCHS, n_samples=N_SAMPLES, seed=0
    )
    print(f"{N_PARTIES}-party {DATASET} cell, {EPOCHS} logged epochs")
    print("\nincremental ingest of epoch τ+1 vs batch recompute of 1..τ+1")
    print(f"{'τ':>4}  {'ingest (ms)':>11}  {'batch (ms)':>10}  {'ratio':>7}")
    for tau in [p for p in PREFIXES if p < EPOCHS]:
        ingest = min(_ingest_one_more(cell, tau) for _ in range(3))
        batch = min(_batch_recompute(cell, tau + 1) for _ in range(3))
        print(
            f"{tau:>4}  {ingest * 1e3:>11.2f}  {batch * 1e3:>10.2f}  "
            f"{batch / ingest:>6.1f}x"
        )

    with EvaluationService() as service:
        run_id = service.register_hfl_log(
            cell.result.log, cell.federation.validation, cell.model_factory
        )
        service.leaderboard(run_id)
        start = time.perf_counter()
        for _ in range(WARM_QUERIES):
            service.leaderboard(run_id)
        warm = (time.perf_counter() - start) / WARM_QUERIES
        batch = min(_batch_recompute(cell, EPOCHS) for _ in range(3))
        print(
            f"\nwarm cached leaderboard: {warm * 1e6:.0f} µs/query, "
            f"batch recompute {batch * 1e3:.1f} ms "
            f"({batch / warm:.0f}x slower)"
        )
        print("cache stats:", service.cache.stats())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
