"""Cost of the resilience layer on the hot serving path.

The resilience machinery — per-query deadlines, the bounded admission
queue, per-run circuit breakers, and the fsync'd write-ahead log — must
be effectively free when nothing is failing.  Two numbers pin that down:

1. **Warm-cache query overhead**: a fully armed service (deadline +
   admission limit + breakers) answers a repeated cached query within
   5% of a bare service.  On a hit the breaker is never consulted and
   the deadline is a single monotonic-clock comparison.
2. **WAL ingest overhead**: the durable (fsync per epoch) ingest path
   vs. an unlogged ingest.  This one is *not* free — it is one fsync —
   but it is a constant per epoch, independent of history length.

Run either way::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py --benchmark-only
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.workloads import build_hfl_workload
from repro.serve import EvaluationService, WriteAheadLog

DATASET = "mnist"
EPOCHS = 12
N_PARTIES = 5
N_SAMPLES = 400
BATCH_QUERIES = 300
BATCHES = 7
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def cell():
    return build_hfl_workload(
        DATASET, n_parties=N_PARTIES, epochs=EPOCHS, n_samples=N_SAMPLES, seed=0
    )


def _bare_service():
    return EvaluationService()


def _armed_service():
    return EvaluationService(
        query_deadline_ms=250.0,
        admission_limit=32,
        breaker_failures=3,
        breaker_reset_s=30.0,
    )


def _register(service, cell) -> str:
    return service.register_hfl_log(
        cell.result.log, cell.federation.validation, cell.model_factory
    )


def test_bench_warm_query_overhead_under_5_percent(benchmark, cell):
    """Deadlines + admission + breakers cost <5% on a warm cache hit."""
    with _bare_service() as bare, _armed_service() as armed:
        bare_id = _register(bare, cell)
        armed_id = _register(armed, cell)
        bare.query("leaderboard", bare_id)  # populate both caches
        armed.query("leaderboard", armed_id)

        def batch(service, run_id) -> float:
            start = time.perf_counter()
            for _ in range(BATCH_QUERIES):
                service.query("leaderboard", run_id)
            return time.perf_counter() - start

        # Interleave bare/armed batches so clock drift and allocator
        # state hit both sides equally; compare best-of over the pairs.
        bare_seconds, armed_seconds = float("inf"), float("inf")
        for _ in range(BATCHES):
            bare_seconds = min(bare_seconds, batch(bare, bare_id))
            armed_seconds = min(armed_seconds, batch(armed, armed_id))

        benchmark.pedantic(
            lambda: batch(armed, armed_id), rounds=1, iterations=1
        )
        overhead = armed_seconds / bare_seconds - 1.0
        benchmark.extra_info["bare_batch_sec"] = bare_seconds
        benchmark.extra_info["armed_batch_sec"] = armed_seconds
        benchmark.extra_info["overhead_fraction"] = overhead
        assert armed.stats()["cache"]["hits"] >= BATCHES * BATCH_QUERIES
        assert overhead < MAX_OVERHEAD


def test_bench_wal_ingest_is_constant_overhead(benchmark, cell, tmp_path):
    """Durable ingest = unlogged ingest + one fsync'd append, flat in τ."""
    log = cell.result.log

    def ingest_all(service, run_id) -> float:
        start = time.perf_counter()
        for record in log.records:
            service.ingest(run_id, record)
        return (time.perf_counter() - start) / log.n_epochs

    with EvaluationService() as plain:
        plain_id = plain.register_hfl(
            log.participant_ids, cell.federation.validation, cell.model_factory
        )
        plain_per_epoch = ingest_all(plain, plain_id)

    wal = WriteAheadLog(tmp_path / "wal")
    with EvaluationService(wal=wal) as durable:
        durable_id = durable.register_hfl(
            log.participant_ids, cell.federation.validation, cell.model_factory
        )

        def run():
            return ingest_all(durable, durable_id)

        durable_per_epoch = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["plain_per_epoch_sec"] = plain_per_epoch
        benchmark.extra_info["durable_per_epoch_sec"] = durable_per_epoch
        assert len(wal.replay()) == log.n_epochs
    # The fsync costs something, but not a multiple of the epoch work.
    assert durable_per_epoch < plain_per_epoch * 3.0


def main() -> int:
    """Standalone report: warm-query overhead and WAL ingest cost."""
    import tempfile

    cell = build_hfl_workload(
        DATASET, n_parties=N_PARTIES, epochs=EPOCHS, n_samples=N_SAMPLES, seed=0
    )
    print(f"{N_PARTIES}-party {DATASET} cell, {EPOCHS} logged epochs")

    with _bare_service() as bare, _armed_service() as armed:
        bare_id = _register(bare, cell)
        armed_id = _register(armed, cell)
        bare.query("leaderboard", bare_id)
        armed.query("leaderboard", armed_id)
        bare_s, armed_s = float("inf"), float("inf")
        for _ in range(BATCHES):  # interleaved: drift hits both sides
            start = time.perf_counter()
            for _ in range(BATCH_QUERIES):
                bare.query("leaderboard", bare_id)
            bare_s = min(bare_s, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(BATCH_QUERIES):
                armed.query("leaderboard", armed_id)
            armed_s = min(armed_s, time.perf_counter() - start)
        per_query = armed_s / BATCH_QUERIES
        overhead = armed_s / bare_s - 1.0
        print(
            f"\nwarm cached query ({BATCH_QUERIES}/batch, best of {BATCHES}):"
        )
        print(f"  bare service : {bare_s / BATCH_QUERIES * 1e6:>8.1f} µs/query")
        print(
            f"  armed service: {per_query * 1e6:>8.1f} µs/query  "
            f"(deadline + admission + breakers: {overhead:+.1%})"
        )

    with tempfile.TemporaryDirectory() as tmp:
        with EvaluationService() as plain:
            pid = plain.register_hfl(
                cell.result.log.participant_ids,
                cell.federation.validation,
                cell.model_factory,
            )
            start = time.perf_counter()
            for record in cell.result.log.records:
                plain.ingest(pid, record)
            plain_per = (time.perf_counter() - start) / EPOCHS
        with EvaluationService(wal=WriteAheadLog(tmp)) as durable:
            did = durable.register_hfl(
                cell.result.log.participant_ids,
                cell.federation.validation,
                cell.model_factory,
            )
            start = time.perf_counter()
            for record in cell.result.log.records:
                durable.ingest(did, record)
            durable_per = (time.perf_counter() - start) / EPOCHS
        print("\ningest of one epoch:")
        print(f"  unlogged : {plain_per * 1e3:>7.2f} ms")
        print(
            f"  WAL+fsync: {durable_per * 1e3:>7.2f} ms  "
            f"({durable_per / plain_per:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
