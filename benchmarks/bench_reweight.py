"""Fig. 7: the DIG-FL reweight mechanism under heavy data corruption.

Times reweighted FedSGD against plain FedSGD (the reweighter adds one
validation gradient per epoch) and asserts the figure's shape: accuracy
degrades as the corrupted fraction grows and reweighting recovers a large
part of it.
"""

import pytest

from repro.core import DIGFLReweighter
from repro.experiments.reweight import run_reweight
from repro.experiments.workloads import build_hfl_workload


@pytest.fixture(scope="module")
def corrupted_motor():
    """4 of 5 participants mislabeled — the paper's >80% regime."""
    return build_hfl_workload(
        "motor", n_parties=5, n_mislabeled=4, epochs=20, seed=5
    )


def test_bench_plain_fedsgd(benchmark, corrupted_motor):
    w = corrupted_motor
    result = benchmark.pedantic(
        lambda: w.trainer.train(
            w.federation.locals, w.federation.validation, track_validation=True
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["final_acc"] = result.log.records[-1].val_accuracy


def test_bench_reweighted_fedsgd(benchmark, corrupted_motor):
    w = corrupted_motor

    def run():
        return w.trainer.train(
            w.federation.locals,
            w.federation.validation,
            reweighter=DIGFLReweighter(w.federation.validation),
            track_validation=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    acc = result.log.records[-1].val_accuracy
    benchmark.extra_info["final_acc"] = acc
    plain_acc = w.result.log.records[-1].val_accuracy
    assert acc > plain_acc + 0.1, (
        f"reweighting should lift accuracy well above plain FedSGD "
        f"({acc:.3f} vs {plain_acc:.3f})"
    )


def test_bench_fig7_sweep(benchmark):
    """Regenerate the Fig. 7 accuracy-vs-m rows for the mislabeled setting."""
    report = benchmark.pedantic(
        lambda: run_reweight(
            settings=(("motor", "mislabeled"),), ms=(0, 2, 4), epochs=20
        ),
        rounds=1,
        iterations=1,
    )
    summary = {
        row.labels["m"]: row.metrics
        for row in report.rows
        if "epoch" not in row.labels
    }
    benchmark.extra_info["acc_by_m"] = {
        str(m): metrics for m, metrics in summary.items()
    }
    # Plain FedSGD degrades with m; reweight recovers at the largest m.
    assert summary[4]["acc_fedsgd"] < summary[0]["acc_fedsgd"] - 0.05
    assert summary[4]["acc_digfl"] > summary[4]["acc_fedsgd"] + 0.1
