"""Sec. II-E complexity census: cost scaling in participants and model size."""

from repro.experiments import run_model_size_scaling, run_participant_scaling


def test_bench_participant_scaling(benchmark):
    """DIG-FL linear vs exact-Shapley exponential growth in n."""
    report = benchmark.pedantic(
        lambda: run_participant_scaling(party_counts=(3, 5, 7), epochs=4),
        rounds=1,
        iterations=1,
    )
    rows = {row.labels["n"]: row.metrics for row in report.rows}
    benchmark.extra_info["t_exact_by_n"] = {
        str(n): m["t_exact_s"] for n, m in rows.items()
    }
    # Exponential ground truth: each +2 participants ~4x the retrainings.
    assert rows[5]["retrainings"] == 4 * rows[3]["retrainings"]
    assert rows[7]["retrainings"] == 4 * rows[5]["retrainings"]
    assert rows[7]["t_exact_s"] > rows[3]["t_exact_s"] * 4
    # DIG-FL stays within a small constant factor across the sweep.
    assert rows[7]["t_digfl_s"] < rows[3]["t_digfl_s"] * 10


def test_bench_model_size_scaling(benchmark):
    """DIG-FL estimation cost is roughly linear in parameter count."""
    report = benchmark.pedantic(
        lambda: run_model_size_scaling(hidden_sizes=(8, 64), epochs=4),
        rounds=1,
        iterations=1,
    )
    rows = {row.labels["hidden"]: row for row in report.rows}
    params_ratio = rows[64].labels["params"] / rows[8].labels["params"]
    time_ratio = rows[64].metrics["t_digfl_s"] / max(
        rows[8].metrics["t_digfl_s"], 1e-9
    )
    benchmark.extra_info["params_ratio"] = params_ratio
    benchmark.extra_info["time_ratio"] = time_ratio
    # Sub-quadratic: time grows no faster than ~params^1.5 at this scale
    # (BLAS constant factors dominate small models).
    assert time_ratio < params_ratio**1.5
