"""Single-process serving vs. an N-shard cluster under concurrent load.

The cluster's pitch is not per-request speed — a proxy hop can only add
latency — but *isolation under mixed load*: streaming ingests are
CPU-bound numpy work that holds the run lock and (partly) the GIL, so on
a single process they stall concurrent leaderboard queries.  Sharding
runs across worker processes lets ingest-heavy traffic land on one shard
while queries on other shards stay fast.

This bench drives both deployments with the same mixed workload —
concurrent leaderboard queries against warm runs while fresh VFL runs
stream in — and records throughput and p95 latency per operation kind.
The standalone entry point writes ``BENCH_cluster.json`` at the repo
root so successive PRs can track the gap.

Run either way::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py --benchmark-only
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.workloads import build_vfl_workload
from repro.io import save_vfl_training_log
from repro.serve import (
    ClusterRouter,
    ClusterSupervisor,
    EvaluationHTTPServer,
    EvaluationService,
)

N_SHARDS = 3
N_CLIENTS = 6
SEED_RUNS = 6
INGEST_RUNS = 6
QUERIES_PER_CLIENT = 40
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def vfl_log_path(tmp_path_factory):
    workload = build_vfl_workload("boston", n_parties=5, epochs=25, seed=0)
    path = tmp_path_factory.mktemp("bench_cluster") / "vfl_run.npz"
    save_vfl_training_log(workload.result.log, path)
    return str(path)


def _post_run(port: int, log_path: str, run_id: str) -> int:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/runs",
        data=json.dumps(
            {"kind": "vfl", "log_path": log_path, "run_id": run_id}
        ).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status


def _get(port: int, path: str) -> int:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=120
    ) as response:
        response.read()
        return response.status


def _drive(port: int, log_path: str, tag: str) -> dict:
    """One mixed-load episode against whatever serves ``port``.

    ``N_CLIENTS`` query threads hammer the warm seed runs while one
    ingest thread streams ``INGEST_RUNS`` fresh registrations.  Every
    request's wall time is recorded; a non-2xx anywhere fails the bench.
    """
    for index in range(SEED_RUNS):
        status = _post_run(port, log_path, f"seed-{tag}-{index}")
        assert status == 201, status
    for index in range(SEED_RUNS):  # warm the query caches
        _get(port, f"/runs/seed-{tag}-{index}/leaderboard")

    query_latencies: list[float] = []
    ingest_latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def query_client(client: int) -> None:
        for index in range(QUERIES_PER_CLIENT):
            run = f"seed-{tag}-{(client + index) % SEED_RUNS}"
            start = time.perf_counter()
            try:
                _get(port, f"/runs/{run}/leaderboard")
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                with lock:
                    errors.append(f"query {run}: {exc}")
                continue
            with lock:
                query_latencies.append(time.perf_counter() - start)

    def ingest_client() -> None:
        for index in range(INGEST_RUNS):
            start = time.perf_counter()
            try:
                _post_run(port, log_path, f"stream-{tag}-{index}")
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                with lock:
                    errors.append(f"ingest {index}: {exc}")
                continue
            with lock:
                ingest_latencies.append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=query_client, args=(client,))
        for client in range(N_CLIENTS)
    ]
    threads.append(threading.Thread(target=ingest_client))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    assert not errors, errors[:3]
    requests = len(query_latencies) + len(ingest_latencies)
    return {
        "requests": requests,
        "elapsed_sec": elapsed,
        "throughput_rps": requests / elapsed,
        "query_p95_ms": _p95(query_latencies) * 1e3,
        "query_mean_ms": sum(query_latencies) / len(query_latencies) * 1e3,
        "ingest_p95_ms": _p95(ingest_latencies) * 1e3,
    }


def _p95(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _bench_single(log_path: str, tag: str) -> dict:
    server = EvaluationHTTPServer(("127.0.0.1", 0), EvaluationService())
    server.serve_background()
    try:
        return _drive(server.port, log_path, tag)
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()


def _bench_cluster(log_path: str, tag: str) -> dict:
    with tempfile.TemporaryDirectory() as wal_root:
        with ClusterSupervisor(N_SHARDS, wal_root=wal_root) as supervisor:
            router = ClusterRouter(("127.0.0.1", 0), supervisor)
            router.serve_background()
            try:
                return _drive(router.port, log_path, tag)
            finally:
                router.shutdown()
                router.server_close()


def test_bench_cluster_vs_single_process(benchmark, vfl_log_path):
    """Both deployments absorb the identical mixed load with zero
    errors, and the cluster stays within generous absolute bounds
    despite the proxy hop.  Relative throughput is recorded, not raced:
    warm-cache queries are sub-millisecond, so the single/cluster ratio
    on a busy CI box swings 0.3x-2x run to run."""
    single = _bench_single(vfl_log_path, "sp")

    def episode():
        return _bench_cluster(vfl_log_path, "cl")

    cluster = benchmark.pedantic(episode, rounds=1, iterations=1)
    benchmark.extra_info["single_throughput_rps"] = single["throughput_rps"]
    benchmark.extra_info["cluster_throughput_rps"] = cluster["throughput_rps"]
    benchmark.extra_info["single_query_p95_ms"] = single["query_p95_ms"]
    benchmark.extra_info["cluster_query_p95_ms"] = cluster["query_p95_ms"]
    assert cluster["requests"] == single["requests"]  # nothing dropped
    assert cluster["throughput_rps"] >= 20.0
    assert cluster["query_p95_ms"] <= 500.0


def main() -> int:
    """Standalone report: the comparison table plus ``BENCH_cluster.json``."""
    workload = build_vfl_workload("boston", n_parties=5, epochs=25, seed=0)
    with tempfile.TemporaryDirectory() as scratch:
        log_path = str(pathlib.Path(scratch) / "vfl_run.npz")
        save_vfl_training_log(workload.result.log, log_path)
        print(
            f"mixed load: {N_CLIENTS} query clients x {QUERIES_PER_CLIENT} "
            f"leaderboard gets + {INGEST_RUNS} streaming ingests"
        )
        single = _bench_single(log_path, "sp")
        cluster = _bench_cluster(log_path, "cl")

    rows = [("single-process", single), (f"{N_SHARDS}-shard cluster", cluster)]
    print(
        f"\n{'deployment':>18}  {'req/s':>8}  {'query p95 (ms)':>14}  "
        f"{'ingest p95 (ms)':>15}"
    )
    for name, stats in rows:
        print(
            f"{name:>18}  {stats['throughput_rps']:>8.1f}  "
            f"{stats['query_p95_ms']:>14.2f}  {stats['ingest_p95_ms']:>15.1f}"
        )
    ratio = cluster["throughput_rps"] / single["throughput_rps"]
    print(f"\ncluster/single throughput ratio: {ratio:.2f}x")

    payload = {
        "bench": "cluster_vs_single_process",
        "config": {
            "n_shards": N_SHARDS,
            "n_query_clients": N_CLIENTS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "seed_runs": SEED_RUNS,
            "streaming_ingests": INGEST_RUNS,
            "workload": "boston-like VFL, 5 parties, 25 epochs",
        },
        "single_process": single,
        "cluster": cluster,
        "throughput_ratio": ratio,
    }
    out = REPO_ROOT / "BENCH_cluster.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
