"""Single-process serving vs. an N-shard cluster under concurrent load.

The cluster's pitch is not per-request speed — a proxy hop can only add
latency — but *isolation under mixed load*: streaming ingests are
CPU-bound numpy work that holds the run lock and (partly) the GIL, so on
a single process they stall concurrent leaderboard queries.  Sharding
runs across worker processes lets ingest-heavy traffic land on one shard
while queries on other shards stay fast.

This bench drives both deployments with the same mixed workload —
concurrent leaderboard queries against warm runs while fresh VFL runs
stream in — and records throughput and p95 latency per operation kind.
A second episode measures the *failover gap*: SIGKILL a shard's primary
and time how long reads stay dark, once with a warm standby (promotion)
and once without (cold respawn + WAL replay).  The standalone entry
point writes both into ``BENCH_cluster.json`` at the repo root so
successive PRs can track the gaps.

Run either way::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py --benchmark-only
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.workloads import build_vfl_workload
from repro.io import save_vfl_training_log
from repro.serve import (
    ClusterRouter,
    ClusterSupervisor,
    EvaluationHTTPServer,
    EvaluationService,
)

N_SHARDS = 3
N_CLIENTS = 6
SEED_RUNS = 6
INGEST_RUNS = 6
QUERIES_PER_CLIENT = 40
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def vfl_log_path(tmp_path_factory):
    workload = build_vfl_workload("boston", n_parties=5, epochs=25, seed=0)
    path = tmp_path_factory.mktemp("bench_cluster") / "vfl_run.npz"
    save_vfl_training_log(workload.result.log, path)
    return str(path)


def _post_run(port: int, log_path: str, run_id: str) -> int:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/runs",
        data=json.dumps(
            {"kind": "vfl", "log_path": log_path, "run_id": run_id}
        ).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status


def _get(port: int, path: str) -> int:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=120
    ) as response:
        response.read()
        return response.status


def _drive(port: int, log_path: str, tag: str) -> dict:
    """One mixed-load episode against whatever serves ``port``.

    ``N_CLIENTS`` query threads hammer the warm seed runs while one
    ingest thread streams ``INGEST_RUNS`` fresh registrations.  Every
    request's wall time is recorded; a non-2xx anywhere fails the bench.
    """
    for index in range(SEED_RUNS):
        status = _post_run(port, log_path, f"seed-{tag}-{index}")
        assert status == 201, status
    for index in range(SEED_RUNS):  # warm the query caches
        _get(port, f"/runs/seed-{tag}-{index}/leaderboard")

    query_latencies: list[float] = []
    ingest_latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def query_client(client: int) -> None:
        for index in range(QUERIES_PER_CLIENT):
            run = f"seed-{tag}-{(client + index) % SEED_RUNS}"
            start = time.perf_counter()
            try:
                _get(port, f"/runs/{run}/leaderboard")
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                with lock:
                    errors.append(f"query {run}: {exc}")
                continue
            with lock:
                query_latencies.append(time.perf_counter() - start)

    def ingest_client() -> None:
        for index in range(INGEST_RUNS):
            start = time.perf_counter()
            try:
                _post_run(port, log_path, f"stream-{tag}-{index}")
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                with lock:
                    errors.append(f"ingest {index}: {exc}")
                continue
            with lock:
                ingest_latencies.append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=query_client, args=(client,))
        for client in range(N_CLIENTS)
    ]
    threads.append(threading.Thread(target=ingest_client))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    assert not errors, errors[:3]
    requests = len(query_latencies) + len(ingest_latencies)
    return {
        "requests": requests,
        "elapsed_sec": elapsed,
        "throughput_rps": requests / elapsed,
        "query_p95_ms": _p95(query_latencies) * 1e3,
        "query_mean_ms": sum(query_latencies) / len(query_latencies) * 1e3,
        "ingest_p95_ms": _p95(ingest_latencies) * 1e3,
    }


def _p95(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _bench_single(log_path: str, tag: str) -> dict:
    server = EvaluationHTTPServer(("127.0.0.1", 0), EvaluationService())
    server.serve_background()
    try:
        return _drive(server.port, log_path, tag)
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()


def _bench_cluster(log_path: str, tag: str) -> dict:
    with tempfile.TemporaryDirectory() as wal_root:
        with ClusterSupervisor(N_SHARDS, wal_root=wal_root) as supervisor:
            router = ClusterRouter(("127.0.0.1", 0), supervisor)
            router.serve_background()
            try:
                return _drive(router.port, log_path, tag)
            finally:
                router.shutdown()
                router.server_close()


def _failover_gap_ms(log_path: str, *, standby_replicas: int) -> float:
    """SIGKILL a one-shard cluster's primary; return the read-dark gap.

    The gap runs from the kill to the first 200 a poller sees on the
    run's contributions.  With a warm standby the supervisor promotes
    (catch up the lag); without, it cold-respawns and replays the WAL —
    the difference is the replication tentpole's headline number.
    """
    import os
    import signal as _signal

    with tempfile.TemporaryDirectory() as wal_root:
        with ClusterSupervisor(
            1,
            wal_root=wal_root,
            standby_replicas=standby_replicas,
            probe_interval_s=0.1,
            probe_reset_s=0.5,
        ) as supervisor:
            router = ClusterRouter(("127.0.0.1", 0), supervisor)
            router.serve_background()
            try:
                assert _post_run(router.port, log_path, "failover") == 201
                if standby_replicas:
                    _wait_standby_caught_up(supervisor)
                victim = supervisor.describe()["shards"]["0"]["pid"]
                killed = time.perf_counter()
                os.kill(victim, _signal.SIGKILL)
                deadline = killed + 120
                while True:
                    assert time.perf_counter() < deadline, "never recovered"
                    try:
                        status = _get(
                            router.port, "/runs/failover/contributions"
                        )
                    except (urllib.error.URLError, ConnectionError, TimeoutError):
                        status = -1
                    if status == 200:
                        return (time.perf_counter() - killed) * 1e3
                    time.sleep(0.02)
            finally:
                router.shutdown()
                router.server_close()


def _wait_standby_caught_up(supervisor, deadline_s: float = 60.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        shard = supervisor.describe()["shards"]["0"]
        standby = shard.get("standby")
        if standby is not None and standby["pid"] is not None:
            host, port = standby["address"]
            request = urllib.request.Request(
                f"http://{host}:{port}/control/status",
                data=b"{}",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=5) as response:
                    replication = json.loads(response.read())["replication"]
            except (urllib.error.URLError, ConnectionError, TimeoutError):
                replication = None
            if (
                replication is not None
                and replication["lag_records"] == 0
                and replication["applied_seq"] == replication["primary_end_seq"]
                and replication["applied_seq"] > 0
            ):
                return
        time.sleep(0.05)
    raise AssertionError("standby never caught up")


def test_bench_cluster_vs_single_process(benchmark, vfl_log_path):
    """Both deployments absorb the identical mixed load with zero
    errors, and the cluster stays within generous absolute bounds
    despite the proxy hop.  Relative throughput is recorded, not raced:
    warm-cache queries are sub-millisecond, so the single/cluster ratio
    on a busy CI box swings 0.3x-2x run to run."""
    single = _bench_single(vfl_log_path, "sp")

    def episode():
        return _bench_cluster(vfl_log_path, "cl")

    cluster = benchmark.pedantic(episode, rounds=1, iterations=1)
    benchmark.extra_info["single_throughput_rps"] = single["throughput_rps"]
    benchmark.extra_info["cluster_throughput_rps"] = cluster["throughput_rps"]
    benchmark.extra_info["single_query_p95_ms"] = single["query_p95_ms"]
    benchmark.extra_info["cluster_query_p95_ms"] = cluster["query_p95_ms"]
    assert cluster["requests"] == single["requests"]  # nothing dropped
    assert cluster["throughput_rps"] >= 20.0
    assert cluster["query_p95_ms"] <= 500.0


def test_bench_failover_gap_warm_vs_cold(benchmark, vfl_log_path):
    """One SIGKILL each way; the warm (promotion) gap is recorded next
    to the cold (respawn + replay) gap.  Only generous absolute bounds
    are asserted — process spawn time on a loaded CI box dominates the
    cold number, and the warm/cold ordering is already a hard assertion
    in tests/test_cluster_replication.py under chaos-slowed replay."""

    def episode():
        return _failover_gap_ms(vfl_log_path, standby_replicas=1)

    warm_ms = benchmark.pedantic(episode, rounds=1, iterations=1)
    cold_ms = _failover_gap_ms(vfl_log_path, standby_replicas=0)
    benchmark.extra_info["warm_failover_gap_ms"] = warm_ms
    benchmark.extra_info["cold_failover_gap_ms"] = cold_ms
    assert warm_ms <= 60_000
    assert cold_ms <= 60_000


def main() -> int:
    """Standalone report: the comparison table plus ``BENCH_cluster.json``."""
    workload = build_vfl_workload("boston", n_parties=5, epochs=25, seed=0)
    with tempfile.TemporaryDirectory() as scratch:
        log_path = str(pathlib.Path(scratch) / "vfl_run.npz")
        save_vfl_training_log(workload.result.log, log_path)
        print(
            f"mixed load: {N_CLIENTS} query clients x {QUERIES_PER_CLIENT} "
            f"leaderboard gets + {INGEST_RUNS} streaming ingests"
        )
        single = _bench_single(log_path, "sp")
        cluster = _bench_cluster(log_path, "cl")
        print("\nfailover: SIGKILL the primary, time until reads answer again")
        warm_gap_ms = _failover_gap_ms(log_path, standby_replicas=1)
        cold_gap_ms = _failover_gap_ms(log_path, standby_replicas=0)

    rows = [("single-process", single), (f"{N_SHARDS}-shard cluster", cluster)]
    print(
        f"\n{'deployment':>18}  {'req/s':>8}  {'query p95 (ms)':>14}  "
        f"{'ingest p95 (ms)':>15}"
    )
    for name, stats in rows:
        print(
            f"{name:>18}  {stats['throughput_rps']:>8.1f}  "
            f"{stats['query_p95_ms']:>14.2f}  {stats['ingest_p95_ms']:>15.1f}"
        )
    ratio = cluster["throughput_rps"] / single["throughput_rps"]
    print(f"\ncluster/single throughput ratio: {ratio:.2f}x")
    print(
        f"failover gap: warm standby {warm_gap_ms:.0f} ms, "
        f"cold respawn+replay {cold_gap_ms:.0f} ms "
        f"({cold_gap_ms / max(warm_gap_ms, 1e-9):.1f}x)"
    )

    payload = {
        "bench": "cluster_vs_single_process",
        "config": {
            "n_shards": N_SHARDS,
            "n_query_clients": N_CLIENTS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "seed_runs": SEED_RUNS,
            "streaming_ingests": INGEST_RUNS,
            "workload": "boston-like VFL, 5 parties, 25 epochs",
        },
        "single_process": single,
        "cluster": cluster,
        "throughput_ratio": ratio,
        "failover": {
            "workload": "1 shard, 1 run (26 WAL records), SIGKILL primary",
            "warm_gap_ms": warm_gap_ms,
            "cold_gap_ms": cold_gap_ms,
            "cold_over_warm": cold_gap_ms / max(warm_gap_ms, 1e-9),
        },
    }
    out = REPO_ROOT / "BENCH_cluster.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
