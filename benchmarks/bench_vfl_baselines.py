"""Fig. 5 + Table V: DIG-FL vs TMC / GT in VFL.

Times the three estimators against the shared ground truth.  Shape per the
paper: all achieve high PCC, DIG-FL costs orders of magnitude less and
ships zero extra bytes.
"""

import math

import numpy as np

from repro.core import estimate_vfl_first_order
from repro.experiments.vfl_baselines import run_vfl_baselines
from repro.metrics import pearson_correlation
from repro.shapley import VFLRetrainUtility, gt_shapley, tmc_shapley


def test_bench_vfl_tmc(benchmark, vfl_boston_workload, vfl_boston_exact):
    w = vfl_boston_workload
    _, exact = vfl_boston_exact
    n = 8
    budget = max(2, int(math.ceil(n * math.log(n))))

    def run():
        utility = VFLRetrainUtility(w.trainer, w.split.train, w.split.validation)
        return tmc_shapley(utility, n_permutations=budget, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    pcc = pearson_correlation(report.totals, exact.totals)
    benchmark.extra_info["pcc"] = pcc
    assert pcc > 0.8


def test_bench_vfl_gt(benchmark, vfl_boston_workload, vfl_boston_exact):
    w = vfl_boston_workload
    _, exact = vfl_boston_exact
    n = 8
    budget = max(8, int(math.ceil(n * math.log(n) ** 2)))

    def run():
        utility = VFLRetrainUtility(w.trainer, w.split.train, w.split.validation)
        return gt_shapley(utility, n_tests=budget, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pcc"] = pearson_correlation(report.totals, exact.totals)


def test_bench_vfl_digfl_against_baseline_costs(
    vfl_boston_workload, vfl_boston_exact
):
    """DIG-FL reads the log; TMC/GT retrain — assert the cost ordering."""
    w = vfl_boston_workload
    digfl = estimate_vfl_first_order(w.result.log)

    tmc_utility = VFLRetrainUtility(w.trainer, w.split.train, w.split.validation)
    tmc_shapley(tmc_utility, n_permutations=10, seed=0)

    assert digfl.ledger.total_comm_bytes == 0
    assert tmc_utility.ledger.total_comm_bytes > 0
    assert tmc_utility.ledger.compute_seconds > 5 * digfl.ledger.compute_seconds


def test_bench_table5_shape(benchmark):
    """Two-dataset Table V sweep: PCC ordering and cost gap."""
    report = benchmark.pedantic(
        lambda: run_vfl_baselines(
            datasets=("diabetes", "iris"), epochs=20, max_parties=8, max_rows=400
        ),
        rounds=1,
        iterations=1,
    )
    by_method: dict[str, list[float]] = {}
    times: dict[str, list[float]] = {}
    for row in report.rows:
        by_method.setdefault(row.labels["method"], []).append(row.metrics["pcc"])
        times.setdefault(row.labels["method"], []).append(row.metrics["t_s"])
    means = {m: float(np.mean(v)) for m, v in by_method.items()}
    benchmark.extra_info.update(means)
    assert means["DIG-FL"] > 0.9
    assert float(np.mean(times["TMC-shapley"])) > 10 * float(np.mean(times["DIG-FL"]))
