"""Backend face-off: wall time and Shapley fidelity per estimator.

One small federation, one training log, every registered contribution
backend — and the ``2^n``-retraining exact Shapley value as ground
truth.  For each backend the bench records the whole-log estimation wall
time and the Spearman correlation of its totals against the exact value,
which is the trade-off the registry exists to expose: DIG-FL is
gradient-cheap but first-order, the sampling backends pay model
reconstructions for Shapley-shaped answers.

The standalone entry point writes ``BENCH_estimators.json`` at the repo
root so successive PRs can track both columns.  A second sweep times
``gtg_shapley`` against ``dpvs`` across party counts and records the
crossover — the party count where dynamic pruning starts beating guided
truncation — which :func:`repro.core.backends.choose_backend` reads for
backend auto-selection.  Run either way::

    PYTHONPATH=src python benchmarks/bench_estimators.py
    PYTHONPATH=src python -m pytest benchmarks/bench_estimators.py --benchmark-only
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core import backend_names, get_backend
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.metrics import spearman_correlation
from repro.nn import LRSchedule, make_mlp_classifier
from repro.shapley import HFLRetrainUtility, exact_shapley

N_PARTIES = 4
EPOCHS = 4
#: Party counts swept for the gtg_shapley/dpvs crossover.
CROSSOVER_PARTIES = (3, 4, 6, 8, 10)
CROSSOVER_EPOCHS = 3
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _model_factory():
    return make_mlp_classifier(100, 10, hidden=(16,), seed=0)


def _world():
    federation = build_hfl_federation(
        mnist_like(400, seed=0), N_PARTIES, n_mislabeled=1, seed=0
    )
    trainer = HFLTrainer(_model_factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5))
    result = trainer.train(
        federation.locals, federation.validation, track_validation=True
    )
    return federation, trainer, result


def _exact(federation, trainer, result):
    utility = HFLRetrainUtility(
        trainer,
        federation.locals,
        federation.validation,
        init_theta=result.log.initial_theta,
    )
    return exact_shapley(utility)


def run_backends(federation, log, *, repeats: int = 3) -> dict:
    """Per-backend totals and best-of-``repeats`` wall seconds."""
    rows = {}
    for name in backend_names():
        backend = get_backend(name)
        if not backend.supports("hfl"):
            continue
        best = float("inf")
        report = None
        for _ in range(repeats):
            started = time.perf_counter()
            report = backend.estimate_hfl(
                log, federation.validation, _model_factory
            )
            best = min(best, time.perf_counter() - started)
        rows[name] = {"totals": report.totals, "seconds": best}
    return rows


def crossover_sweep(
    parties=CROSSOVER_PARTIES, *, epochs: int = CROSSOVER_EPOCHS, repeats: int = 2
) -> dict:
    """Time gtg_shapley vs dpvs per party count; find where dpvs wins.

    Returns ``{"n_parties": smallest n where dpvs is at least as fast,
    or None if it never is, "sweep": {n: {backend: seconds}}}`` — the
    shape :func:`repro.core.backends.choose_backend` consumes.
    """
    sweep: dict = {}
    crossover = None
    for n in parties:
        federation = build_hfl_federation(
            mnist_like(100 * n, seed=0), n, n_mislabeled=1, seed=0
        )
        trainer = HFLTrainer(
            _model_factory, epochs=epochs, lr_schedule=LRSchedule(0.5)
        )
        result = trainer.train(
            federation.locals, federation.validation, track_validation=True
        )
        row = {}
        for name in ("gtg_shapley", "dpvs"):
            best = float("inf")
            for _ in range(repeats):
                backend = get_backend(name)
                started = time.perf_counter()
                backend.estimate_hfl(
                    result.log, federation.validation, _model_factory
                )
                best = min(best, time.perf_counter() - started)
            row[name] = round(best, 4)
        sweep[n] = row
        if crossover is None and row["dpvs"] <= row["gtg_shapley"]:
            crossover = n
    return {"n_parties": crossover, "sweep": sweep}


def test_bench_backends_rank_against_exact(benchmark):
    """Fidelity gate: every backend positively rank-correlates with exact
    Shapley on a log with one clearly-worse participant."""
    federation, trainer, result = _world()
    exact = _exact(federation, trainer, result)
    rows = benchmark(run_backends, federation, result.log, repeats=1)
    for name, row in rows.items():
        rho = spearman_correlation(row["totals"], exact.totals)
        benchmark.extra_info[f"spearman_{name}"] = round(float(rho), 4)
        assert rho > 0.0, f"{name}: spearman {rho} vs exact"


def main() -> int:
    federation, trainer, result = _world()
    started = time.perf_counter()
    exact = _exact(federation, trainer, result)
    exact_seconds = time.perf_counter() - started
    rows = run_backends(federation, result.log)
    print(
        f"{N_PARTIES} parties, {EPOCHS} epochs; exact Shapley: "
        f"{exact_seconds:.2f}s ({2 ** N_PARTIES} retrainings)"
    )
    print(f"{'backend':<12} {'seconds':>8} {'spearman':>9}  totals")
    payload: dict = {
        "config": {"parties": N_PARTIES, "epochs": EPOCHS},
        "exact_seconds": round(exact_seconds, 4),
        "backends": {},
    }
    for name, row in rows.items():
        rho = spearman_correlation(row["totals"], exact.totals)
        print(
            f"{name:<12} {row['seconds']:>8.3f} {rho:>+9.3f}  "
            f"{np.round(row['totals'], 4)}"
        )
        payload["backends"][name] = {
            "seconds": round(row["seconds"], 4),
            "spearman_vs_exact": round(float(rho), 4),
            "totals": [round(float(v), 6) for v in row["totals"]],
        }
    payload["crossover"] = crossover_sweep()
    crossover = payload["crossover"]["n_parties"]
    print(
        f"gtg_shapley/dpvs crossover: "
        f"{'never (dpvs always slower)' if crossover is None else f'{crossover} parties'}"
    )
    for n, row in payload["crossover"]["sweep"].items():
        print(f"  {n:>3} parties: gtg={row['gtg_shapley']:.3f}s dpvs={row['dpvs']:.3f}s")
    out = REPO_ROOT / "BENCH_estimators.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"-> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
