"""Table III: DIG-FL vs actual Shapley value for VFL on the ten datasets.

The paper reports PCC 0.901-0.998 and time reductions like 76,584.7s →
13.77s (Seoul bike).  The bench regenerates the table at capped party
counts and asserts PCC > 0.9 with a ≫10× cost gap on every dataset.
"""

import pytest

from repro.core import estimate_vfl_first_order
from repro.data import VFL_DATASETS
from repro.experiments.vfl_accuracy import run_vfl_accuracy
from repro.metrics import pearson_correlation
from repro.shapley import VFLRetrainUtility, exact_shapley_values


def test_bench_digfl_vfl_estimation(benchmark, vfl_boston_workload, vfl_boston_exact):
    """Time the Eq. 27 estimator on the shared Boston cell."""
    w = vfl_boston_workload
    _, exact = vfl_boston_exact
    report = benchmark(estimate_vfl_first_order, w.result.log)
    pcc = pearson_correlation(report.totals, exact.totals)
    benchmark.extra_info["pcc_vs_actual"] = pcc
    assert pcc > 0.9


def test_bench_actual_vfl_shapley(benchmark, vfl_boston_workload):
    """Time the 2^8-retraining ground truth for the same cell."""
    w = vfl_boston_workload

    def run():
        utility = VFLRetrainUtility(w.trainer, w.split.train, w.split.validation)
        return exact_shapley_values(utility), utility

    _, utility = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["retrainings"] = utility.evaluations
    assert utility.evaluations == 2**8


@pytest.mark.parametrize("dataset", sorted(VFL_DATASETS))
def test_bench_table3_per_dataset(benchmark, dataset):
    """One Table III row per dataset (party count capped at 8 for speed)."""
    report = benchmark.pedantic(
        lambda: run_vfl_accuracy(
            datasets=(dataset,), epochs=25, max_parties=8, max_rows=800
        ),
        rounds=1,
        iterations=1,
    )
    row = report.rows[0]
    benchmark.extra_info.update(row.metrics)
    assert row.metrics["pcc"] > 0.9, f"{dataset}: PCC below Table III shape"
    assert row.metrics["t_actual_s"] > 10 * row.metrics["t_digfl_s"]
