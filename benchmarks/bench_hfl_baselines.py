"""Fig. 4 + Table IV: DIG-FL vs TMC / GT / MR / IM in HFL.

Times each method on the same federation at the paper's budgets and
asserts the comparison's shape: DIG-FL's average PCC at least matches the
sampling baselines' while costing orders of magnitude less retraining.
"""

import math

import numpy as np

from repro.experiments.hfl_baselines import run_hfl_baselines
from repro.metrics import pearson_correlation
from repro.shapley import (
    HFLRetrainUtility,
    gt_shapley,
    im_scores,
    mr_shapley,
    tmc_shapley,
)


def _fresh_utility(w):
    return HFLRetrainUtility(
        w.trainer,
        w.federation.locals,
        w.federation.validation,
        init_theta=w.result.log.initial_theta,
    )


def test_bench_tmc(benchmark, hfl_mnist_workload, hfl_mnist_exact):
    w = hfl_mnist_workload
    _, exact = hfl_mnist_exact
    n = 5
    budget = max(2, int(math.ceil(n * math.log(n))))

    def run():
        return tmc_shapley(_fresh_utility(w), n_permutations=budget, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pcc"] = pearson_correlation(report.totals, exact.totals)


def test_bench_gt(benchmark, hfl_mnist_workload, hfl_mnist_exact):
    w = hfl_mnist_workload
    _, exact = hfl_mnist_exact
    n = 5
    budget = max(8, int(math.ceil(n * math.log(n) ** 2)))

    def run():
        return gt_shapley(_fresh_utility(w), n_tests=budget, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pcc"] = pearson_correlation(report.totals, exact.totals)


def test_bench_mr(benchmark, hfl_mnist_workload, hfl_mnist_exact):
    w = hfl_mnist_workload
    _, exact = hfl_mnist_exact

    def run():
        return mr_shapley(w.result.log, w.federation.validation, w.model_factory)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pcc"] = pearson_correlation(report.totals, exact.totals)


def test_bench_im(benchmark, hfl_mnist_workload, hfl_mnist_exact):
    w = hfl_mnist_workload
    _, exact = hfl_mnist_exact
    report = benchmark(im_scores, w.result.log)
    benchmark.extra_info["pcc"] = pearson_correlation(report.totals, exact.totals)


def test_bench_table4_shape(benchmark):
    """Full Table IV sweep: DIG-FL's mean PCC ≥ sampling baselines'."""
    report = benchmark.pedantic(
        lambda: run_hfl_baselines(datasets=("mnist", "cifar10"), epochs=8),
        rounds=1,
        iterations=1,
    )
    by_method: dict[str, list[float]] = {}
    for row in report.rows:
        by_method.setdefault(row.labels["method"], []).append(row.metrics["pcc"])
    means = {m: float(np.mean(v)) for m, v in by_method.items()}
    benchmark.extra_info.update(means)
    assert means["DIG-FL"] > 0.7
    assert means["DIG-FL"] >= means["TMC-shapley"] - 0.05
    assert means["DIG-FL"] >= means["GT-shapley"] - 0.05
    assert means["DIG-FL"] >= means["IM"] - 0.05
    # Cost shape: the log-based methods pay zero communication.
    for row in report.rows:
        if row.labels["method"] in ("DIG-FL", "MR", "IM"):
            assert row.metrics["comm_mb"] == 0.0
        if row.labels["method"] in ("TMC-shapley", "GT-shapley"):
            assert row.metrics["comm_mb"] > 0.0
