"""Robustness-matrix bench: full scenario × backend grid, verdicts + timings.

Runs :class:`repro.scenario.RobustnessMatrix` over the default adverse
grid (Dirichlet α ∈ {0.1, 1.0}, symmetric and pairwise label noise,
free-riders, VFL modality dropout) with every registered backend, and
writes the per-cell verdicts — bad parties in the bottom-``k``,
streaming == batch, Spearman vs exact Shapley, wall seconds — to
``BENCH_scenarios.json`` at the repo root, so the robustness posture is
diffable across PRs.  The pytest entry point gates the policy the CI
matrix job rehearses: ``digfl`` must pass rank correctness everywhere
and every backend must keep streaming bit-equal to batch.  Run either
way::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py --benchmark-only
"""

from __future__ import annotations

import json
import pathlib

from repro.scenario import RobustnessMatrix

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SEED = 0


def run_matrix() -> "repro.scenario.MatrixResult":  # noqa: F821
    return RobustnessMatrix(seed=SEED).run()


def test_bench_scenario_matrix(benchmark):
    """The full grid passes its verdict policy (and is timed)."""
    result = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    for cell in result.cells:
        benchmark.extra_info[f"{cell.scenario}:{cell.backend}"] = {
            "bad_in_bottom_k": cell.bad_in_bottom_k,
            "streaming_equals_batch": cell.streaming_equals_batch,
            "spearman_vs_exact": cell.spearman_vs_exact,
        }
    result.assert_robustness()


def main() -> int:
    result = run_matrix()
    print(result.table())
    payload = result.to_dict()
    out = REPO_ROOT / "BENCH_scenarios.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"-> {out}")
    if not result.ok:
        for problem in result.failures():
            print(f"REGRESSION: {problem}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
