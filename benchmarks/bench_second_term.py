"""Fig. 2 + Table II: cost and accuracy of the second-order term.

Times Algorithm 2 (first-order only) against Algorithm 1 (with
participant-local HVPs) on the same log, and asserts the Table II claim:
the relative error of dropping the Hessian term stays single-digit percent
in the small-step regime.
"""

import numpy as np
import pytest

from repro.core import (
    estimate_hfl_interactive,
    estimate_hfl_resource_saving,
    estimate_vfl_first_order,
    estimate_vfl_second_order,
)
from repro.experiments.second_term import run_second_term
from repro.experiments.workloads import build_hfl_workload, build_vfl_workload
from repro.metrics import relative_error


@pytest.fixture(scope="module")
def small_step_hfl():
    return build_hfl_workload("mnist", epochs=8, lr=0.05, seed=0)


@pytest.fixture(scope="module")
def small_step_vfl():
    return build_vfl_workload("boston", epochs=20, lr=0.025, seed=0)


def test_bench_algorithm2_resource_saving(benchmark, small_step_hfl):
    """Time the first-order estimator (the deployed fast path)."""
    w = small_step_hfl
    report = benchmark(
        estimate_hfl_resource_saving,
        w.result.log,
        w.federation.validation,
        w.model_factory,
    )
    assert report.per_epoch.shape == (8, 5)


def test_bench_algorithm1_interactive(benchmark, small_step_hfl):
    """Time the HVP-corrected estimator; assert the Table II error bound."""
    w = small_step_hfl

    def run():
        full = estimate_hfl_interactive(
            w.result.log, w.federation.validation, w.model_factory,
            w.federation.locals,
        )
        approx = estimate_hfl_resource_saving(
            w.result.log, w.federation.validation, w.model_factory
        )
        return full, approx

    full, approx = benchmark.pedantic(run, rounds=2, iterations=1)
    err = relative_error(
        float(np.abs(full.totals).sum()), float(np.abs(approx.totals).sum())
    )
    benchmark.extra_info["rel_error"] = err
    assert err < 0.10, f"second-term error {err:.3f} above single-digit percent"


def test_bench_vfl_second_order(benchmark, small_step_vfl):
    """Time Eq. 26 vs Eq. 27 on a vertical log; assert the error bound."""
    w = small_step_vfl

    def run():
        full = estimate_vfl_second_order(w.result.log, w.trainer.model, w.split.train)
        approx = estimate_vfl_first_order(w.result.log)
        return full, approx

    full, approx = benchmark.pedantic(run, rounds=2, iterations=1)
    err = relative_error(
        float(np.abs(full.totals).sum()), float(np.abs(approx.totals).sum())
    )
    benchmark.extra_info["rel_error"] = err
    assert err < 0.10


def test_bench_table2_full_sweep(benchmark):
    """Regenerate the whole Table II (14 datasets) and bound the mean error."""
    report = benchmark.pedantic(
        lambda: run_second_term(), rounds=1, iterations=1
    )
    errors = [row.metrics["rel_error"] for row in report.rows]
    benchmark.extra_info["mean_rel_error"] = float(np.mean(errors))
    benchmark.extra_info["max_rel_error"] = float(np.max(errors))
    assert np.mean(errors) < 0.08, "mean Table II error should be single-digit %"
    assert max(errors) < 0.20
