"""Fig. 6: estimated vs actual Shapley value for each epoch.

Times the per-round exact computation (2^n validation evaluations per
round — the expensive side of Fig. 6) against DIG-FL's per-epoch pass, and
asserts the figure's two claims: the curves track each other (high pooled
PCC) and clean participants dominate corrupted ones in most epochs.
"""

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.experiments.per_epoch import run_per_epoch
from repro.metrics import pearson_correlation
from repro.shapley import per_round_exact_shapley


def test_bench_per_round_exact(benchmark, hfl_mnist_workload):
    """Time the reconstruction-based exact per-round Shapley (32/round)."""
    w = hfl_mnist_workload
    per_epoch = benchmark.pedantic(
        per_round_exact_shapley,
        args=(w.result.log, w.federation.validation, w.model_factory),
        rounds=1,
        iterations=1,
    )
    assert per_epoch.shape == (10, 5)


def test_bench_digfl_per_epoch_tracks_actual(benchmark, hfl_mnist_workload):
    w = hfl_mnist_workload
    actual = per_round_exact_shapley(
        w.result.log, w.federation.validation, w.model_factory
    )
    estimated = benchmark(
        estimate_hfl_resource_saving,
        w.result.log,
        w.federation.validation,
        w.model_factory,
    ).per_epoch
    pcc = pearson_correlation(estimated.ravel(), actual.ravel())
    benchmark.extra_info["per_epoch_pcc"] = pcc
    assert pcc > 0.75


def test_bench_fig6_participant_type_ordering(benchmark):
    """Clean participants should out-contribute corrupted ones in most epochs."""
    report = benchmark.pedantic(
        lambda: run_per_epoch(datasets=("mnist",), epochs=8),
        rounds=1,
        iterations=1,
    )
    epoch_rows = [r for r in report.rows if r.labels["epoch"] != "all"]
    clean_beats_mislabeled = [
        r.metrics["est_clean"] > r.metrics["est_mislabeled"] for r in epoch_rows
    ]
    assert np.mean(clean_beats_mislabeled) > 0.6
    summary = next(r for r in report.rows if r.labels["epoch"] == "all")
    benchmark.extra_info["pooled_pcc"] = summary.metrics["pcc"]
    assert summary.metrics["pcc"] > 0.7
