"""Extension bench: adversary detection and defence via DIG-FL.

Not a paper figure — it quantifies the Sec. I motivation ("localize
low-quality participants … avoid adversarial sample attacks") against
update-level attackers.
"""

from repro.experiments.robustness import run_attack_detection


def test_bench_attack_detection(benchmark):
    report = benchmark.pedantic(
        lambda: run_attack_detection(
            attacks=("sign_flip", "free_rider"), epochs=10
        ),
        rounds=1,
        iterations=1,
    )
    rows = {row.labels["attack"]: row.metrics for row in report.rows}
    benchmark.extra_info["sign_flip"] = rows["sign_flip"]
    # Detection shape: perfect recall on the active attacker, honest
    # participants clearly separated.
    assert rows["sign_flip"]["recall"] == 1.0
    assert rows["sign_flip"]["mean_attacker_phi"] < 0
    assert rows["sign_flip"]["mean_honest_phi"] > 0
    # Defence shape: reweighting recovers accuracy under sign-flip attack.
    assert (
        rows["sign_flip"]["acc_defended"]
        > rows["sign_flip"]["acc_attacked"] + 0.1
    )
    # Free-rider: contribution pinned at zero.
    assert abs(rows["free_rider"]["mean_attacker_phi"]) < 1e-9
