"""Ablation benches for the design choices DESIGN.md §5 calls out."""

from repro.experiments.ablations import (
    run_learning_rate_ablation,
    run_validation_size_ablation,
    run_weighting_scheme_ablation,
)


def test_bench_validation_size(benchmark):
    """DIG-FL accuracy vs validation-set size: should stay usable when the
    validation set shrinks to a few dozen rows."""
    report = benchmark.pedantic(
        lambda: run_validation_size_ablation(fractions=(0.02, 0.1, 0.2), epochs=8),
        rounds=1,
        iterations=1,
    )
    pccs = {row.labels["val_fraction"]: row.metrics["pcc"] for row in report.rows}
    benchmark.extra_info["pcc_by_fraction"] = {str(k): v for k, v in pccs.items()}
    assert pccs[0.2] > 0.75
    assert pccs[0.02] > 0.5  # degraded but still informative


def test_bench_learning_rate(benchmark):
    """First-order quality vs step size: small steps must not be worse."""
    report = benchmark.pedantic(
        lambda: run_learning_rate_ablation(lrs=(0.1, 0.5, 1.0), epochs=8),
        rounds=1,
        iterations=1,
    )
    pccs = {row.labels["lr"]: row.metrics["pcc"] for row in report.rows}
    benchmark.extra_info["pcc_by_lr"] = {str(k): v for k, v in pccs.items()}
    assert pccs[0.1] > 0.7


def test_bench_fedavg_sweep(benchmark):
    """DIG-FL accuracy under FedAvg local training (extension)."""
    from repro.experiments import run_fedavg_sweep

    report = benchmark.pedantic(
        lambda: run_fedavg_sweep(local_steps=(1, 4, 8), epochs=6),
        rounds=1,
        iterations=1,
    )
    pccs = {row.labels["local_steps"]: row.metrics["pcc"] for row in report.rows}
    benchmark.extra_info["pcc_by_local_steps"] = {str(k): v for k, v in pccs.items()}
    assert min(pccs.values()) > 0.6


def test_bench_weighting_scheme(benchmark):
    """Eq. 17 rectification vs softmax under heavy mislabeling."""
    report = benchmark.pedantic(
        lambda: run_weighting_scheme_ablation(m=3, epochs=15),
        rounds=1,
        iterations=1,
    )
    metrics = report.rows[0].metrics
    benchmark.extra_info.update(metrics)
    # Both schemes should beat plain FedSGD in this regime.
    assert metrics["acc_rectified"] > metrics["acc_fedsgd"]
