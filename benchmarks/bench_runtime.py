"""Round throughput of the federated runtime vs. worker count.

The engine's pitch is that local updates are embarrassingly parallel
within a round: with ``n`` parties and ``w`` pool workers the round's
critical path shrinks from ``n`` local updates to ``⌈n/w⌉``.  This bench
measures realised rounds/sec for 1, 2 and 4 workers on an 8-party MNIST
cell — both as a pytest-benchmark module and as a standalone script::

    PYTHONPATH=src python benchmarks/bench_runtime.py
    PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py --benchmark-only

Thread-pool scaling is bounded by how much of the local update releases
the GIL (the BLAS matmuls inside the autodiff ops), so expect sublinear
but visible gains; the serial executor is the 1-worker reference.
"""

from __future__ import annotations

import time

import pytest

from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_hfl_model
from repro.runtime import FederatedRuntime, RuntimeConfig

WORKER_COUNTS = (1, 2, 4)
N_PARTIES = 8
EPOCHS = 5


def _build_cell(n_samples: int = 1600, seed: int = 0):
    fed = build_hfl_federation(
        mnist_like(n_samples, seed=seed), N_PARTIES, seed=seed
    )

    def factory():
        return make_hfl_model("mnist", seed=seed)

    trainer = HFLTrainer(factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5))
    return fed, trainer


def _train_once(workers: int, fed, trainer):
    config = RuntimeConfig(
        executor="serial" if workers == 1 else "threads", workers=workers
    )
    runtime = FederatedRuntime(config)
    return runtime.run_hfl(trainer, fed.locals, fed.validation)


@pytest.fixture(scope="module")
def runtime_cell():
    return _build_cell()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_runtime_round_throughput(benchmark, runtime_cell, workers):
    """Rounds/sec of the engine at each worker count (same numbers each way)."""
    fed, trainer = runtime_cell
    result = benchmark.pedantic(
        _train_once, args=(workers, fed, trainer), rounds=1, iterations=1
    )
    assert result.log.n_epochs == EPOCHS
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["rounds_per_sec"] = EPOCHS / elapsed
    benchmark.extra_info["workers"] = workers


def main() -> int:
    """Standalone report: rounds/sec for each worker count."""
    fed, trainer = _build_cell()
    print(f"{N_PARTIES}-party MNIST cell, {EPOCHS} rounds per run")
    print(f"{'workers':>7}  {'seconds':>8}  {'rounds/sec':>10}  {'speedup':>7}")
    baseline = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        result = _train_once(workers, fed, trainer)
        elapsed = time.perf_counter() - start
        assert result.log.n_epochs == EPOCHS
        baseline = baseline or elapsed
        print(
            f"{workers:>7}  {elapsed:>8.3f}  {EPOCHS / elapsed:>10.2f}  "
            f"{baseline / elapsed:>6.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
