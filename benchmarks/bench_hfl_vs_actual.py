"""Fig. 3: DIG-FL vs actual Shapley value for HFL — accuracy and cost.

The timing table contrasts DIG-FL's log pass against the 2^n-retraining
ground truth on the same federation; the PCC and the cost ratio are the
paper's headline claims (PCC up to 0.968 on MNIST; cost reduced from
8.9e5s to 1.1e3s).
"""

import pytest

from repro.core import estimate_hfl_resource_saving
from repro.experiments.hfl_accuracy import run_hfl_accuracy
from repro.metrics import pearson_correlation
from repro.shapley import HFLRetrainUtility, exact_shapley_values


def test_bench_digfl_estimation(benchmark, hfl_mnist_workload, hfl_mnist_exact):
    """Time DIG-FL's whole-training estimate; assert PCC vs ground truth."""
    w = hfl_mnist_workload
    _, exact = hfl_mnist_exact
    report = benchmark(
        estimate_hfl_resource_saving,
        w.result.log,
        w.federation.validation,
        w.model_factory,
    )
    pcc = pearson_correlation(report.totals, exact.totals)
    benchmark.extra_info["pcc_vs_actual"] = pcc
    # Single-cell PCC; the paper's headline 0.968 is pooled over the whole
    # m-sweep (covered by test_bench_fig3_per_dataset below).
    assert pcc > 0.7


def test_bench_actual_shapley_retraining(benchmark, hfl_mnist_workload):
    """Time the 2^n-retraining ground truth (n=5 → 32 FedSGD runs)."""
    w = hfl_mnist_workload

    def run():
        utility = HFLRetrainUtility(
            w.trainer,
            w.federation.locals,
            w.federation.validation,
            init_theta=w.result.log.initial_theta,
        )
        return exact_shapley_values(utility), utility

    values, utility = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["retrainings"] = utility.evaluations
    assert utility.evaluations == 32


def test_bench_cost_gap_orders_of_magnitude(hfl_mnist_workload, hfl_mnist_exact):
    """Fig. 3(c): the exact computation costs ≫ DIG-FL on the same cell."""
    w = hfl_mnist_workload
    utility, _ = hfl_mnist_exact
    report = estimate_hfl_resource_saving(
        w.result.log, w.federation.validation, w.model_factory
    )
    ratio = utility.ledger.compute_seconds / max(report.ledger.compute_seconds, 1e-9)
    assert ratio > 10, f"expected ≫10× gap, got {ratio:.1f}×"
    # Fig. 3(d): DIG-FL adds zero communication; retraining pays full
    # FedSGD communication per coalition.
    assert report.ledger.total_comm_bytes == 0
    assert utility.ledger.total_comm_bytes > 0


@pytest.mark.parametrize("dataset", ["mnist", "cifar10", "motor", "real"])
def test_bench_fig3_per_dataset(benchmark, dataset):
    """Regenerate one Fig. 3 dataset cell (pooled PCC over m sweep)."""
    report = benchmark.pedantic(
        lambda: run_hfl_accuracy(datasets=(dataset,), ms=(0, 2), epochs=8),
        rounds=1,
        iterations=1,
    )
    row = report.rows[0]
    benchmark.extra_info.update(row.metrics)
    assert row.metrics["pcc"] > 0.7, f"{dataset}: pooled PCC too low"
    assert row.metrics["t_actual_s"] > 5 * row.metrics["t_digfl_s"]
