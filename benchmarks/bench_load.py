"""Open-loop load harness: is the serving stack fast enough, judged by SLO.

The other serving benches (``bench_serve.py``, ``bench_cluster.py``) are
*closed-loop*: each client thread fires its next request only after the
previous one answers, so a slow server quietly slows the offered load
and the recorded percentiles flatter it — the coordinated-omission trap.
This harness is **open-loop**: requests depart on a fixed arrival
schedule (``target_rps``, uniform spacing) regardless of how the server
is doing, and every latency is measured from the request's *intended*
send time.  A request that waited behind a backlog is charged that wait,
exactly as a real client arriving on its own clock would experience it.

The workload mixes concurrent leaderboard queries against warm runs with
streaming ``POST /runs`` ingests (one in every ``INGEST_EVERY``
arrivals), driven against both deployments — a single worker process and
an in-process N-shard cluster behind the consistent-hash router.  Each
episode reports p50/p95/p99/p99.9 from the client's clock, the shed
rate (429/503+Retry-After — the designed overload behaviour, counted
separately from failures), and the *server's own* SLO verdict scraped
from ``GET /statusz`` afterwards.  The standalone entry point writes
``BENCH_load.json`` at the repo root; ``--check`` turns the verdict into
an exit code for CI (non-zero on a burning SLO, a bare 500, or a
connection error).

Run either way::

    PYTHONPATH=src python benchmarks/bench_load.py
    PYTHONPATH=src python benchmarks/bench_load.py --cluster 2 --check
    PYTHONPATH=src python -m pytest benchmarks/bench_load.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import threading
import time
from http.client import HTTPConnection, HTTPException

import pytest

from repro.experiments.workloads import build_vfl_workload
from repro.io import save_vfl_training_log
from repro.serve import (
    ClusterRouter,
    ClusterSupervisor,
    EvaluationHTTPServer,
    EvaluationService,
)

N_SHARDS = 3
SEED_RUNS = 4
INGEST_EVERY = 25          # one streaming registration per 25 arrivals
TARGET_RPS = 120.0
DURATION_S = 6.0
N_SENDERS = 8              # sender threads; arrivals stride across them
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p99.9", 0.999))


@pytest.fixture(scope="module")
def vfl_log_path(tmp_path_factory):
    workload = build_vfl_workload("boston", n_parties=5, epochs=25, seed=0)
    path = tmp_path_factory.mktemp("bench_load") / "vfl_run.npz"
    save_vfl_training_log(workload.result.log, path)
    return str(path)


def _request(
    port: int, method: str, path: str, body: bytes | None = None
) -> tuple[int, bool]:
    """One HTTP request; returns ``(status, retry_after_present)``.

    A connection-level failure returns status ``-1`` — the open loop
    never stops for it, it just lands in the episode's error count.
    """
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        response.read()
        return response.status, response.headers.get("Retry-After") is not None
    except (OSError, HTTPException):
        return -1, False
    finally:
        conn.close()


def _get_json(port: int, path: str) -> dict:
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return json.loads(response.read())
    finally:
        conn.close()


def _seed(port: int, log_path: str, tag: str) -> None:
    """Register the warm query targets and prime their leaderboard caches."""
    for index in range(SEED_RUNS):
        body = json.dumps(
            {"kind": "vfl", "log_path": log_path, "run_id": f"seed-{tag}-{index}"}
        ).encode()
        status, _ = _request(port, "POST", "/runs", body)
        assert status == 201, f"seeding failed with {status}"
    for index in range(SEED_RUNS):
        status, _ = _request(port, "GET", f"/runs/seed-{tag}-{index}/leaderboard")
        assert status == 200, f"warmup failed with {status}"


def _open_loop(
    port: int,
    log_path: str,
    tag: str,
    *,
    target_rps: float,
    duration_s: float,
    n_senders: int = N_SENDERS,
) -> list[tuple[int, bool, float]]:
    """Fire the fixed arrival schedule; return samples and wall elapsed.

    Each sample is ``(status, shed, latency)``.

    Arrival ``i`` is due at ``t0 + i/target_rps`` and its latency is
    measured from that *intended* instant, so sender backlog (the server
    falling behind) shows up in the tail instead of silently thinning
    the offered load.  Arrivals stride across ``n_senders`` threads;
    each sleeps until its next due time only when it is ahead.
    """
    n_arrivals = int(target_rps * duration_s)
    interval = 1.0 / target_rps
    samples: list = [None] * n_arrivals
    t0 = time.perf_counter() + 0.25  # lead-in so arrival 0 is never late

    def sender(lane: int) -> None:
        for i in range(lane, n_arrivals, n_senders):
            intended = t0 + i * interval
            now = time.perf_counter()
            if intended > now:
                time.sleep(intended - now)
            if i % INGEST_EVERY == INGEST_EVERY - 1:
                body = json.dumps(
                    {
                        "kind": "vfl",
                        "log_path": log_path,
                        "run_id": f"stream-{tag}-{i}",
                    }
                ).encode()
                status, retry_after = _request(port, "POST", "/runs", body)
            else:
                run = f"seed-{tag}-{i % SEED_RUNS}"
                status, retry_after = _request(
                    port, "GET", f"/runs/{run}/leaderboard"
                )
            shed = status == 429 or (status == 503 and retry_after)
            samples[i] = (status, shed, time.perf_counter() - intended)

    threads = [
        threading.Thread(target=sender, args=(lane,)) for lane in range(n_senders)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    return samples, elapsed


def _percentile(ordered: list[float], q: float) -> float:
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _summarize(
    samples: list[tuple[int, bool, float]],
    elapsed: float,
    statusz: dict,
    *,
    topology: str,
    target_rps: float,
    duration_s: float,
) -> dict:
    latencies = sorted(s[2] for s in samples)
    shed = sum(1 for s in samples if s[1])
    bare_500 = sum(1 for s in samples if s[0] == 500)
    errors_5xx = sum(1 for s in samples if s[0] >= 500 and not s[1])
    connection_errors = sum(1 for s in samples if s[0] == -1)
    slo = statusz.get("slo", {})
    burning = [
        entry["name"] for entry in slo.get("slos", []) if entry.get("burning")
    ]
    return {
        "topology": topology,
        "target_rps": target_rps,
        "duration_s": duration_s,
        "requests": len(samples),
        "achieved_rps": len(samples) / elapsed,
        "shed": shed,
        "shed_rate": shed / len(samples),
        "errors_5xx": errors_5xx,
        "bare_500": bare_500,
        "connection_errors": connection_errors,
        "latency_ms": {
            **{name: _percentile(latencies, q) * 1e3 for name, q in PERCENTILES},
            "max": latencies[-1] * 1e3,
            "mean": sum(latencies) / len(latencies) * 1e3,
        },
        "slo": {
            "status": statusz.get("status", "unknown"),
            "burning": burning,
        },
    }


def _episode_single(
    log_path: str, *, target_rps: float, duration_s: float
) -> dict:
    server = EvaluationHTTPServer(("127.0.0.1", 0), EvaluationService())
    server.serve_background()
    try:
        _seed(server.port, log_path, "sp")
        samples, elapsed = _open_loop(
            server.port, log_path, "sp",
            target_rps=target_rps, duration_s=duration_s,
        )
        statusz = _get_json(server.port, "/statusz")
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
    return _summarize(
        samples, elapsed, statusz,
        topology="single", target_rps=target_rps, duration_s=duration_s,
    )


def _episode_cluster(
    log_path: str, *, n_shards: int, target_rps: float, duration_s: float
) -> dict:
    with tempfile.TemporaryDirectory() as wal_root:
        with ClusterSupervisor(n_shards, wal_root=wal_root) as supervisor:
            router = ClusterRouter(("127.0.0.1", 0), supervisor)
            router.serve_background()
            try:
                _seed(router.port, log_path, "cl")
                samples, elapsed = _open_loop(
                    router.port, log_path, "cl",
                    target_rps=target_rps, duration_s=duration_s,
                )
                statusz = _get_json(router.port, "/statusz")
            finally:
                router.shutdown()
                router.server_close()
    return _summarize(
        samples, elapsed, statusz,
        topology=f"cluster-{n_shards}",
        target_rps=target_rps, duration_s=duration_s,
    )


def _print_episode(stats: dict) -> None:
    lat = stats["latency_ms"]
    print(
        f"{stats['topology']:>12}  {stats['achieved_rps']:>7.1f} req/s  "
        f"p50 {lat['p50']:>7.2f}  p95 {lat['p95']:>7.2f}  "
        f"p99 {lat['p99']:>8.2f}  p99.9 {lat['p99.9']:>8.2f} ms  "
        f"shed {stats['shed_rate'] * 100:>4.1f}%  "
        f"slo {stats['slo']['status']}"
    )


def _check_failures(stats: dict) -> list[str]:
    """The ``--check`` contract: what disqualifies an episode."""
    failures = []
    if stats["slo"]["status"] == "burning":
        failures.append(
            f"{stats['topology']}: SLO burning ({stats['slo']['burning']})"
        )
    if stats["bare_500"]:
        failures.append(
            f"{stats['topology']}: {stats['bare_500']} bare 500 response(s)"
        )
    if stats["connection_errors"]:
        failures.append(
            f"{stats['topology']}: {stats['connection_errors']} connection "
            "error(s)"
        )
    return failures


# ------------------------------------------------------------------- pytest

def test_bench_load_open_loop_single(benchmark, vfl_log_path):
    """A short open-loop episode against one worker: no bare 500s, no
    connection errors, and the server's own SLO verdict stays clean.
    The load is modest (warm-cache leaderboards are sub-millisecond)
    so the assertion is about *correct classification under load*, not
    about racing the CI box."""

    def episode():
        return _episode_single(
            vfl_log_path, target_rps=60.0, duration_s=3.0
        )

    stats = benchmark.pedantic(episode, rounds=1, iterations=1)
    benchmark.extra_info["p99_ms"] = stats["latency_ms"]["p99"]
    benchmark.extra_info["shed_rate"] = stats["shed_rate"]
    assert stats["requests"] == int(60.0 * 3.0)
    assert stats["bare_500"] == 0
    assert stats["connection_errors"] == 0
    assert stats["slo"]["status"] in ("ok", "burning")
    assert _check_failures(stats) == [], _check_failures(stats)


# --------------------------------------------------------------- standalone

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cluster", type=int, default=None, metavar="N",
        help=f"drive only an N-shard cluster (default: both single-process "
             f"and a {N_SHARDS}-shard cluster; 0 = single only)"
    )
    parser.add_argument("--rps", type=float, default=TARGET_RPS,
                        help="open-loop arrival rate (default %(default)s)")
    parser.add_argument("--duration-s", type=float, default=DURATION_S,
                        help="episode length (default %(default)s)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_load.json"),
                        help="report path (default %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on a burning SLO, a bare 500, "
                             "or a connection error")
    args = parser.parse_args(argv)

    workload = build_vfl_workload("boston", n_parties=5, epochs=25, seed=0)
    episodes: list[dict] = []
    with tempfile.TemporaryDirectory() as scratch:
        log_path = str(pathlib.Path(scratch) / "vfl_run.npz")
        save_vfl_training_log(workload.result.log, log_path)
        print(
            f"open loop: {args.rps:.0f} req/s for {args.duration_s:.0f}s, "
            f"1 ingest per {INGEST_EVERY} arrivals, latency from intended "
            "send time"
        )
        if args.cluster is None or args.cluster == 0:
            episodes.append(
                _episode_single(
                    log_path, target_rps=args.rps, duration_s=args.duration_s
                )
            )
            _print_episode(episodes[-1])
        n_shards = N_SHARDS if args.cluster is None else args.cluster
        if n_shards:
            episodes.append(
                _episode_cluster(
                    log_path,
                    n_shards=n_shards,
                    target_rps=args.rps,
                    duration_s=args.duration_s,
                )
            )
            _print_episode(episodes[-1])

    failures = [f for stats in episodes for f in _check_failures(stats)]
    payload = {
        "bench": "open_loop_load",
        "config": {
            "target_rps": args.rps,
            "duration_s": args.duration_s,
            "ingest_every": INGEST_EVERY,
            "seed_runs": SEED_RUNS,
            "senders": N_SENDERS,
            "workload": "boston-like VFL, 5 parties, 25 epochs",
            "measurement": "open-loop; latency from intended send time",
        },
        "episodes": episodes,
        "check_failures": failures,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if args.check and failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        return 1
    if args.check:
        print("check passed: no burning SLO, no bare 500, no connection errors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
