"""Shared fixtures for the paper-reproduction benchmarks.

Every bench regenerates one of the paper's tables/figures at laptop scale
(see DESIGN.md §4) and asserts its *shape* criteria: who wins, by roughly
what factor.  Timing numbers land in the pytest-benchmark table; the
qualitative metrics (PCC, accuracies) are attached as ``extra_info`` and
asserted inline.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import build_hfl_workload, build_vfl_workload
from repro.shapley import HFLRetrainUtility, VFLRetrainUtility, exact_shapley


@pytest.fixture(scope="session")
def hfl_mnist_workload():
    """Shared MNIST-like HFL cell (5 parties, 1 mislabeled, 1 non-IID)."""
    return build_hfl_workload(
        "mnist", n_parties=5, n_mislabeled=1, n_noniid=1, epochs=10, seed=0
    )


@pytest.fixture(scope="session")
def hfl_mnist_exact(hfl_mnist_workload):
    """Ground-truth Shapley values for the shared HFL cell (32 retrains)."""
    w = hfl_mnist_workload
    utility = HFLRetrainUtility(
        w.trainer,
        w.federation.locals,
        w.federation.validation,
        init_theta=w.result.log.initial_theta,
    )
    report = exact_shapley(utility)
    return utility, report


@pytest.fixture(scope="session")
def vfl_boston_workload():
    """Shared Boston-like VFL cell at a bench-friendly 8 parties."""
    return build_vfl_workload("boston", n_parties=8, epochs=30, seed=0)


@pytest.fixture(scope="session")
def vfl_boston_exact(vfl_boston_workload):
    w = vfl_boston_workload
    utility = VFLRetrainUtility(w.trainer, w.split.train, w.split.validation)
    report = exact_shapley(utility)
    return utility, report
