"""Microbenchmarks of the substrates DIG-FL's cost model rests on.

The complexity claims of Sec. II-E — O(τnp) for the first term, HVPs
instead of p×p Hessians for the second, ciphertext ops dominating VFL —
are only meaningful if the substrate costs behave; these benches pin them.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, hvp
from repro.crypto import generate_keypair
from repro.hfl import flat_gradient
from repro.models import LinearRegressionModel, LogisticRegressionModel
from repro.nn import make_mlp_classifier

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def mlp_batch():
    model = make_mlp_classifier(100, 10, hidden=(32,), seed=0)
    X = RNG.normal(size=(256, 100))
    y = RNG.integers(0, 10, size=256)
    return model, X, y


def test_bench_autodiff_gradient(benchmark, mlp_batch):
    """One full-batch gradient — the per-participant per-epoch unit cost."""
    model, X, y = mlp_batch
    g = benchmark(flat_gradient, model, X, y)
    assert g.shape == (model.num_parameters(),)


def test_bench_autodiff_hvp(benchmark, mlp_batch):
    """One HVP — Algorithm 1's per-participant per-epoch extra cost.

    Must be a small multiple of a gradient, NOT O(p²) like forming the
    Hessian.
    """
    model, X, y = mlp_batch
    params = model.parameters()
    vectors = [Tensor(RNG.normal(size=p.shape)) for p in params]

    def loss_fn(ps):
        del ps
        return model.loss(X, y)

    out = benchmark(hvp, loss_fn, params, vectors)
    assert len(out) == len(params)


def test_bench_analytic_linreg_gradient(benchmark):
    """VFL per-epoch unit cost: closed-form gradient on 2000×14."""
    model = LinearRegressionModel()
    X = RNG.normal(size=(2000, 14))
    y = RNG.normal(size=2000)
    theta = RNG.normal(size=14)
    g = benchmark(model.gradient, theta, X, y)
    assert g.shape == (14,)


def test_bench_analytic_logreg_hvp(benchmark):
    model = LogisticRegressionModel()
    X = RNG.normal(size=(2000, 20))
    y = (RNG.random(2000) > 0.5).astype(float)
    theta = RNG.normal(size=20)
    v = RNG.normal(size=20)
    out = benchmark(model.hvp, theta, X, y, v)
    assert out.shape == (20,)


@pytest.fixture(scope="module")
def paillier_key():
    return generate_keypair(256, seed=0)


def test_bench_paillier_encrypt(benchmark, paillier_key):
    pk, _ = paillier_key
    benchmark(pk.encrypt, 3.14159)


def test_bench_paillier_add(benchmark, paillier_key):
    pk, _ = paillier_key
    a = pk.encrypt(1.5)
    b = pk.encrypt(-2.5)
    benchmark(lambda: a + b)


def test_bench_paillier_scalar_mul(benchmark, paillier_key):
    """Ciphertext × plaintext — the inner loop of the VFL protocol's step 4."""
    pk, _ = paillier_key
    c = pk.encrypt(1.5)
    benchmark(lambda: c * 0.73)


def test_bench_paillier_decrypt(benchmark, paillier_key):
    pk, sk = paillier_key
    c = pk.encrypt(42.0)
    value = benchmark(sk.decrypt, c)
    assert value == pytest.approx(42.0, abs=1e-8)
