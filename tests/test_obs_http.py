"""The observability HTTP surface: Prometheus scrapes and profiles.

Boots a real :class:`EvaluationHTTPServer` and drives
``/metricz?format=prometheus`` (content type, ``# TYPE`` lines, a strict
parser round-trip, monotone counters across scrapes — exactly what the
CI smoke job validates) and ``/runs/{id}/profile``, while pinning the
default JSON ``/metricz`` payload to its pre-observability key set.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.io import save_vfl_training_log
from repro.obs import PROMETHEUS_CONTENT_TYPE
from repro.serve import EvaluationHTTPServer, EvaluationService
from tests.test_obs_registry import parse_prometheus

pytestmark = pytest.mark.timeout(120)


@pytest.fixture()
def server(vfl_result, tmp_path):
    log_path = tmp_path / "vfl_run.npz"
    save_vfl_training_log(vfl_result.log, log_path)
    httpd = EvaluationHTTPServer(("127.0.0.1", 0), EvaluationService())
    httpd.serve_background()
    payload = json.dumps(
        {"kind": "vfl", "log_path": str(log_path), "run_id": "r"}
    ).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{httpd.port}/runs",
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30):
        pass
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    httpd.service.close()


def _get(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=30
    ) as response:
        return response.status, response.headers, response.read()


class TestPrometheusEndpoint:
    def test_content_type_and_type_lines(self, server):
        status, headers, body = _get(server, "/metricz?format=prometheus")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE ")]
        assert type_lines, "no # TYPE lines in exposition output"
        for name in (
            "repro_serve_query_latency_seconds",
            "repro_serve_ingest_latency_seconds",
            "repro_http_request_latency_seconds",
            "repro_serve_runs",
            "repro_serve_uptime_seconds",
        ):
            assert any(line.endswith(f"{name} histogram")
                       or line.endswith(f"{name} gauge")
                       or line.endswith(f"{name} counter")
                       for line in type_lines), f"missing # TYPE for {name}"

    def test_round_trips_a_strict_parser(self, server):
        _get(server, "/runs/r/leaderboard")
        _, _, body = _get(server, "/metricz?format=prometheus")
        parsed = parse_prometheus(body.decode())
        samples = parsed["repro_serve_query_latency_seconds"]["samples"]
        count = samples[("repro_serve_query_latency_seconds_count", ())]
        assert count >= 1.0
        assert parsed["repro_serve_runs"]["samples"][("repro_serve_runs", ())] == 1.0

    def test_counters_are_monotone_across_scrapes(self, server):
        def scrape():
            _, _, body = _get(server, "/metricz?format=prometheus")
            return parse_prometheus(body.decode())

        first = scrape()
        _get(server, "/runs/r/leaderboard")
        _get(server, "/runs/r/contributions")
        second = scrape()
        for name, family in first.items():
            if family["type"] != "counter":
                continue
            for key, value in family["samples"].items():
                assert second[name]["samples"][key] >= value, (
                    f"counter {key} went backwards"
                )
        http_count = ("repro_http_request_latency_seconds_count", ())
        assert (
            second["repro_http_request_latency_seconds"]["samples"][http_count]
            > first["repro_http_request_latency_seconds"]["samples"][http_count]
        )

    def test_unknown_format_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/metricz?format=yaml")
        assert excinfo.value.code == 400


class TestJsonMetricz:
    def test_default_payload_keeps_its_key_set(self, server):
        """The JSON ``/metricz`` surface existing dashboards scrape."""
        status, headers, body = _get(server, "/metricz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        metrics = json.loads(body)
        assert set(metrics) == {
            "uptime_seconds",
            "runs",
            "closed",
            "cache",
            "admission",
            "breakers",
            "latency",
            "obs",
        }
        assert set(metrics["latency"]) == {"ingest", "query", "http"}
        for summary in metrics["latency"].values():
            assert set(summary) == {"count", "mean_ms", "p50_ms", "p95_ms", "max_ms"}
        assert metrics["obs"]["tracing"]["enabled"] is False
        assert metrics["obs"]["profiling"] is True


class TestProfileEndpoint:
    def test_profile_reports_estimator_phases(self, server):
        _get(server, "/runs/r/contributions")
        status, _, body = _get(server, "/runs/r/profile")
        assert status == 200
        profile = json.loads(body)
        assert profile["run_id"] == "r"
        assert profile["enabled"] is True
        assert profile["epochs"] > 0
        phases = {row["phase"] for row in profile["phases"]}
        # Registration ingested the whole log, so the streaming phases ran.
        assert "estimator.dot_products" in phases
        assert "cache.digest" in phases
        for row in profile["phases"]:
            assert row["calls"] >= 1
            assert row["total_s"] >= 0.0

    def test_profile_of_unknown_run_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/runs/ghost/profile")
        assert excinfo.value.code == 404
