"""The write-ahead log and crash recovery of the serving registry.

The acceptance contract: kill a serving process at any moment — even
mid-append, tearing the final WAL record — and ``recover`` rebuilds the
registry and replays each run's saved log to the *exact* ingested epoch,
with ``np.array_equal`` contributions against the uninterrupted service.
Corruption anywhere before the tail refuses to replay; a log file whose
bytes changed since the crash refuses to serve different numbers.
"""

import json
import threading

import numpy as np
import pytest

from repro.io import save_vfl_training_log
from repro.serve import EvaluationService, WriteAheadLog, recover
from repro.serve.http import register_from_spec
from repro.serve.wal import (
    INGEST,
    REGISTER,
    RecoveryError,
    WalCorruption,
    scan_wal,
    validate_wal_record,
)

pytestmark = pytest.mark.timeout(180)  # inert without pytest-timeout (CI has it)


@pytest.fixture()
def vfl_log_path(vfl_result, tmp_path):
    path = tmp_path / "vfl_run.npz"
    save_vfl_training_log(vfl_result.log, path)
    return str(path)


def _abandon(service):
    """Simulate a SIGKILL: drop the service without close() or wal.close().

    Every append was already fsync'd, so the WAL on disk is exactly what
    a killed process would leave behind; nothing else is flushed.
    """
    service.wal._fh.close()  # the OS would do this on process death


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(REGISTER, {"run_id": "r", "kind": "vfl"})
            wal.append(INGEST, {"run_id": "r", "epoch": 1, "digest": "d1"})
        entries = WriteAheadLog(tmp_path).replay()
        assert [e.seq for e in entries] == [1, 2]
        assert entries[0].kind == REGISTER
        assert entries[1].payload["digest"] == "d1"

    def test_sequence_numbers_resume_across_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append(REGISTER, {"run_id": "r"}) == 1
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append(INGEST, {"run_id": "r", "epoch": 1}) == 2
        assert [e.seq for e in WriteAheadLog(tmp_path).replay()] == [1, 2]

    def test_concurrent_appends_stay_dense_and_replayable(self, tmp_path):
        """The server is threaded: registrations and ingests into
        different runs append concurrently.  Sequence numbers must come
        out dense and lines unmangled, or replay rejects the file."""
        wal = WriteAheadLog(tmp_path, fsync=False)
        workers, per_worker = 8, 25
        barrier = threading.Barrier(workers)

        def hammer(worker):
            barrier.wait()
            for epoch in range(1, per_worker + 1):
                wal.append(
                    INGEST,
                    {"run_id": f"r{worker}", "epoch": epoch, "digest": "d"},
                )

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        entries = wal.replay()
        assert [e.seq for e in entries] == list(
            range(1, workers * per_worker + 1)
        )
        # Every worker's stream arrived whole and in its own order.
        for worker in range(workers):
            epochs = [
                e.payload["epoch"]
                for e in entries
                if e.payload["run_id"] == f"r{worker}"
            ]
            assert epochs == list(range(1, per_worker + 1))
        wal.close()

    def test_unknown_kind_rejected(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(ValueError, match="kind"):
                wal.append("compact", {})

    def test_torn_tail_is_dropped_with_warning_and_truncated(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(REGISTER, {"run_id": "r"})
            wal.append(INGEST, {"run_id": "r", "epoch": 1})
            path = wal.path
        # A kill mid-append leaves a partial final line.
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 3, "kind": "ingest", "payl')
        with pytest.warns(UserWarning, match="torn"):
            reopened = WriteAheadLog(tmp_path)
        assert reopened.tail_dropped
        assert [e.seq for e in reopened.replay()] == [1, 2]
        # The tail was truncated, so appending keeps the file replayable.
        assert reopened.append(INGEST, {"run_id": "r", "epoch": 2}) == 3
        final = WriteAheadLog(tmp_path).replay()
        assert [e.seq for e in final] == [1, 2, 3]

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(REGISTER, {"run_id": "r"})
            wal.append(INGEST, {"run_id": "r", "epoch": 1})
            path = wal.path
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[0])
        record["payload"]["run_id"] = "tampered"  # checksum now wrong
        lines[0] = (json.dumps(record, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines))
        with pytest.raises(WalCorruption, match="line 1"):
            WriteAheadLog(tmp_path)

    def test_checksums_catch_single_byte_flips(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(INGEST, {"run_id": "r", "epoch": 1, "digest": "abc"})
            path = wal.path
        raw = bytearray(path.read_bytes())
        flip = raw.index(b"abc")
        raw[flip] = ord("x")
        path.write_bytes(bytes(raw))
        # The flipped line is the *final* line, so it reads as torn tail.
        with pytest.warns(UserWarning, match="torn"):
            assert WriteAheadLog(tmp_path).tail_dropped


class TestFramesAndValidation:
    """The replication wire format: frames, validation, file scanning."""

    def test_frame_is_byte_equivalent_to_the_written_record(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(REGISTER, {"run_id": "r", "kind": "vfl"})
            wal.append(INGEST, {"run_id": "r", "epoch": 1, "digest": "d"})
            path = wal.path
        on_disk = [json.loads(line) for line in path.read_bytes().splitlines()]
        entries, _, torn = scan_wal(path)
        assert not torn
        assert [e.frame() for e in entries] == on_disk

    def test_validate_round_trips_a_frame(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(INGEST, {"run_id": "r", "epoch": 1, "digest": "d"})
        (entry,) = WriteAheadLog(tmp_path).replay()
        again = validate_wal_record(entry.frame(), expected_seq=1)
        assert again == entry

    def test_validate_rejects_tampering_and_garbage(self):
        from repro.serve.wal import WalEntry

        frame = WalEntry(1, INGEST, {"run_id": "r", "epoch": 1}).frame()
        tampered = dict(frame, payload={"run_id": "r", "epoch": 2})
        assert validate_wal_record(tampered) is None
        assert validate_wal_record(dict(frame, checksum="nope")) is None
        assert validate_wal_record("not a dict") is None
        assert validate_wal_record({}) is None
        assert validate_wal_record(dict(frame, kind="compact")) is None

    def test_expected_seq_is_opt_in(self):
        """Adopt bodies ship per-run *subsets*: seq gaps are legitimate
        there, so the dense check only runs when a stream asks for it."""
        from repro.serve.wal import WalEntry

        frame = WalEntry(7, INGEST, {"run_id": "r", "epoch": 3}).frame()
        assert validate_wal_record(frame) is not None
        assert validate_wal_record(frame, expected_seq=7) is not None
        assert validate_wal_record(frame, expected_seq=1) is None

    def test_scan_wal_missing_file_and_torn_tail(self, tmp_path):
        assert scan_wal(tmp_path / "nope.wal") == ([], 0, False)
        with WriteAheadLog(tmp_path) as wal:
            wal.append(REGISTER, {"run_id": "r"})
            path = wal.path
        good = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'{"torn')
        entries, good_bytes, torn = scan_wal(path)
        assert [e.seq for e in entries] == [1]
        assert good_bytes == good
        assert torn

    def test_frames_from_pagination_and_lag_arithmetic(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for epoch in range(1, 6):
            wal.append(INGEST, {"run_id": "r", "epoch": epoch})
        page = wal.frames_from(1, limit=2)
        assert [f["seq"] for f in page["frames"]] == [1, 2]
        assert page["next_seq"] == 3 and page["end_seq"] == 5
        page = wal.frames_from(page["next_seq"], limit=10)
        assert [f["seq"] for f in page["frames"]] == [3, 4, 5]
        assert page["next_seq"] == 6 and page["end_seq"] == 5
        # Caught up: no frames, next_seq holds position.
        page = wal.frames_from(6)
        assert page == {"frames": [], "next_seq": 6, "end_seq": 5}
        with pytest.raises(ValueError, match="from_seq"):
            wal.frames_from(0)
        with pytest.raises(ValueError, match="limit"):
            wal.frames_from(1, limit=0)
        wal.close()

    def test_frames_from_empty_wal(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert wal.frames_from(1) == {
                "frames": [],
                "next_seq": 1,
                "end_seq": 0,
            }

    def test_next_seq_property_tracks_appends(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert wal.next_seq == 1
            wal.append(REGISTER, {"run_id": "r"})
            assert wal.next_seq == 2


class TestRecovery:
    def _spec(self, vfl_log_path, run_id="crashme"):
        return {"kind": "vfl", "log_path": vfl_log_path, "run_id": run_id}

    def test_full_register_then_recover_bit_for_bit(
        self, tmp_path, vfl_log_path, vfl_result
    ):
        before = EvaluationService(wal=WriteAheadLog(tmp_path / "wal"))
        register_from_spec(before, self._spec(vfl_log_path))
        want = before.report("crashme").totals
        _abandon(before)

        after = EvaluationService()
        report = recover(after, WriteAheadLog(tmp_path / "wal"))
        assert report.runs_restored == 1
        assert report.epochs_replayed == vfl_result.log.n_epochs
        assert not report.runs_skipped
        assert "recovered 1 run(s)" in report.summary()
        assert np.array_equal(after.report("crashme").totals, want)
        after.close()

    def test_wal_order_is_register_then_that_runs_ingests(
        self, tmp_path, vfl_log_path, vfl_result
    ):
        service = EvaluationService(wal=WriteAheadLog(tmp_path / "wal"))
        register_from_spec(service, self._spec(vfl_log_path))
        entries = service.wal.replay()
        assert entries[0].kind == REGISTER
        assert [e.kind for e in entries[1:]] == [INGEST] * vfl_result.log.n_epochs
        assert [e.payload["epoch"] for e in entries[1:]] == list(
            range(1, vfl_result.log.n_epochs + 1)
        )
        service.close()

    def test_partial_prefix_recovers_to_the_exact_epoch(
        self, tmp_path, vfl_log_path, vfl_result
    ):
        """The mid-ingest-kill scenario: the WAL holds k of n epochs."""
        k = 3
        before = EvaluationService(wal=WriteAheadLog(tmp_path / "wal"))
        run_id = before.register_vfl(
            vfl_result.log.feature_blocks,
            vfl_result.log.active_parties,
            run_id="partial",
        )
        before.record_registration(self._spec(vfl_log_path, run_id))
        for record in vfl_result.log.records[:k]:
            before.ingest(run_id, record)
        want = before.report(run_id).totals  # the k-epoch prefix numbers
        _abandon(before)

        after = EvaluationService()
        report = recover(after, WriteAheadLog(tmp_path / "wal"))
        assert report.epochs_replayed == k
        (summary,) = after.runs()
        assert summary["epochs"] == k
        assert np.array_equal(after.report(run_id).totals, want)
        # The recovered service keeps serving: the remaining epochs
        # ingest on top, converging on the full-log numbers.
        after.ingest_log(run_id, vfl_result.log)
        full = EvaluationService()
        full_id = full.register_vfl_log(vfl_result.log)
        assert np.array_equal(
            after.report(run_id).totals, full.report(full_id).totals
        )
        full.close()
        after.close()

    def test_recovered_service_resumes_the_same_wal(
        self, tmp_path, vfl_log_path, vfl_result
    ):
        """attach_wal after recovery: new ingests append, not re-log."""
        k = 2
        before = EvaluationService(wal=WriteAheadLog(tmp_path / "wal"))
        before.register_vfl(
            vfl_result.log.feature_blocks,
            vfl_result.log.active_parties,
            run_id="resume",
        )
        before.record_registration(self._spec(vfl_log_path, "resume"))
        for record in vfl_result.log.records[:k]:
            before.ingest("resume", record)
        _abandon(before)

        wal = WriteAheadLog(tmp_path / "wal")
        after = EvaluationService()
        recover(after, wal)
        after.attach_wal(wal)
        after.ingest("resume", vfl_result.log.records[k])
        entries = wal.replay()
        # 1 register + k replay-era ingests + 1 new one, no duplicates.
        assert [e.kind for e in entries] == [REGISTER] + [INGEST] * (k + 1)
        assert entries[-1].payload["epoch"] == k + 1
        after.close()

    def test_missing_log_file_skips_the_run_not_recovery(
        self, tmp_path, vfl_log_path, vfl_result
    ):
        import os

        before = EvaluationService(wal=WriteAheadLog(tmp_path / "wal"))
        register_from_spec(before, self._spec(vfl_log_path, "doomed"))
        _abandon(before)
        os.remove(vfl_log_path)

        after = EvaluationService()
        report = recover(after, WriteAheadLog(tmp_path / "wal"))
        assert report.runs_restored == 0
        assert len(report.runs_skipped) == 1
        assert "doomed" in report.runs_skipped[0]
        assert report.epochs_skipped == vfl_result.log.n_epochs
        assert "skipped runs" in report.summary()
        assert after.runs() == []
        after.close()

    def test_changed_log_file_is_a_digest_mismatch(
        self, tmp_path, vfl_log_path, vfl_result
    ):
        from repro.vfl.log import VFLTrainingLog

        before = EvaluationService(wal=WriteAheadLog(tmp_path / "wal"))
        register_from_spec(before, self._spec(vfl_log_path, "mutated"))
        _abandon(before)
        # Rewrite the log with a perturbed record: same shape, new bytes.
        records = list(vfl_result.log.records)
        tampered = records[0]
        tampered = type(tampered)(
            epoch=tampered.epoch,
            lr=tampered.lr,
            theta_before=tampered.theta_before + 1e-9,
            train_gradient=tampered.train_gradient,
            val_gradient=tampered.val_gradient,
            weights=tampered.weights,
            participation=tampered.participation,
        )
        save_vfl_training_log(
            VFLTrainingLog(
                feature_blocks=vfl_result.log.feature_blocks,
                active_parties=vfl_result.log.active_parties,
                records=[tampered] + records[1:],
            ),
            vfl_log_path,
        )
        after = EvaluationService()
        with pytest.raises(RecoveryError, match="digest"):
            recover(after, WriteAheadLog(tmp_path / "wal"))
        after.close()

    def test_recover_refuses_a_service_with_a_wal(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        service = EvaluationService(wal=wal)
        with pytest.raises(ValueError, match="without an attached WAL"):
            recover(service, wal)
        service.close()

    def test_live_published_runs_have_no_log_to_replay(
        self, tmp_path, vfl_result
    ):
        """Ingest records for runs registered out-of-band (live publisher
        runs, no POST spec) are counted, not fatal."""
        before = EvaluationService(wal=WriteAheadLog(tmp_path / "wal"))
        run_id = before.register_vfl(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        before.ingest(run_id, vfl_result.log.records[0])
        _abandon(before)

        after = EvaluationService()
        report = recover(after, WriteAheadLog(tmp_path / "wal"))
        assert report.runs_restored == 0
        assert report.epochs_skipped == 1
        after.close()
