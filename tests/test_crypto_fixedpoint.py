"""Fixed-point codec edge cases for the Paillier layer."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import generate_keypair
from repro.crypto.paillier import FRACTIONAL_BITS, _decode, _encode


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(256, seed=777)


class TestCodec:
    def test_roundtrip_precision(self, keypair):
        pk, _ = keypair
        for value in (0.0, 1e-9, -1e-9, 123.456, -9876.543):
            encoded = _encode(value, -FRACTIONAL_BITS, pk)
            decoded = _decode(encoded, -FRACTIONAL_BITS, pk)
            assert decoded == pytest.approx(value, abs=2.0**-FRACTIONAL_BITS)

    def test_negative_wraps_to_top(self, keypair):
        pk, _ = keypair
        encoded = _encode(-1.0, -FRACTIONAL_BITS, pk)
        assert encoded > pk.n // 2  # negatives live in the top half

    def test_positive_exponent_rejected(self, keypair):
        pk, _ = keypair
        with pytest.raises(ValueError, match="exponent"):
            _encode(1.0, 1, pk)

    def test_overflow_boundary(self, keypair):
        pk, _ = keypair
        limit = pk.max_int * 2.0**-FRACTIONAL_BITS
        _encode(limit * 0.99, -FRACTIONAL_BITS, pk)  # fits
        with pytest.raises(OverflowError):
            _encode(limit * 1.01, -FRACTIONAL_BITS, pk)

    @given(value=st.floats(-1e6, 1e6, allow_nan=False))
    def test_property_roundtrip(self, keypair, value):
        pk, _ = keypair
        encoded = _encode(value, -FRACTIONAL_BITS, pk)
        decoded = _decode(encoded, -FRACTIONAL_BITS, pk)
        assert decoded == pytest.approx(value, abs=2.0**-FRACTIONAL_BITS + 1e-12)


class TestExponentChains:
    def test_two_float_multiplications(self, keypair):
        """Each float multiply deepens the exponent; decoding still exact."""
        pk, sk = keypair
        c = pk.encrypt(3.0) * 0.5 * 0.25
        assert c.exponent == -3 * FRACTIONAL_BITS
        assert sk.decrypt(c) == pytest.approx(0.375, abs=1e-6)

    def test_deep_chain_alignment(self, keypair):
        pk, sk = keypair
        a = pk.encrypt(1.0) * 0.1 * 0.1  # exponent -96
        b = pk.encrypt(2.0)  # exponent -32
        total = a + b
        assert sk.decrypt(total) == pytest.approx(2.01, abs=1e-5)

    def test_sum_of_many_products(self, keypair):
        """The VFL step-4 pattern: Σ_j [[d_j]]·x_j stays accurate."""
        pk, sk = keypair
        rng = random.Random(1)
        ds = [rng.uniform(-2, 2) for _ in range(25)]
        xs = [rng.uniform(-2, 2) for _ in range(25)]
        acc = pk.encrypt(ds[0]) * xs[0]
        for d, x in zip(ds[1:], xs[1:]):
            acc = acc + pk.encrypt(d) * x
        expected = float(np.dot(ds, xs))
        assert sk.decrypt(acc) == pytest.approx(expected, abs=1e-5)
