"""Smoke + shape tests for the experiment harness (quick scale).

Each run_* function is exercised on a minimal configuration; the full-size
runs live in ``benchmarks/`` and ``python -m repro.experiments``.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_attack_detection,
    run_hfl_accuracy,
    run_hfl_baselines,
    run_learning_rate_ablation,
    run_model_size_scaling,
    run_participant_scaling,
    run_per_epoch,
    run_reweight,
    run_second_term,
    run_second_term_per_epoch,
    run_validation_size_ablation,
    run_vfl_accuracy,
    run_vfl_baselines,
    run_weighting_scheme_ablation,
)
from repro.experiments.common import ExperimentReport, Row, format_table
from repro.experiments.workloads import build_hfl_workload, build_vfl_workload


class TestCommon:
    def test_row_format(self):
        row = Row(experiment="e", labels={"d": "mnist"}, metrics={"pcc": 0.5})
        text = row.format()
        assert "[e]" in text and "d=mnist" in text and "pcc=0.5" in text

    def test_report_format(self):
        report = ExperimentReport(name="x", paper_reference="Fig. 0")
        report.add({"a": 1}, {"m": 2.0})
        report.notes.append("hello")
        text = report.format()
        assert "== x (Fig. 0) ==" in text
        assert "note: hello" in text

    def test_format_table(self):
        report = ExperimentReport(name="x", paper_reference="")
        report.add({"d": "mnist"}, {"pcc": 0.123456})
        table = format_table(report.rows, ["d", "pcc"])
        assert "mnist" in table
        assert "0.1235" in table


class TestWorkloads:
    def test_hfl_workload_contents(self):
        w = build_hfl_workload("mnist", n_parties=3, epochs=2, seed=0)
        assert w.result.log.n_epochs == 2
        assert len(w.qualities) == 3

    def test_hfl_workload_deterministic(self):
        a = build_hfl_workload("mnist", n_parties=3, epochs=2, seed=1)
        b = build_hfl_workload("mnist", n_parties=3, epochs=2, seed=1)
        np.testing.assert_array_equal(
            a.result.model.get_flat(), b.result.model.get_flat()
        )

    def test_vfl_workload_party_count_default(self):
        w = build_vfl_workload("iris", epochs=3, seed=0)
        assert w.split.n_parties == 4  # Table III

    def test_vfl_workload_override(self):
        w = build_vfl_workload("boston", n_parties=3, epochs=3, seed=0)
        assert w.split.n_parties == 3


class TestSecondTerm:
    def test_quick_run(self):
        report = run_second_term(
            hfl_datasets=("mnist",), vfl_datasets=("iris",), hfl_epochs=3,
            vfl_epochs=5,
        )
        assert len(report.rows) == 2
        for row in report.rows:
            assert row.metrics["rel_error"] >= 0

    def test_per_epoch_rows(self):
        report = run_second_term_per_epoch(hfl_dataset="mnist", vfl_dataset="iris")
        settings = {row.labels["setting"] for row in report.rows}
        assert settings == {"hfl", "vfl"}


class TestAccuracyExperiments:
    def test_hfl_accuracy_row_shape(self):
        report = run_hfl_accuracy(datasets=("mnist",), ms=(0,), epochs=3)
        row = report.rows[0]
        assert set(row.metrics) >= {"pcc", "t_digfl_s", "t_actual_s"}
        assert -1.0 <= row.metrics["pcc"] <= 1.0

    def test_vfl_accuracy_row_shape(self):
        report = run_vfl_accuracy(
            datasets=("iris",), epochs=5, max_parties=4, max_rows=150
        )
        row = report.rows[0]
        assert row.metrics["retrainings"] == 16
        assert row.metrics["pcc"] > 0.8

    def test_per_epoch_rows(self):
        report = run_per_epoch(datasets=("mnist",), epochs=3)
        epochs = [r.labels["epoch"] for r in report.rows]
        assert "all" in epochs
        assert 1 in epochs


class TestBaselineExperiments:
    def test_hfl_baselines_methods(self):
        report = run_hfl_baselines(datasets=("mnist",), epochs=3)
        methods = {row.labels["method"] for row in report.rows}
        assert methods == {"DIG-FL", "TMC-shapley", "GT-shapley", "MR", "IM"}

    def test_vfl_baselines_methods(self):
        report = run_vfl_baselines(
            datasets=("iris",), epochs=5, max_parties=4, max_rows=150
        )
        methods = {row.labels["method"] for row in report.rows}
        assert methods == {"DIG-FL", "TMC-shapley", "GT-shapley"}


class TestReweightExperiment:
    def test_rows_and_curves(self):
        report = run_reweight(
            settings=(("motor", "mislabeled"),), ms=(0, 2), epochs=4
        )
        summary_rows = [r for r in report.rows if "epoch" not in r.labels]
        curve_rows = [r for r in report.rows if "epoch" in r.labels]
        assert len(summary_rows) == 2
        assert len(curve_rows) == 4  # epochs of the largest m


class TestAblations:
    def test_validation_size(self):
        report = run_validation_size_ablation(fractions=(0.1,), epochs=3)
        assert report.rows[0].labels["val_fraction"] == 0.1

    def test_learning_rate(self):
        report = run_learning_rate_ablation(lrs=(0.3,), epochs=3)
        assert report.rows[0].labels["lr"] == 0.3

    def test_weighting_scheme(self):
        report = run_weighting_scheme_ablation(m=2, epochs=4)
        metrics = report.rows[0].metrics
        assert set(metrics) == {"acc_fedsgd", "acc_rectified", "acc_softmax"}


class TestScalingAndRobustness:
    def test_participant_scaling(self):
        report = run_participant_scaling(party_counts=(3,), epochs=2)
        assert report.rows[0].metrics["retrainings"] == 8

    def test_model_size_scaling(self):
        report = run_model_size_scaling(hidden_sizes=(8,), epochs=2)
        assert report.rows[0].labels["hidden"] == 8

    def test_attack_detection_rows(self):
        report = run_attack_detection(attacks=("sign_flip",), epochs=5)
        row = report.rows[0]
        assert row.metrics["recall"] == 1.0
        assert row.metrics["mean_attacker_phi"] < row.metrics["mean_honest_phi"]

    def test_attack_detection_validation(self):
        with pytest.raises(ValueError):
            run_attack_detection(n_attackers=6, n_parties=6)
        with pytest.raises(KeyError):
            run_attack_detection(attacks=("nuke",))


class TestDegradationSweeps:
    def test_compression_sweep_shapes(self):
        from repro.experiments import run_compression_sweep

        report = run_compression_sweep(
            topk_fractions=(0.1,), quantize_bits=(8,), epochs=4
        )
        labels = [row.labels["compression"] for row in report.rows]
        assert labels == ["none", "topk-0.1", "quant-8bit"]
        by_label = {row.labels["compression"]: row.metrics for row in report.rows}
        # 8-bit quantisation is essentially lossless for the estimator.
        assert by_label["quant-8bit"]["pcc"] == pytest.approx(
            by_label["none"]["pcc"], abs=0.1
        )

    def test_heterogeneity_sweep_spread_grows_with_skew(self):
        from repro.experiments import run_heterogeneity_sweep

        report = run_heterogeneity_sweep(alphas=(100.0, 0.1), epochs=6)
        by_alpha = {row.labels["alpha"]: row.metrics for row in report.rows}
        assert (
            by_alpha[0.1]["contribution_spread"]
            > by_alpha[100.0]["contribution_spread"]
        )


class TestBudgetCurves:
    def test_rows_and_monotone_trend(self):
        from repro.experiments import run_estimator_budget_curves

        report = run_estimator_budget_curves(
            budgets=(16, 128), n_repeats=2, epochs=4
        )
        methods = {row.labels["method"] for row in report.rows}
        assert methods == {"DIG-FL", "TMC", "GT", "stratified", "kernel"}
        tmc = {
            row.labels["budget"]: row.metrics["pcc"]
            for row in report.rows
            if row.labels["method"] == "TMC"
        }
        # More budget should help TMC (allow small sampling noise).
        assert tmc[128] > tmc[16] - 0.1

    def test_digfl_has_zero_budget_row(self):
        from repro.experiments import run_estimator_budget_curves

        report = run_estimator_budget_curves(budgets=(16,), n_repeats=1, epochs=3)
        digfl = next(r for r in report.rows if r.labels["method"] == "DIG-FL")
        assert digfl.labels["budget"] == 0
        assert "distinct_evals" not in digfl.metrics

    def test_distinct_evals_capped_at_2n(self):
        from repro.experiments import run_estimator_budget_curves

        report = run_estimator_budget_curves(
            budgets=(4096,), n_repeats=1, epochs=3, n_parties=4
        )
        for row in report.rows:
            if "distinct_evals" in row.metrics:
                assert row.metrics["distinct_evals"] <= 2**4


class TestFedAvgSweep:
    def test_pcc_usable_across_local_steps(self):
        from repro.experiments import run_fedavg_sweep

        report = run_fedavg_sweep(local_steps=(1, 4), epochs=5)
        pccs = {row.labels["local_steps"]: row.metrics["pcc"] for row in report.rows}
        assert pccs[1] > 0.6
        assert pccs[4] > 0.6


class TestEncryptedOverhead:
    def test_rows_and_equivalence(self):
        from repro.experiments import run_encrypted_overhead

        report = run_encrypted_overhead(key_bits=(128,), epochs=2, n_rows=40)
        modes = {row.labels["mode"] for row in report.rows}
        assert modes == {"plaintext", "paillier"}
        paillier = next(r for r in report.rows if r.labels["mode"] == "paillier")
        plaintext = next(r for r in report.rows if r.labels["mode"] == "plaintext")
        # Encryption is pure overhead: slower, chattier, same results.
        assert paillier.metrics["t_s"] > plaintext.metrics["t_s"]
        assert paillier.metrics["comm_mb"] > plaintext.metrics["comm_mb"]
        assert paillier.metrics["pcc_vs_plaintext"] > 0.999
        assert paillier.metrics["theta_err"] < 1e-6
