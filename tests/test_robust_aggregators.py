"""Properties of the Byzantine-robust aggregation rules.

Three families of guarantees, per ISSUE's satellite checklist:

* **Permutation invariance** — relabelling the parties (permuting update
  rows together with weights and mask) must not change ``G_t``.
* **Clean agreement** — on a clean homogeneous cohort every rule agrees
  with the weighted mean (identical updates leave nothing to disagree
  about; near-identical updates keep the rules within the cohort spread).
* **Breakdown** — under ``f`` attackers shipping sign-flipped or boosted
  updates (the transforms of :mod:`repro.hfl.attacks`), the robust rules
  stay near the honest aggregate while the weighted mean is dragged away.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hfl.attacks import scale, sign_flip
from repro.robust import (
    AGGREGATOR_NAMES,
    CoordinateMedian,
    Krum,
    NormClipping,
    TrimmedMean,
    WeightedMean,
    make_aggregator,
)

ROBUST_RULES = ("median", "trimmed", "clip", "krum", "multikrum")

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def updates_matrices(min_rows=3, max_rows=8, min_cols=2, max_cols=6):
    return hnp.arrays(
        np.float64,
        st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=finite,
    )


def _uniform(k):
    return np.full(k, 1.0 / k)


# --------------------------------------------------------------- invariance


class TestPermutationInvariance:
    # Krum breaks exact score ties by party index, so it is permutation
    # invariant only for generic (tie-free) inputs — covered below with
    # continuous random cohorts, where ties have measure zero.
    @pytest.mark.parametrize("name", ("mean", "median", "trimmed", "clip"))
    @given(updates=updates_matrices(), data=st.data())
    def test_row_permutation_does_not_change_gt(self, name, updates, data):
        k = len(updates)
        perm = data.draw(st.permutations(range(k)).map(np.array))
        agg = make_aggregator(name)
        weights = _uniform(k)
        mask = np.ones(k, dtype=bool)
        original = agg.aggregate(updates, weights, mask)
        permuted = agg.aggregate(updates[perm], weights[perm], mask[perm])
        np.testing.assert_allclose(permuted, original, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("name", ("krum", "multikrum"))
    @pytest.mark.parametrize("seed", range(5))
    def test_krum_permutation_invariant_on_generic_cohorts(self, name, seed):
        rng = np.random.default_rng(seed)
        updates = rng.normal(size=(7, 5))
        perm = rng.permutation(7)
        agg = make_aggregator(name)
        weights = _uniform(7)
        mask = np.ones(7, dtype=bool)
        np.testing.assert_allclose(
            agg.aggregate(updates[perm], weights[perm], mask[perm]),
            agg.aggregate(updates, weights, mask),
            rtol=1e-12,
        )

    @pytest.mark.parametrize("name", AGGREGATOR_NAMES)
    def test_permutation_with_partial_mask(self, name):
        rng = np.random.default_rng(0)
        updates = rng.normal(size=(6, 4))
        weights = np.array([0.25, 0.25, 0.0, 0.25, 0.25, 0.0])
        mask = np.array([True, True, False, True, True, False])
        updates[~mask] = 0.0
        perm = np.array([3, 0, 5, 1, 4, 2])
        agg = make_aggregator(name)
        np.testing.assert_allclose(
            agg.aggregate(updates[perm], weights[perm], mask[perm]),
            agg.aggregate(updates, weights, mask),
            rtol=1e-12,
        )


# ----------------------------------------------------------- clean agreement


class TestCleanAgreement:
    @pytest.mark.parametrize("name", AGGREGATOR_NAMES)
    @given(
        row=hnp.arrays(np.float64, st.integers(2, 6), elements=finite),
        k=st.integers(3, 8),
    )
    def test_identical_updates_reproduce_weighted_mean(self, name, row, k):
        """A perfectly homogeneous cohort leaves nothing to disagree about."""
        updates = np.tile(row, (k, 1))
        weights = _uniform(k)
        mask = np.ones(k, dtype=bool)
        expected = WeightedMean().aggregate(updates, weights, mask)
        actual = make_aggregator(name).aggregate(updates, weights, mask)
        np.testing.assert_allclose(actual, expected, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("name", ROBUST_RULES)
    def test_near_identical_updates_stay_within_cohort_spread(self, name):
        rng = np.random.default_rng(1)
        centre = rng.normal(size=10)
        updates = centre + rng.normal(scale=1e-3, size=(7, 10))
        weights = _uniform(7)
        mask = np.ones(7, dtype=bool)
        result = make_aggregator(name).aggregate(updates, weights, mask)
        mean = WeightedMean().aggregate(updates, weights, mask)
        spread = np.abs(updates - mean).max()
        assert np.abs(result - mean).max() <= spread + 1e-12


# ---------------------------------------------------------------- breakdown


def _attacked_cohort(attack, n_honest=7, n_attackers=2, p=12, seed=2):
    """Honest cluster plus ``f`` attacker rows built from an honest update."""
    rng = np.random.default_rng(seed)
    honest = 1.0 + rng.normal(scale=0.05, size=(n_honest, p))
    base = honest.mean(axis=0)
    attackers = np.tile(attack(base, epoch=1), (n_attackers, 1))
    updates = np.vstack([honest, attackers])
    k = len(updates)
    return updates, _uniform(k), np.ones(k, dtype=bool), honest.mean(axis=0)


class TestBreakdown:
    @pytest.mark.parametrize(
        "attack", [sign_flip(strength=50.0), scale(100.0)],
        ids=["sign_flip", "scale"],
    )
    @pytest.mark.parametrize("name", ("median", "trimmed", "krum", "multikrum"))
    def test_robust_rules_survive_f_attackers(self, name, attack):
        updates, weights, mask, honest_mean = _attacked_cohort(attack)
        if name in ("krum", "multikrum"):
            agg = make_aggregator(name, n_byzantine=2)
        elif name == "trimmed":
            # Breakdown holds for β ≥ f/m: 2 attackers in 9 arrivals.
            agg = make_aggregator(name, trim_ratio=2 / 9)
        else:
            agg = make_aggregator(name)
        result = agg.aggregate(updates, weights, mask)
        robust_err = np.linalg.norm(result - honest_mean)
        mean_err = np.linalg.norm(
            WeightedMean().aggregate(updates, weights, mask) - honest_mean
        )
        assert robust_err < 0.2 * np.linalg.norm(honest_mean)
        assert mean_err > 10 * robust_err

    @pytest.mark.parametrize(
        "attack", [sign_flip(strength=50.0), scale(100.0)],
        ids=["sign_flip", "scale"],
    )
    def test_clipping_bounds_the_attacker_pull(self, attack):
        """Clipping only *bounds* the attacker — weaker than removal, but
        its error must stay within the honest norm while the plain mean
        is dragged far outside it."""
        updates, weights, mask, honest_mean = _attacked_cohort(attack)
        clipped = NormClipping().aggregate(updates, weights, mask)
        mean = WeightedMean().aggregate(updates, weights, mask)
        honest_norm = np.linalg.norm(honest_mean)
        assert np.linalg.norm(clipped - honest_mean) < honest_norm
        assert np.linalg.norm(mean - honest_mean) > honest_norm


# -------------------------------------------------------------- edge cases


class TestEdgeCases:
    @pytest.mark.parametrize("name", AGGREGATOR_NAMES)
    def test_empty_round_returns_zero(self, name):
        updates = np.zeros((4, 3))
        weights = np.zeros(4)
        mask = np.zeros(4, dtype=bool)
        result = make_aggregator(name).aggregate(updates, weights, mask)
        np.testing.assert_array_equal(result, np.zeros(3))

    def test_krum_small_cohort_falls_back_to_mean(self):
        updates = np.array([[1.0, 1.0], [3.0, 3.0]])
        weights = np.array([0.5, 0.5])
        mask = np.ones(2, dtype=bool)
        np.testing.assert_allclose(
            Krum().aggregate(updates, weights, mask), [2.0, 2.0]
        )

    def test_krum_selects_cluster_member(self):
        rng = np.random.default_rng(3)
        honest = rng.normal(size=(5, 4))
        outlier = np.full((1, 4), 1e3)
        updates = np.vstack([honest, outlier])
        mask = np.ones(6, dtype=bool)
        chosen = Krum(n_byzantine=1).aggregate(updates, _uniform(6), mask)
        assert any(np.allclose(chosen, row) for row in honest)

    def test_trimmed_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            TrimmedMean(trim_ratio=0.5)

    def test_clip_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            NormClipping(clip_norm=0.0)

    def test_krum_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Krum(n_byzantine=-1)
        with pytest.raises(ValueError):
            Krum(multi=0)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            make_aggregator("average")

    def test_multikrum_defaults_to_three(self):
        agg = make_aggregator("multikrum")
        assert isinstance(agg, Krum) and agg.multi == 3

    def test_median_ignores_masked_rows(self):
        updates = np.array([[1.0], [2.0], [3.0], [1e9]])
        mask = np.array([True, True, True, False])
        result = CoordinateMedian().aggregate(updates, _uniform(4), mask)
        np.testing.assert_allclose(result, [2.0])
