"""Tests for composite losses against closed-form references."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    accuracy,
    binary_cross_entropy_with_logits,
    cross_entropy_with_logits,
    grad,
    l2_penalty,
    log_softmax,
    logsumexp,
    mse_loss,
    softmax,
    softplus,
    tsum,
)

RNG = np.random.default_rng(7)


class TestSoftplus:
    def test_matches_reference(self):
        z = RNG.normal(size=10) * 3
        out = softplus(Tensor(z))
        np.testing.assert_allclose(out.data, np.logaddexp(0.0, z), atol=1e-12)

    def test_large_values_stable(self):
        out = softplus(Tensor(np.array([-1000.0, 1000.0])))
        np.testing.assert_allclose(out.data, [0.0, 1000.0], atol=1e-9)

    def test_gradient_is_sigmoid(self):
        z = Tensor(RNG.normal(size=6), requires_grad=True)
        (g,) = grad(tsum(softplus(z)), [z])
        np.testing.assert_allclose(g.data, 1 / (1 + np.exp(-z.data)), atol=1e-10)


class TestLogsumexp:
    def test_matches_scipy_style_reference(self):
        z = RNG.normal(size=(4, 5)) * 5
        out = logsumexp(Tensor(z), axis=1)
        ref = np.log(np.sum(np.exp(z - z.max(axis=1, keepdims=True)), axis=1))
        ref += z.max(axis=1)
        np.testing.assert_allclose(out.data, ref, atol=1e-12)

    def test_keepdims(self):
        z = Tensor(RNG.normal(size=(3, 4)))
        assert logsumexp(z, axis=1, keepdims=True).shape == (3, 1)

    def test_huge_logits_no_overflow(self):
        z = Tensor(np.array([[1000.0, 999.0]]))
        out = logsumexp(z, axis=1)
        assert np.isfinite(out.data).all()

    def test_gradient_is_softmax(self):
        z = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        (g,) = grad(tsum(logsumexp(z, axis=1)), [z])
        ez = np.exp(z.data - z.data.max(axis=1, keepdims=True))
        np.testing.assert_allclose(g.data, ez / ez.sum(axis=1, keepdims=True), atol=1e-10)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(Tensor(RNG.normal(size=(5, 7))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), atol=1e-12)

    def test_log_softmax_consistency(self):
        z = Tensor(RNG.normal(size=(3, 4)))
        np.testing.assert_allclose(
            np.exp(log_softmax(z, axis=1).data), softmax(z, axis=1).data, atol=1e-12
        )


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = np.array([1.0, 1.0, 1.0])
        assert mse_loss(pred, target).item() == pytest.approx((0 + 1 + 4) / 3)

    def test_gradient(self):
        pred = Tensor(RNG.normal(size=4), requires_grad=True)
        target = RNG.normal(size=4)
        (g,) = grad(mse_loss(pred, target), [pred])
        np.testing.assert_allclose(g.data, 2 * (pred.data - target) / 4, atol=1e-12)


class TestBCE:
    def test_matches_reference(self):
        z = RNG.normal(size=20)
        y = (RNG.random(20) > 0.5).astype(float)
        out = binary_cross_entropy_with_logits(Tensor(z), y).item()
        p = 1 / (1 + np.exp(-z))
        ref = -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
        assert out == pytest.approx(ref, abs=1e-10)

    def test_extreme_logits_finite(self):
        z = Tensor(np.array([-2000.0, 2000.0]))
        y = np.array([0.0, 1.0])
        assert np.isfinite(binary_cross_entropy_with_logits(z, y).item())


class TestCrossEntropy:
    def test_matches_reference(self):
        logits = RNG.normal(size=(6, 4)) * 3
        labels = RNG.integers(0, 4, size=6)
        out = cross_entropy_with_logits(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        ref = -np.mean(logp[np.arange(6), labels])
        assert out == pytest.approx(ref, abs=1e-10)

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        labels = RNG.integers(0, 3, size=5)
        (g,) = grad(cross_entropy_with_logits(logits, labels), [logits])
        ez = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        sm = ez / ez.sum(axis=1, keepdims=True)
        onehot = np.zeros((5, 3))
        onehot[np.arange(5), labels] = 1.0
        np.testing.assert_allclose(g.data, (sm - onehot) / 5, atol=1e-10)

    def test_1d_logits_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            cross_entropy_with_logits(Tensor(np.zeros(3)), np.array([0, 1, 2]))

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            cross_entropy_with_logits(Tensor(np.zeros((3, 2))), np.array([0, 1]))


class TestL2Penalty:
    def test_value(self):
        params = [Tensor(np.array([1.0, 2.0])), Tensor(np.array([[3.0]]))]
        assert l2_penalty(params).item() == pytest.approx(14.0)

    def test_empty(self):
        assert l2_penalty([]).item() == 0.0


class TestAccuracy:
    def test_multiclass(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_binary_logits(self):
        logits = np.array([1.5, -0.5, 3.0])
        labels = np.array([1, 0, 1])
        assert accuracy(logits, labels) == 1.0

    def test_accepts_tensor(self):
        assert accuracy(Tensor(np.array([[5.0, 0.0]])), np.array([0])) == 1.0
