"""Edge cases for the autodiff engine beyond the basic gradchecks."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    amax,
    as_tensor,
    concatenate,
    enable_grad,
    grad,
    hvp,
    is_grad_enabled,
    mul,
    no_grad,
    take,
    tsum,
)


class TestGradModeNesting:
    def test_nested_contexts_restore(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_exception_restores_mode(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_graph_built_inside_enable_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            with enable_grad():
                y = x * 2.0
        assert y.requires_grad

    def test_hvp_works_inside_no_grad(self):
        """hvp must force grad mode internally (re-entrancy guard)."""
        x = Tensor(np.array([2.0]), requires_grad=True)
        with no_grad():
            (hv,) = hvp(lambda ps: tsum(ps[0] * ps[0] * ps[0]), [x], [Tensor([1.0])])
        np.testing.assert_allclose(hv.data, [12.0])


class TestIndexingEdgeCases:
    def test_boolean_mask_take(self):
        x = Tensor(np.array([1.0, 2.0, 3.0, 4.0]), requires_grad=True)
        mask = np.array([True, False, True, False])
        (g,) = grad(tsum(take(x, mask) * 2.0), [x])
        np.testing.assert_allclose(g.data, [2.0, 0.0, 2.0, 0.0])

    def test_take_single_scalar_index(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        y = take(x, 1)
        assert y.shape == ()
        (g,) = grad(y, [x])
        np.testing.assert_allclose(g.data, [0.0, 1.0, 0.0])

    def test_negative_indices(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (g,) = grad(take(x, -1) * 5.0, [x])
        np.testing.assert_allclose(g.data, [0.0, 0.0, 5.0])

    def test_repeated_indices_accumulate(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        idx = np.array([0, 0, 0, 1])
        (g,) = grad(tsum(take(x, idx)), [x])
        np.testing.assert_allclose(g.data, [3.0, 1.0])


class TestConcatenate:
    def test_three_tensors(self):
        parts = [Tensor(np.full(2, float(i)), requires_grad=True) for i in range(3)]
        out = concatenate(parts)
        np.testing.assert_allclose(out.data, [0, 0, 1, 1, 2, 2])
        grads = grad(tsum(mul(out, out)), parts)
        for i, g in enumerate(grads):
            np.testing.assert_allclose(g.data, 2.0 * i)

    def test_mixed_requires_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2))  # constant
        out = concatenate([a, b])
        (ga,) = grad(tsum(out), [a])
        np.testing.assert_allclose(ga.data, 1.0)


class TestAmaxEdgeCases:
    def test_negative_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(amax(x, axis=-1).data, [2.0, 5.0])

    def test_all_equal_gradient_splits(self):
        x = Tensor(np.ones((1, 4)), requires_grad=True)
        (g,) = grad(tsum(amax(x, axis=1)), [x])
        np.testing.assert_allclose(g.data, [[0.25, 0.25, 0.25, 0.25]])


class TestAsTensorAndScalars:
    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t

    def test_python_scalar(self):
        t = as_tensor(3.5)
        assert t.shape == ()
        assert t.item() == 3.5

    def test_scalar_arithmetic_chain(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        y = ((x + 1.0) * 3.0 - 1.0) / 2.0  # (3*3-1)/2 = 4
        assert y.item() == pytest.approx(4.0)
        (g,) = grad(y, [x])
        np.testing.assert_allclose(g.data, 1.5)

    def test_len_of_vector(self):
        assert len(Tensor(np.zeros(7))) == 7


class TestGradReuseOfGraph:
    def test_two_grad_calls_same_graph(self):
        """Calling grad twice on the same output must give the same result
        (the graph is not consumed)."""
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = tsum(x * x)
        (g1,) = grad(y, [x])
        (g2,) = grad(y, [x])
        np.testing.assert_allclose(g1.data, g2.data)

    def test_grad_wrt_subset_of_leaves(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        y = tsum(a * b)
        (ga,) = grad(y, [a])
        np.testing.assert_allclose(ga.data, [2.0])
