"""Property-based tests for random MLP architectures (hypothesis)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.autodiff import Tensor, backward, grad, tsum
from repro.nn import make_mlp_classifier
from repro.utils.packing import flatten_params, unflatten_params

architectures = st.tuples(
    st.integers(2, 20),  # input dim
    st.integers(2, 6),  # classes
    st.lists(st.integers(2, 16), min_size=0, max_size=3),  # hidden layers
)


class TestRandomArchitectures:
    @given(arch=architectures, seed=st.integers(0, 1000))
    def test_flat_roundtrip(self, arch, seed):
        """get_flat → set_flat is the identity for any architecture."""
        d, c, hidden = arch
        model = make_mlp_classifier(d, c, hidden=tuple(hidden), seed=seed)
        flat = model.get_flat()
        clone = make_mlp_classifier(d, c, hidden=tuple(hidden), seed=seed + 1)
        clone.set_flat(flat)
        np.testing.assert_array_equal(clone.get_flat(), flat)

    @given(arch=architectures, seed=st.integers(0, 1000))
    def test_forward_shape(self, arch, seed):
        d, c, hidden = arch
        model = make_mlp_classifier(d, c, hidden=tuple(hidden), seed=seed)
        x = np.random.default_rng(seed).normal(size=(3, d))
        assert model(Tensor(x)).shape == (3, c)

    @given(arch=architectures, seed=st.integers(0, 1000))
    def test_every_parameter_reachable(self, arch, seed):
        """backward() populates a gradient on every parameter."""
        d, c, hidden = arch
        model = make_mlp_classifier(d, c, hidden=tuple(hidden), seed=seed)
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(4, d))
        y = rng.integers(0, c, size=4)
        backward(model.loss(X, y))
        assert all(p.grad is not None for p in model.parameters())

    @given(arch=architectures, seed=st.integers(0, 1000))
    def test_param_count_formula(self, arch, seed):
        d, c, hidden = arch
        model = make_mlp_classifier(d, c, hidden=tuple(hidden), seed=seed)
        dims = [d, *hidden, c]
        expected = sum(a * b + b for a, b in zip(dims, dims[1:]))
        assert model.num_parameters() == expected

    @given(arch=architectures, seed=st.integers(0, 1000))
    def test_flatten_matches_module_flat(self, arch, seed):
        """Module.get_flat agrees with the packing utilities."""
        d, c, hidden = arch
        model = make_mlp_classifier(d, c, hidden=tuple(hidden), seed=seed)
        flat, spec = flatten_params([p.data for p in model.parameters()])
        np.testing.assert_array_equal(flat, model.get_flat())
        restored = unflatten_params(flat, spec)
        for p, r in zip(model.parameters(), restored):
            np.testing.assert_array_equal(p.data, r)

    @given(seed=st.integers(0, 500))
    def test_loss_gradient_descent_direction(self, seed):
        """One gradient step with a tiny lr must not increase the loss."""
        rng = np.random.default_rng(seed)
        model = make_mlp_classifier(6, 3, hidden=(8,), seed=seed)
        X = rng.normal(size=(30, 6))
        y = rng.integers(0, 3, size=30)
        before = model.loss(X, y).item()
        grads = grad(model.loss(X, y), model.parameters())
        for p, g in zip(model.parameters(), grads):
            p.data = p.data - 1e-3 * g.data
        after = model.loss(X, y).item()
        assert after <= before + 1e-9
