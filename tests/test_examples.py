"""Examples stay runnable: import each, and execute the fast ones.

The slow examples (the 2^10-retraining audit, the Paillier credit-scoring
demo) are exercised only down to module level here — their full runs are
part of the documented workflow, not the test suite.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name.removesuffix('.py')}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesInventory:
    def test_at_least_five_examples(self):
        assert len(ALL_EXAMPLES) >= 5
        assert "quickstart.py" in ALL_EXAMPLES

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} has no main()"

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_has_docstring(self, name):
        module = load_example(name)
        assert module.__doc__ and len(module.__doc__) > 50


class TestFastExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "ranking (best first)" in out
        assert "mislabeled" in out

    def test_reweight_robust_training(self, capsys):
        load_example("reweight_robust_training.py").main()
        out = capsys.readouterr().out
        assert "FedSGD" in out and "DIG-FL" in out

    def test_backend_faceoff(self, capsys):
        load_example("backend_faceoff.py").main()
        out = capsys.readouterr().out
        assert "leaderboards (best participant first)" in out
        assert "cross-backend agreement" in out
        assert "gtg_shapley budget" in out

    def test_adversarial_detection(self, capsys):
        load_example("adversarial_detection.py").main()
        out = capsys.readouterr().out
        assert "flagged by the robust outlier rule: [1, 4]" in out

    def test_robust_audit(self, capsys):
        load_example("robust_audit.py").main()
        out = capsys.readouterr().out
        assert "CRASH: power lost after round 4" in out
        assert "bit-for-bit equals an uninterrupted run: True" in out
        assert "rule=norm" in out
        assert "attacker ranked last: True" in out

    def test_live_leaderboard(self, capsys):
        load_example("live_leaderboard.py").main()
        out = capsys.readouterr().out
        assert "mislabeled party ranked last: True" in out
        assert "live totals bit-for-bit equal batch audit: True" in out

    def test_traced_run(self, capsys):
        load_example("traced_run.py").main()
        out = capsys.readouterr().out
        assert "slowest task" in out
        assert "lowest total contribution: party 4 (mislabeled party is 4)" in out
        assert "statuses all ok: True" in out

    def test_resilient_leaderboard(self, capsys):
        load_example("resilient_leaderboard.py").main()
        out = capsys.readouterr().out
        assert "served last good leaderboard, stale=True" in out
        assert "healthz status: degraded" in out
        assert "healed: stale=False" in out
        assert "recovered totals bit-for-bit equal pre-crash: True" in out
