"""Degraded-mode behaviour under deterministic fault injection.

The acceptance scenario of the resilience work: with chaos injected at
the estimator boundary — latency spikes, raised errors, NaN-poisoned
payloads, all on a seeded RNG — the service must *never* answer a bare
500.  Failed computes fall back to the last good answer marked
``"stale": true``, repeated failures trip the run's circuit breaker
(``/healthz`` reports ``degraded``), a healed estimator closes the
breaker through a half-open probe, and the engine-side publisher turns
unrecoverable sink failures into ``publish_dlq`` events while training
carries on.
"""

import numpy as np
import pytest

from repro.runtime import FederatedRuntime, RuntimeConfig
from repro.runtime.events import CONTRIB_UPDATED, PUBLISH_DLQ
from repro.serve import (
    ChaosError,
    ChaosPolicy,
    CircuitOpen,
    EvaluationService,
    QueryFailed,
    inject_chaos,
)
from repro.serve.chaos import ChaosEstimator, FlakyProxy

pytestmark = pytest.mark.timeout(180)  # inert without pytest-timeout (CI has it)


class TestChaosPolicy:
    def test_decisions_are_a_pure_function_of_seed(self):
        def run(policy):
            outcomes = []
            for _ in range(50):
                try:
                    policy.before_call("x")
                    outcomes.append("ok")
                except ChaosError:
                    outcomes.append("err")
            return outcomes

        a = run(ChaosPolicy(seed=3, error_prob=0.3))
        b = run(ChaosPolicy(seed=3, error_prob=0.3))
        assert a == b
        assert "err" in a and "ok" in a

    def test_disarmed_policy_injects_nothing(self):
        policy = ChaosPolicy(
            seed=0, latency_prob=1.0, latency_ms=50.0, error_prob=1.0,
            corrupt_prob=1.0, sleep=lambda _s: None,
        )
        policy.disarm()
        policy.before_call("x")  # would raise if armed
        value = np.ones(4)
        assert np.array_equal(policy.corrupt(value), value)
        assert policy.injected == {"latency": 0, "error": 0, "corrupt": 0}

    def test_corrupt_poisons_a_copy_not_the_input(self):
        policy = ChaosPolicy(seed=1, corrupt_prob=1.0)
        value = np.ones(8)
        poisoned = policy.corrupt(value)
        assert np.isnan(poisoned).sum() == 1
        assert np.array_equal(value, np.ones(8))
        assert policy.injected["corrupt"] == 1

    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="error_prob"):
            ChaosPolicy(error_prob=1.5)

    def test_latency_injection_calls_sleep(self):
        sleeps = []
        policy = ChaosPolicy(
            seed=0, latency_prob=1.0, latency_ms=25.0, sleep=sleeps.append
        )
        policy.before_call("x")
        assert sleeps == [0.025]


class TestChaosEstimator:
    def test_delegates_untouched_attributes(self, vfl_result):
        from repro.serve import StreamingVFLEstimator

        inner = StreamingVFLEstimator(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        wrapped = ChaosEstimator(inner, ChaosPolicy(seed=0))
        assert wrapped.participant_ids == inner.participant_ids
        assert wrapped.n_epochs == 0

    def test_clean_policy_is_transparent(self, vfl_result):
        svc = EvaluationService()
        with svc:
            run_id = svc.register_vfl_log(vfl_result.log, run_id="clean")
            before = svc.contributions(run_id)
            inject_chaos(svc, run_id, ChaosPolicy(seed=0))  # all probs 0
            svc.ingest(run_id, vfl_result.log.records[0])
            # A no-op chaos wrapper changes nothing but the digest path.
            after = svc.contributions("clean")
            assert after["epochs"] == before["epochs"] + 1


class TestDegradedServing:
    """Injected failures ⇒ stale-marked answers, breaker trips, healing."""

    def _service(self, vfl_result, **kwargs):
        svc = EvaluationService(
            breaker_failures=kwargs.pop("breaker_failures", 3),
            breaker_reset_s=kwargs.pop("breaker_reset_s", 0.0),
            **kwargs,
        )
        run_id = svc.register_vfl(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        for record in vfl_result.log.records[:2]:
            svc.ingest(run_id, record)
        return svc, run_id

    def test_failure_with_last_good_serves_stale(self, vfl_result):
        svc, run_id = self._service(vfl_result)
        with svc:
            good = svc.contributions(run_id)
            assert good["stale"] is False
            policy = ChaosPolicy(seed=0, error_prob=1.0)
            inject_chaos(svc, run_id, policy)
            policy.disarm()
            svc.ingest(run_id, vfl_result.log.records[2])  # new digest
            policy.arm()
            stale = svc.contributions(run_id)
            assert stale["stale"] is True
            # The stale payload is the *last good* one, verbatim.
            assert stale["totals"] == good["totals"]
            assert stale["epochs"] == good["epochs"] == 2
            assert stale["run_id"] == run_id

    def test_failure_without_last_good_is_query_failed_not_500(
        self, vfl_result
    ):
        svc, run_id = self._service(vfl_result)
        with svc:
            inject_chaos(svc, run_id, ChaosPolicy(seed=0, error_prob=1.0))
            with pytest.raises(QueryFailed, match="ChaosError"):
                svc.contributions(run_id)

    def test_breaker_trips_and_healthz_degrades(self, vfl_result):
        svc, run_id = self._service(
            vfl_result, breaker_failures=3, breaker_reset_s=3600.0
        )
        with svc:
            good = svc.leaderboard(run_id, top=2)
            policy = ChaosPolicy(seed=0, error_prob=1.0)
            inject_chaos(svc, run_id, policy)
            policy.disarm()
            svc.ingest(run_id, vfl_result.log.records[2])
            policy.arm()
            breaker = svc._run(run_id).breaker
            for _ in range(3):
                assert svc.leaderboard(run_id, top=2)["stale"] is True
            assert breaker.state == "open"
            assert svc.health() == {
                "status": "degraded",
                "runs": 1,
                "degraded_runs": [run_id],
            }
            assert svc.stats()["breakers"][run_id]["opens"] >= 1
            # While open, the compute is not even attempted: the chaos
            # error counter stays put, yet the answer is still served.
            errors_before = policy.injected["error"]
            stale = svc.leaderboard(run_id, top=2)
            assert policy.injected["error"] == errors_before
            assert stale["stale"] is True
            assert stale["leaderboard"] == good["leaderboard"]

    def test_healed_estimator_closes_the_breaker_via_probe(self, vfl_result):
        # reset_s=0: the breaker goes half-open immediately, so the next
        # query after healing is the probe.
        svc, run_id = self._service(
            vfl_result, breaker_failures=2, breaker_reset_s=0.0
        )
        with svc:
            svc.weights(run_id)
            policy = ChaosPolicy(seed=0, error_prob=1.0)
            inject_chaos(svc, run_id, policy)
            policy.disarm()
            svc.ingest(run_id, vfl_result.log.records[2])
            policy.arm()
            for _ in range(2):
                assert svc.weights(run_id)["stale"] is True
            assert svc.health()["status"] == "degraded"
            policy.disarm()  # the estimator heals
            fresh = svc.weights(run_id)
            assert fresh["stale"] is False
            assert fresh["epochs"] == 3
            assert svc.health()["status"] == "ok"
            assert svc._run(run_id).breaker.state == "closed"

    def test_open_breaker_with_no_last_good_is_circuit_open(self, vfl_result):
        svc, run_id = self._service(
            vfl_result, breaker_failures=1, breaker_reset_s=3600.0
        )
        with svc:
            inject_chaos(svc, run_id, ChaosPolicy(seed=0, error_prob=1.0))
            with pytest.raises(QueryFailed):
                svc.contributions(run_id)  # trips the breaker
            with pytest.raises(CircuitOpen):
                svc.contributions(run_id)  # refused outright, typed

    def test_corrupted_payload_is_a_failure_never_cached(self, vfl_result):
        svc, run_id = self._service(vfl_result)
        with svc:
            good = svc.contributions(run_id)
            policy = ChaosPolicy(seed=0, corrupt_prob=1.0)
            inject_chaos(svc, run_id, policy)
            policy.disarm()
            svc.ingest(run_id, vfl_result.log.records[2])
            policy.arm()
            stale = svc.contributions(run_id)
            assert stale["stale"] is True
            assert all(np.isfinite(stale["totals"]))
            assert stale["totals"] == good["totals"]
            policy.disarm()
            # Nothing NaN ever entered the cache: the healed query serves
            # the true, finite, 3-epoch answer.
            healed = svc.contributions(run_id)
            assert healed["stale"] is False
            assert healed["epochs"] == 3
            assert all(np.isfinite(healed["totals"]))

    def test_caller_errors_never_trip_the_breaker(self, vfl_result):
        svc, run_id = self._service(vfl_result, breaker_failures=1)
        with svc:
            for _ in range(5):
                with pytest.raises(ValueError, match="scheme"):
                    svc.weights(run_id, scheme="banana")
            assert svc._run(run_id).breaker.state == "closed"
            assert svc.health()["status"] == "ok"


class TestEnginePublishingUnderChaos:
    def test_dead_letters_become_dlq_events_and_training_survives(
        self, hfl_federation
    ):
        from repro.hfl import HFLTrainer
        from repro.nn import LRSchedule
        from tests.conftest import small_model_factory

        trainer = HFLTrainer(
            small_model_factory, epochs=4, lr_schedule=LRSchedule(0.5)
        )
        runtime = FederatedRuntime(RuntimeConfig())
        with EvaluationService() as svc:
            run_id = svc.register_hfl(
                range(len(hfl_federation.locals)),
                hfl_federation.validation,
                small_model_factory,
            )
            # The sink fails twice: publish #1 burns 1 try + 1 retry and
            # dead-letters; the gap then poisons publishes #2-#4, which
            # dead-letter without an attempt.
            flaky = FlakyProxy(svc, failures=2)
            from repro.serve import ContributionPublisher

            publisher = ContributionPublisher(
                flaky, run_id, max_retries=1, sleep=lambda _s: None
            )
            result = runtime.run_hfl(
                trainer,
                hfl_federation.locals,
                hfl_federation.validation,
                publisher=publisher,
            )
            assert result.log.n_epochs == 4  # training never noticed
            dlq = runtime.event_log.of_kind(PUBLISH_DLQ)
            assert len(dlq) == 4
            assert runtime.event_log.of_kind(CONTRIB_UPDATED) == []
            assert runtime.event_log.summary()["publish_dead_letters"] == 4.0
            assert "ChaosError" in dlq[0].detail["error"]
            for event in dlq[1:]:
                assert event.detail["attempts"] == 0  # poisoned, no attempt
                assert "gap" in event.detail["error"]
            # The remedy: one ingest_log replay backfills the whole gap,
            # and the served numbers are bit-for-bit the batch estimate.
            from repro.core import estimate_hfl_resource_saving

            svc.ingest_log(run_id, result.log)
            batch = estimate_hfl_resource_saving(
                result.log, hfl_federation.validation, small_model_factory
            )
            served = svc.contributions(run_id)
            assert served["epochs"] == 4
            assert served["totals"] == [float(v) for v in batch.totals]

    def test_raising_sink_is_contained_as_a_dlq_event(self, hfl_federation):
        from repro.hfl import HFLTrainer
        from repro.nn import LRSchedule
        from tests.conftest import small_model_factory

        class ExplodingSink:
            def publish(self, record):
                raise RuntimeError("sink on fire")

        trainer = HFLTrainer(
            small_model_factory, epochs=2, lr_schedule=LRSchedule(0.5)
        )
        runtime = FederatedRuntime(RuntimeConfig())
        result = runtime.run_hfl(
            trainer,
            hfl_federation.locals,
            hfl_federation.validation,
            publisher=ExplodingSink(),
        )
        assert result.log.n_epochs == 2
        dlq = runtime.event_log.of_kind(PUBLISH_DLQ)
        assert len(dlq) == 2
        assert "sink on fire" in dlq[0].detail["error"]
