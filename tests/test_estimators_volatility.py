"""DPVS pruning behaviour and the cross-backend volatility report."""

import json

import numpy as np
import pytest

from repro.core import get_backend
from repro.core.backends import HFLRunContext
from repro.core.contribution import from_per_epoch
from repro.data import mnist_like
from repro.estimators import StreamingDPVSEstimator, volatility_report
from repro.obs import Profiler
from tests.test_estimators_gtg import _separated_log
from tests.test_runtime_partial_estimators import (
    MASKS,
    _build_hfl_log,
    _factory,
)


@pytest.fixture(scope="module")
def validation():
    return mnist_like(40, seed=1)


class TestDPVS:
    def test_deterministic_under_seed(self, validation):
        log = _build_hfl_log()
        a = get_backend("dpvs", seed=5).estimate_hfl(log, validation, _factory)
        b = get_backend("dpvs", seed=5).estimate_hfl(log, validation, _factory)
        assert np.array_equal(a.per_epoch, b.per_epoch)

    def test_absent_participants_score_zero(self, validation):
        log = _build_hfl_log()
        report = get_backend("dpvs").estimate_hfl(log, validation, _factory)
        for t, mask in enumerate(MASKS):
            if mask is None:
                continue
            assert (report.per_epoch[t, ~mask] == 0.0).all()

    def test_weak_participant_pruned_and_evaluations_saved(self):
        # Party 2's running |total| settles under 10% of the leader's on
        # this log: once warmup passes it must be pruned, and its fixed
        # prefix position must start hitting the coalition cache.
        log, validation = _separated_log([1.5, 1.0, 0.5, 1.0], epochs=5)
        backend = get_backend(
            "dpvs", warmup_rounds=2, prune_below=0.1, revive_above=0.2,
            min_active=2,
        )
        estimator = backend.streaming_hfl(
            HFLRunContext(log.participant_ids, validation, _factory)
        )
        estimator.ingest_log(log)
        report = estimator.report()
        diag = report.extra["dpvs"]
        assert 2 in diag["pruned"]
        assert diag["prune_events"] >= 1
        assert diag["evaluations_saved"] > 0
        assert estimator.pruned_participants == diag["pruned"]

    def test_min_active_floor_blocks_pruning(self):
        log, validation = _separated_log([1.0, 0.001], epochs=4)
        report = get_backend(
            "dpvs", warmup_rounds=1, min_active=2
        ).estimate_hfl(log, validation, _factory)
        assert report.extra["dpvs"]["pruned"] == []

    def test_profiler_phases_recorded(self, validation):
        profiler = Profiler()
        get_backend("dpvs").estimate_hfl(
            _build_hfl_log(), validation, _factory, profiler=profiler
        )
        phases = {entry["phase"] for entry in profiler.report()}
        assert "dpvs.reconstruct" in phases
        assert "dpvs.eval_round" in phases

    def test_constructor_validation(self, validation):
        with pytest.raises(ValueError, match="permutations"):
            StreamingDPVSEstimator(
                [0, 1], validation, _factory, permutations=0
            )
        with pytest.raises(ValueError, match="prune_below"):
            StreamingDPVSEstimator(
                [0, 1], validation, _factory, prune_below=0.5, revive_above=0.1
            )


def _report(name, per_epoch, ids=(0, 1, 2)):
    return from_per_epoch(name, list(ids), np.asarray(per_epoch, dtype=float))


class TestVolatilityReport:
    def test_cov_matches_hand_computation(self):
        per_epoch = [[1.0, 2.0, 0.0], [3.0, 2.0, 0.0]]
        report = volatility_report({"a": _report("a", per_epoch)})
        np.testing.assert_allclose(report.cov["a"][0], 1.0 / 2.0)  # std/|mean|
        np.testing.assert_allclose(report.cov["a"][1], 0.0)
        assert np.isnan(report.cov["a"][2])  # zero-mean stream -> nan

    def test_rank_stability(self):
        stable = _report("stable", [[3.0, 2.0, 1.0], [3.0, 2.0, 1.0]])
        # Cumulative ranking flips completely between the two epochs.
        churn = _report("churn", [[3.0, 2.0, 1.0], [-9.0, 0.0, 9.0]])
        report = volatility_report({"stable": stable, "churn": churn})
        assert report.rank_stability["stable"] == pytest.approx(1.0)
        assert report.rank_stability["churn"] == pytest.approx(-1.0)

    def test_cross_backend_agreement_matrix(self):
        agree = _report("agree", [[3.0, 2.0, 1.0]])
        invert = _report("invert", [[1.0, 2.0, 3.0]])
        report = volatility_report({"agree": agree, "invert": invert})
        assert report.agreement("agree", "agree") == pytest.approx(1.0)
        assert report.agreement("agree", "invert") == pytest.approx(-1.0)
        assert report.agreement("invert", "agree") == pytest.approx(-1.0)

    def test_alignment_across_participant_orders(self):
        a = _report("a", [[3.0, 2.0, 1.0]], ids=(0, 1, 2))
        b = _report("b", [[1.0, 2.0, 3.0]], ids=(2, 1, 0))
        report = volatility_report({"a": a, "b": b})
        # b's totals re-aligned onto a's id order are identical to a's.
        np.testing.assert_allclose(report.totals["b"], report.totals["a"])
        assert report.agreement("a", "b") == pytest.approx(1.0)

    def test_mismatched_participants_refused(self):
        a = _report("a", [[1.0, 2.0, 3.0]], ids=(0, 1, 2))
        b = _report("b", [[1.0, 2.0, 3.0]], ids=(0, 1, 9))
        with pytest.raises(ValueError, match="covers participants"):
            volatility_report({"a": a, "b": b})
        with pytest.raises(ValueError, match="at least one"):
            volatility_report({})

    def test_to_dict_is_json_safe(self):
        report = volatility_report(
            {"a": _report("a", [[1.0, 0.0, 2.0]])}  # single epoch -> nan rank
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["rank_stability"]["a"] is None
        assert payload["backends"] == ["a"]

    def test_table_renders_all_sections(self, validation):
        log = _build_hfl_log()
        reports = {
            name: get_backend(name).estimate_hfl(log, validation, _factory)
            for name in ("digfl", "gtg_shapley")
        }
        text = volatility_report(reports).table()
        assert "coefficient of variation" in text
        assert "rank stability" in text
        assert "cross-backend agreement" in text
        assert "gtg_shapley" in text
