"""End-to-end defense: attacked federations, robust aggregation, screening.

The PR's acceptance scenario — a sign-flip attacker in the federation:

* the plain weighted mean degrades badly,
* trimmed mean and Krum stay within 10% of the attacker-free validation
  loss,
* screening quarantines the attacker, records the incidents in the
  ledger, marks the party absent in the round participation masks, and
  (on the runtime engine) emits ``quarantine`` events,
* DIG-FL still ranks the attacker last.

``REPRO_FAULT_SEED`` (CI matrix: 0/1/2) varies the data/model seeds so
the defense guarantees are not an artifact of one draw.
"""

import os

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.hfl.attacks import AdversarialHFLTrainer, scale, sign_flip
from repro.nn import LRSchedule, make_mlp_classifier
from repro.robust import (
    QuarantineLedger,
    ScreenConfig,
    UpdateScreener,
    make_aggregator,
)
from repro.runtime import FederatedRuntime, RuntimeConfig
from repro.runtime.events import QUARANTINE

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
ATTACKER = 9
EPOCHS = 6


def _factory():
    return make_mlp_classifier(100, 10, hidden=(16,), seed=SEED)


@pytest.fixture(scope="module")
def federation():
    # 10 parties: enough redundancy that trimming/selection still averages
    # a large honest majority (the robust rules' convergence premise).
    return build_hfl_federation(mnist_like(600, seed=SEED), 10, seed=SEED)


def _train(federation, *, attacks=None, aggregator=None, screener=None):
    trainer = AdversarialHFLTrainer(
        _factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5),
        attacks=attacks or {},
    )
    return trainer.train(
        federation.locals, federation.validation,
        track_validation=True, aggregator=aggregator, screener=screener,
    )


@pytest.fixture(scope="module")
def clean_loss(federation):
    """Validation loss of the attacker-free federation."""
    return _train(federation).log.val_loss_curve()[-1]


class TestRobustAggregationUnderAttack:
    @pytest.mark.parametrize("agg_name", ("trimmed", "multikrum"))
    def test_robust_rules_within_10pct_of_attack_free(
        self, federation, clean_loss, agg_name
    ):
        attacks = {ATTACKER: sign_flip(strength=5.0)}
        mean_loss = _train(federation, attacks=attacks).log.val_loss_curve()[-1]
        if agg_name == "multikrum":
            agg = make_aggregator("multikrum", n_byzantine=1, multi=5)
        else:
            agg = make_aggregator("trimmed", trim_ratio=0.2)
        robust_loss = _train(
            federation, attacks=attacks, aggregator=agg
        ).log.val_loss_curve()[-1]
        # The attacked mean must visibly degrade; the robust rule must not.
        assert mean_loss > 1.3 * clean_loss
        assert robust_loss <= 1.10 * clean_loss

    def test_applied_update_recorded_for_nonlinear_rule(self, federation):
        result = _train(federation, aggregator=make_aggregator("median"))
        record = result.log.records[0]
        assert record.applied_update is not None
        # The log's reconstruction must use the applied update verbatim.
        np.testing.assert_array_equal(
            record.global_update, record.applied_update
        )

    def test_linear_mean_aggregator_matches_seed_path(self, federation):
        """WeightedMean through the Aggregator interface is the seed server."""
        plain = _train(federation)
        via_interface = _train(federation, aggregator=make_aggregator("mean"))
        for a, b in zip(plain.log.records, via_interface.log.records):
            assert b.applied_update is None
            np.testing.assert_array_equal(a.theta_before, b.theta_before)
        np.testing.assert_array_equal(plain.final_theta, via_interface.final_theta)


class TestScreeningUnderAttack:
    def test_boosting_attacker_quarantined_and_masked(self, federation):
        ledger = QuarantineLedger()
        screener = UpdateScreener(ScreenConfig(norm_factor=5.0), ledger)
        result = _train(
            federation, attacks={ATTACKER: scale(500.0)}, screener=screener
        )
        assert ledger.parties() == [ATTACKER]
        assert len(ledger) > 0
        # Every quarantined round is a hole in the participation matrix.
        matrix = result.log.participation_matrix()
        for incident in ledger:
            assert not matrix[incident.round - 1, ATTACKER]
            assert np.array_equal(
                result.log.records[incident.round - 1].local_updates[ATTACKER],
                np.zeros(result.log.records[0].local_updates.shape[1]),
            )
        # Honest parties keep full attendance.
        assert matrix[:, :ATTACKER].all()

    def test_sign_flip_attacker_cosine_quarantined(self, federation):
        # Honest parties align ≈ +0.6 with the cohort median while the
        # flipped update sits ≈ −0.4 (non-IID gradients are not mirror
        # images), so a −0.3 threshold separates them with wide margin
        # where the loose default −0.5 would not.
        ledger = QuarantineLedger()
        screener = UpdateScreener(ScreenConfig(cosine_threshold=-0.3), ledger)
        _train(
            federation,
            attacks={ATTACKER: sign_flip(strength=1.0)},
            screener=screener,
        )
        assert ledger.parties() == [ATTACKER]
        assert set(ledger.by_rule()) == {"cosine"}

    def test_screened_run_ranks_attacker_last(self, federation):
        ledger = QuarantineLedger()
        screener = UpdateScreener(ScreenConfig(norm_factor=5.0), ledger)
        result = _train(
            federation, attacks={ATTACKER: scale(500.0)}, screener=screener
        )
        report = estimate_hfl_resource_saving(
            result.log, federation.validation, _factory
        )
        assert int(np.argmin(report.totals)) == ATTACKER

    def test_clean_federation_not_quarantined(self, federation):
        """Honest non-IID disagreement must not trip the default thresholds."""
        ledger = QuarantineLedger()
        noisy = build_hfl_federation(
            mnist_like(600, seed=SEED), 5, n_mislabeled=1, n_noniid=1,
            seed=SEED,
        )
        _train(noisy, screener=UpdateScreener(ScreenConfig(), ledger))
        assert len(ledger) == 0


class TestEngineQuarantineEvents:
    def test_quarantine_events_emitted(self, federation):
        ledger = QuarantineLedger()
        screener = UpdateScreener(ScreenConfig(norm_factor=5.0), ledger)
        trainer = AdversarialHFLTrainer(
            _factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5),
            attacks={ATTACKER: scale(500.0)},
        )
        runtime = FederatedRuntime(RuntimeConfig())
        result = runtime.run_hfl(
            trainer, federation.locals, federation.validation,
            screener=screener,
        )
        events = runtime.event_log.of_kind(QUARANTINE)
        assert len(events) == len(ledger) > 0
        for event, incident in zip(events, ledger):
            assert event.party == incident.party == ATTACKER
            assert event.round == incident.round
            assert event.detail["rule"] == incident.rule
        assert runtime.event_log.summary()["quarantines"] == len(ledger)
        # Engine and synchronous trainer agree on the screened log.
        sync = trainer.train(
            federation.locals, federation.validation,
            screener=UpdateScreener(ScreenConfig(norm_factor=5.0)),
        )
        np.testing.assert_array_equal(
            sync.log.participation_matrix(), result.log.participation_matrix()
        )
        np.testing.assert_array_equal(sync.final_theta, result.final_theta)

    def test_screening_composes_with_faults(self, federation):
        """An update must arrive *and* survive screening to enter G_t."""
        from repro.runtime import FaultPlan

        ledger = QuarantineLedger()
        screener = UpdateScreener(ScreenConfig(norm_factor=5.0), ledger)
        trainer = AdversarialHFLTrainer(
            _factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5),
            attacks={ATTACKER: scale(500.0)},
        )
        runtime = FederatedRuntime(
            RuntimeConfig(faults=FaultPlan(dropout_rate=0.3, seed=SEED))
        )
        result = runtime.run_hfl(trainer, federation.locals)
        matrix = result.log.participation_matrix()
        dropouts = runtime.event_log.of_kind("dropout")
        for event in dropouts:
            assert not matrix[event.round - 1, event.party]
        for incident in ledger:
            assert not matrix[incident.round - 1, incident.party]
        # No double counting: a dropped attacker round isn't also quarantined.
        dropped = {(e.round, e.party) for e in dropouts}
        quarantined = {(i.round, i.party) for i in ledger}
        assert not dropped & quarantined


class TestVFLScreening:
    def test_nan_block_quarantined_and_frozen(self):
        from repro.data import boston_like, build_vfl_federation
        from repro.vfl import VFLTrainer

        split = build_vfl_federation(
            boston_like(seed=SEED).standardized(), 4, max_rows=150, seed=SEED
        )

        class PoisonedVFLTrainer(VFLTrainer):
            """Party 2's gradient block is NaN from round 3 on."""

            def train(self, *args, **kwargs):
                real_gradient = self.model.gradient

                def poisoned(theta, X, y):
                    g = real_gradient(theta, X, y)
                    if not np.isfinite(g).all():
                        return g
                    if self._round >= 3 and X.shape[0] > 60:  # train split only
                        g = g.copy()
                        g[self.feature_blocks[2]] = np.nan
                    self._round += X.shape[0] > 60
                    return g

                self._round = 1
                self.model.gradient = poisoned
                try:
                    return super().train(*args, **kwargs)
                finally:
                    self.model.gradient = real_gradient

        trainer = PoisonedVFLTrainer(
            "regression", split.feature_blocks, 6, LRSchedule(0.1)
        )
        ledger = QuarantineLedger()
        screener = UpdateScreener(ScreenConfig(), ledger)
        result = trainer.train(
            split.train, split.validation, screener=screener
        )
        assert ledger.parties() == [2]
        assert set(ledger.by_rule()) == {"nonfinite"}
        # θ stays finite: the poisoned block was frozen, not applied.
        assert np.isfinite(result.theta).all()
        assert np.isfinite(result.log.final_theta).all()
        matrix = result.log.participation_matrix()
        for incident in ledger:
            assert not matrix[incident.round - 1, 2]
