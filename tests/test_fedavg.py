"""Tests for FedAvg-style local training (LocalTrainingConfig)."""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving
from repro.hfl import HFLTrainer, LocalTrainingConfig
from repro.nn import LRSchedule

from tests.conftest import small_model_factory


class TestConfigValidation:
    def test_defaults_ok(self):
        config = LocalTrainingConfig()
        assert config.local_steps == 1

    def test_bad_local_steps(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(local_steps=0)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(batch_size=0)

    def test_bad_momentum(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(momentum=1.0)


class TestFedAvgSemantics:
    def test_default_config_matches_fedsgd(self, hfl_federation):
        """local_steps=1 + full batch must reproduce plain FedSGD exactly."""
        plain = HFLTrainer(small_model_factory, 3, LRSchedule(0.3))
        fedavg = HFLTrainer(
            small_model_factory, 3, LRSchedule(0.3),
            local_config=LocalTrainingConfig(local_steps=1, batch_size=None),
        )
        a = plain.train(hfl_federation.locals, hfl_federation.validation)
        b = fedavg.train(hfl_federation.locals, hfl_federation.validation)
        np.testing.assert_allclose(a.model.get_flat(), b.model.get_flat(), atol=1e-12)

    def test_multiple_steps_change_updates(self, hfl_federation):
        one = HFLTrainer(
            small_model_factory, 2, LRSchedule(0.3),
            local_config=LocalTrainingConfig(local_steps=1),
        )
        three = HFLTrainer(
            small_model_factory, 2, LRSchedule(0.3),
            local_config=LocalTrainingConfig(local_steps=3),
        )
        a = one.train(hfl_federation.locals, hfl_federation.validation)
        b = three.train(hfl_federation.locals, hfl_federation.validation)
        assert not np.allclose(
            a.log.records[0].local_updates, b.log.records[0].local_updates
        )

    def test_update_is_theta_difference(self, hfl_federation):
        """δ must equal θ_{t-1} − θ_local after the configured local run."""
        config = LocalTrainingConfig(local_steps=2, seed=3)
        trainer = HFLTrainer(
            small_model_factory, 1, LRSchedule(0.2), local_config=config
        )
        result = trainer.train(hfl_federation.locals, hfl_federation.validation)
        record = result.log.records[0]
        # Replicate participant 0's local run by hand.
        model = small_model_factory()
        model.set_flat(record.theta_before)
        from repro.hfl.trainer import flat_gradient
        from repro.utils.rng import derive_seed

        theta = record.theta_before.copy()
        data = hfl_federation.locals[0]
        np.random.default_rng(derive_seed(3, 1, 0))  # same stream, full batch
        for _ in range(2):
            model.set_flat(theta)
            theta = theta - 0.2 * flat_gradient(model, data.X, data.y)
        np.testing.assert_allclose(
            record.local_updates[0], record.theta_before - theta, atol=1e-12
        )

    def test_minibatch_deterministic(self, hfl_federation):
        config = LocalTrainingConfig(local_steps=2, batch_size=40, seed=5)
        trainer = HFLTrainer(
            small_model_factory, 2, LRSchedule(0.3), local_config=config
        )
        a = trainer.train(hfl_federation.locals, hfl_federation.validation)
        b = trainer.train(hfl_federation.locals, hfl_federation.validation)
        np.testing.assert_array_equal(a.model.get_flat(), b.model.get_flat())

    def test_minibatch_seed_changes_draws(self, hfl_federation):
        def run(seed):
            config = LocalTrainingConfig(local_steps=2, batch_size=40, seed=seed)
            trainer = HFLTrainer(
                small_model_factory, 1, LRSchedule(0.3), local_config=config
            )
            return trainer.train(hfl_federation.locals, hfl_federation.validation)

        assert not np.allclose(run(1).model.get_flat(), run(2).model.get_flat())

    def test_global_model_restored_between_participants(self, hfl_federation):
        """Participant i's local steps must not leak into participant j's
        starting point."""
        config = LocalTrainingConfig(local_steps=3, seed=0)
        trainer = HFLTrainer(
            small_model_factory, 1, LRSchedule(0.3), local_config=config
        )
        result = trainer.train(hfl_federation.locals, hfl_federation.validation)
        record = result.log.records[0]
        # Recompute participant 2's update from θ_before directly; if state
        # leaked, this would differ.
        model = small_model_factory()
        data = hfl_federation.locals[2]
        from repro.hfl.trainer import flat_gradient

        theta = record.theta_before.copy()
        for _ in range(3):
            model.set_flat(theta)
            theta = theta - 0.3 * flat_gradient(model, data.X, data.y)
        np.testing.assert_allclose(
            record.local_updates[2], record.theta_before - theta, atol=1e-12
        )


class TestDIGFLOnFedAvg:
    def test_estimator_still_ranks_corruption_low(self, hfl_federation):
        """DIG-FL consumes δ whatever produced it — the mislabeled
        participant must still rank at the bottom under FedAvg."""
        config = LocalTrainingConfig(local_steps=3, batch_size=64, seed=1)
        trainer = HFLTrainer(
            small_model_factory, 8, LRSchedule(0.3), local_config=config
        )
        result = trainer.train(hfl_federation.locals, hfl_federation.validation)
        report = estimate_hfl_resource_saving(
            result.log, hfl_federation.validation, small_model_factory
        )
        worst = int(np.argmin(report.totals))
        assert hfl_federation.qualities[worst] in ("mislabeled", "noniid")
