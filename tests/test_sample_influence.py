"""Tests for the per-sample influence drill-down."""

import numpy as np
import pytest

from repro.core import (
    estimate_hfl_resource_saving,
    mislabel_detection_score,
    sample_influences,
)
from repro.data import Dataset, build_hfl_federation, mislabel, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule

from tests.conftest import small_model_factory


@pytest.fixture(scope="module")
def corrupted_world():
    """Small federation where party 0's labels are 50% corrupted, with the
    corruption mask kept for ground truth."""
    dataset = mnist_like(600, seed=40)
    fed = build_hfl_federation(dataset, 3, seed=40)
    locals_ = list(fed.locals)
    corrupted_y, mask = mislabel(locals_[0].y, 0.5, 10, seed=41)
    locals_[0] = Dataset(
        name=locals_[0].name,
        X=locals_[0].X,
        y=corrupted_y,
        task=locals_[0].task,
        num_classes=locals_[0].num_classes,
    )
    trainer = HFLTrainer(small_model_factory, 6, LRSchedule(0.4))
    result = trainer.train(locals_, fed.validation)
    return locals_, fed.validation, result, mask


class TestSampleInfluences:
    def test_shapes(self, corrupted_world):
        locals_, validation, result, _ = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        m = len(locals_[0])
        assert report.scores.shape == (m,)
        assert report.per_epoch.shape == (6, m)

    def test_decomposition_sums_to_participant_phi(self, corrupted_world):
        """Per-sample scores must sum to the participant's own DIG-FL
        contribution — they are its exact decomposition."""
        locals_, validation, result, _ = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        digfl = estimate_hfl_resource_saving(
            result.log, validation, small_model_factory
        )
        # φ̂_{t,0} = (1/n)⟨v, δ⟩; sample scores use α⟨v, g_j⟩/m and
        # δ = α·mean_j(g_j), so Σ_j s_{t,j} = n·φ̂_{t,0} / n ... = ⟨v, δ⟩.
        n = result.log.n_participants
        np.testing.assert_allclose(
            report.per_epoch.sum(axis=1), digfl.per_epoch[:, 0] * n, atol=1e-10
        )

    def test_corrupted_samples_score_lower(self, corrupted_world):
        locals_, validation, result, mask = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        auc = mislabel_detection_score(report, mask)
        assert auc > 0.8, f"corrupted samples should separate, AUC={auc:.3f}"

    def test_worst_k(self, corrupted_world):
        locals_, validation, result, mask = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        worst = report.worst(10)
        assert mask[worst].mean() > 0.7  # most of the worst-10 are corrupted

    def test_worst_k_bounds(self, corrupted_world):
        locals_, validation, result, _ = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        with pytest.raises(ValueError):
            report.worst(0)
        with pytest.raises(ValueError):
            report.worst(report.n_samples + 1)

    def test_epoch_slice(self, corrupted_world):
        locals_, validation, result, _ = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory,
            epochs=slice(-2, None),
        )
        assert report.per_epoch.shape[0] == 2

    def test_unknown_participant(self, corrupted_world):
        locals_, validation, result, _ = corrupted_world
        with pytest.raises(KeyError):
            sample_influences(
                result.log, 99, locals_[0], validation, small_model_factory
            )

    def test_empty_epoch_slice(self, corrupted_world):
        locals_, validation, result, _ = corrupted_world
        with pytest.raises(ValueError, match="no epochs"):
            sample_influences(
                result.log, 0, locals_[0], validation, small_model_factory,
                epochs=slice(0, 0),
            )


class TestDetectionScore:
    def test_perfect_separation(self, corrupted_world):
        locals_, validation, result, mask = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        # Construct a synthetic perfectly-separating report.
        fake = type(report)(
            participant_id=0,
            scores=np.where(mask, -1.0, 1.0),
            per_epoch=report.per_epoch,
        )
        assert mislabel_detection_score(fake, mask) == 1.0

    def test_chance_level(self, corrupted_world):
        locals_, validation, result, mask = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        fake = type(report)(
            participant_id=0,
            scores=np.zeros_like(report.scores),
            per_epoch=report.per_epoch,
        )
        assert mislabel_detection_score(fake, mask) == pytest.approx(0.5)

    def test_shape_mismatch(self, corrupted_world):
        locals_, validation, result, mask = corrupted_world
        report = sample_influences(
            result.log, 0, locals_[0], validation, small_model_factory
        )
        with pytest.raises(ValueError):
            mislabel_detection_score(report, mask[:-1])
