"""Property-based tests of autodiff algebraic identities (hypothesis)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.autodiff import (
    Tensor,
    exp,
    grad,
    hvp,
    log,
    matmul,
    mul,
    sigmoid,
    softplus,
    tanh,
    tsum,
)

small_floats = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


def vec(seed, size, offset=0.0):
    return np.random.default_rng(seed).normal(size=size) + offset


class TestLinearity:
    @given(seed=st.integers(0, 10_000), a=small_floats, b=small_floats)
    def test_grad_is_linear_in_output_combination(self, seed, a, b):
        """∇(a·f + b·g) = a·∇f + b·∇g."""
        x = Tensor(vec(seed, 5), requires_grad=True)
        f = tsum(mul(x, x))
        g = tsum(exp(x * 0.3))
        (grad_f,) = grad(f, [x])
        (grad_g,) = grad(g, [x])
        combined = a * f + b * g
        if not combined.requires_grad:  # a == b == 0 degenerate graph still ok
            return
        (grad_combined,) = grad(combined, [x])
        np.testing.assert_allclose(
            grad_combined.data, a * grad_f.data + b * grad_g.data, atol=1e-10
        )

    @given(seed=st.integers(0, 10_000))
    def test_sum_rule(self, seed):
        """∇Σ(f+g) = ∇Σf + ∇Σg."""
        x = Tensor(vec(seed, 4), requires_grad=True)
        (g1,) = grad(tsum(tanh(x)) + tsum(mul(x, x)), [x])
        (g2a,) = grad(tsum(tanh(x)), [x])
        (g2b,) = grad(tsum(mul(x, x)), [x])
        np.testing.assert_allclose(g1.data, g2a.data + g2b.data, atol=1e-10)


class TestChainAndProductRules:
    @given(seed=st.integers(0, 10_000))
    def test_product_rule(self, seed):
        """d(f·g) = f'·g + f·g' pointwise for elementwise factors."""
        x = Tensor(vec(seed, 6), requires_grad=True)
        f = tanh(x)
        g = sigmoid(x)
        (grad_prod,) = grad(tsum(mul(f, g)), [x])
        expected = (1 - np.tanh(x.data) ** 2) * (
            1 / (1 + np.exp(-x.data))
        ) + np.tanh(x.data) * (
            np.exp(-x.data) / (1 + np.exp(-x.data)) ** 2
        )
        np.testing.assert_allclose(grad_prod.data, expected, atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    def test_log_exp_inverse(self, seed):
        """∇ Σ log(exp(x)) = 1."""
        x = Tensor(vec(seed, 5), requires_grad=True)
        (g,) = grad(tsum(log(exp(x))), [x])
        np.testing.assert_allclose(g.data, 1.0, atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    def test_softplus_derivative_is_sigmoid(self, seed):
        x = Tensor(vec(seed, 7), requires_grad=True)
        (g,) = grad(tsum(softplus(x)), [x])
        np.testing.assert_allclose(g.data, 1 / (1 + np.exp(-x.data)), atol=1e-10)


class TestMatmulIdentities:
    @given(seed=st.integers(0, 10_000))
    def test_trace_like_gradient(self, seed):
        """∇_A Σ(A@B) = 1·Bᵀ (outer of ones with row sums)."""
        rng = np.random.default_rng(seed)
        A = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        B = Tensor(rng.normal(size=(4, 2)))
        (g,) = grad(tsum(matmul(A, B)), [A])
        expected = np.ones((3, 2)) @ B.data.T
        np.testing.assert_allclose(g.data, expected, atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    def test_quadratic_form_gradient(self, seed):
        """∇_x xᵀAx = (A + Aᵀ)x."""
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(4, 4))
        x = Tensor(rng.normal(size=4), requires_grad=True)
        (g,) = grad(matmul(x, matmul(Tensor(A), x)), [x])
        np.testing.assert_allclose(g.data, (A + A.T) @ x.data, atol=1e-9)


class TestHessianProperties:
    @given(seed=st.integers(0, 10_000))
    def test_hessian_symmetry_via_hvp(self, seed):
        """⟨u, H v⟩ = ⟨v, H u⟩ for a smooth nonquadratic loss."""
        rng = np.random.default_rng(seed)
        W = Tensor(rng.normal(size=6), requires_grad=True)
        X = Tensor(rng.normal(size=(8, 6)))

        def loss_fn(params):
            (w,) = params
            return tsum(softplus(matmul(X, w)))

        u = rng.normal(size=6)
        v = rng.normal(size=6)
        (hv,) = hvp(loss_fn, [W], [Tensor(v)])
        (hu,) = hvp(loss_fn, [W], [Tensor(u)])
        np.testing.assert_allclose(
            np.dot(u, hv.data), np.dot(v, hu.data), atol=1e-8
        )

    @given(seed=st.integers(0, 10_000), scale=st.floats(0.1, 3.0))
    def test_hvp_homogeneous_in_v(self, seed, scale):
        """H(c·v) = c·H(v)."""
        rng = np.random.default_rng(seed)
        W = Tensor(rng.normal(size=5), requires_grad=True)
        X = Tensor(rng.normal(size=(7, 5)))

        def loss_fn(params):
            (w,) = params
            return tsum(tanh(matmul(X, w)) ** 2.0)

        v = rng.normal(size=5)
        (hv,) = hvp(loss_fn, [W], [Tensor(v)])
        (hcv,) = hvp(loss_fn, [W], [Tensor(scale * v)])
        np.testing.assert_allclose(hcv.data, scale * hv.data, atol=1e-8)


class TestNumericalStability:
    @given(value=st.floats(-745.0, 709.0, allow_nan=False))
    def test_sigmoid_always_finite_and_bounded(self, value):
        out = sigmoid(Tensor(np.array([value])))
        assert np.isfinite(out.data).all()
        assert 0.0 <= out.data[0] <= 1.0

    @given(value=st.floats(-1e6, 1e6, allow_nan=False))
    def test_softplus_always_finite_nonnegative(self, value):
        out = softplus(Tensor(np.array([value])))
        assert np.isfinite(out.data).all()
        assert out.data[0] >= 0.0
