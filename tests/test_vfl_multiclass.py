"""Tests for the multiclass (softmax) VFL extension."""

import numpy as np
import pytest

from repro.core import estimate_vfl_first_order, estimate_vfl_second_order
from repro.data import make_tabular_multiclass, vertical_partition
from repro.metrics import pearson_correlation
from repro.models import SoftmaxRegressionModel, expand_feature_blocks, make_vfl_model
from repro.nn import LRSchedule
from repro.shapley import VFLRetrainUtility, exact_shapley
from repro.vfl import VFLTrainer

RNG = np.random.default_rng(2024)


@pytest.fixture(scope="module")
def multiclass_data():
    return make_tabular_multiclass("mc", 400, 9, 4, temperature=0.5, seed=0)


@pytest.fixture(scope="module")
def multiclass_vfl(multiclass_data):
    train, val = multiclass_data.validation_split(0.15, seed=1)
    feature_blocks = vertical_partition(9, 3, seed=2)
    coeff_blocks = expand_feature_blocks(feature_blocks, 4)
    trainer = VFLTrainer(
        "multiclass", coeff_blocks, epochs=40, lr_schedule=LRSchedule(0.5),
        n_classes=4,
    )
    result = trainer.train(train, val, track_losses=True)
    return train, val, trainer, result


class TestSoftmaxModel:
    def test_loss_matches_autodiff(self, multiclass_data):
        from repro.autodiff import Tensor, cross_entropy_with_logits

        model = SoftmaxRegressionModel(4)
        theta = RNG.normal(size=9 * 4)
        X, y = multiclass_data.X, multiclass_data.y
        ref = cross_entropy_with_logits(
            Tensor(X) @ Tensor(theta.reshape(9, 4)), y
        ).item()
        assert model.loss(theta, X, y) == pytest.approx(ref, abs=1e-10)

    def test_gradient_matches_autodiff(self, multiclass_data):
        from repro.autodiff import Tensor, cross_entropy_with_logits, grad

        model = SoftmaxRegressionModel(4)
        theta = RNG.normal(size=9 * 4)
        X, y = multiclass_data.X, multiclass_data.y
        t = Tensor(theta.reshape(9, 4), requires_grad=True)
        (g_ref,) = grad(cross_entropy_with_logits(Tensor(X) @ t, y), [t])
        np.testing.assert_allclose(
            model.gradient(theta, X, y), g_ref.data.ravel(), atol=1e-10
        )

    def test_hvp_matches_finite_difference(self, multiclass_data):
        model = SoftmaxRegressionModel(4)
        theta = RNG.normal(size=9 * 4) * 0.3
        X, y = multiclass_data.X[:100], multiclass_data.y[:100]
        v = RNG.normal(size=9 * 4)
        hv = model.hvp(theta, X, y, v)
        eps = 1e-6
        numeric = (
            model.gradient(theta + eps * v, X, y)
            - model.gradient(theta - eps * v, X, y)
        ) / (2 * eps)
        np.testing.assert_allclose(hv, numeric, atol=1e-6)

    def test_hessian_psd(self, multiclass_data):
        model = SoftmaxRegressionModel(3)
        X = multiclass_data.X[:80, :4]
        y = multiclass_data.y[:80] % 3
        H = model.hessian(RNG.normal(size=12), X, y)
        assert np.linalg.eigvalsh(H).min() >= -1e-9

    def test_training_learns(self, multiclass_data):
        model = SoftmaxRegressionModel(4)
        X, y = multiclass_data.X, multiclass_data.y
        theta = np.zeros(36)
        for _ in range(200):
            theta -= 0.5 * model.gradient(theta, X, y)
        assert model.score(theta, X, y) > 0.6

    def test_bad_class_count(self):
        with pytest.raises(ValueError):
            SoftmaxRegressionModel(1)

    def test_factory(self):
        assert isinstance(
            make_vfl_model("multiclass", n_classes=3), SoftmaxRegressionModel
        )


class TestExpandBlocks:
    def test_contiguous_per_feature(self):
        blocks = expand_feature_blocks([np.array([0, 2])], 3)
        np.testing.assert_array_equal(blocks[0], [0, 1, 2, 6, 7, 8])

    def test_partition_property(self):
        feature_blocks = vertical_partition(7, 3, seed=0)
        expanded = expand_feature_blocks(feature_blocks, 4)
        merged = np.sort(np.concatenate(expanded))
        np.testing.assert_array_equal(merged, np.arange(28))

    def test_bad_classes(self):
        with pytest.raises(ValueError):
            expand_feature_blocks([np.array([0])], 1)


class TestMulticlassVFL:
    def test_loss_decreases(self, multiclass_vfl):
        _, _, _, result = multiclass_vfl
        curve = result.log.val_loss_curve()
        assert curve[-1] < curve[0]

    def test_model_accuracy(self, multiclass_vfl):
        train, val, trainer, result = multiclass_vfl
        assert trainer.model.score(result.theta, val.X, val.y) > 0.5

    def test_digfl_tracks_exact_shapley(self, multiclass_vfl):
        train, val, trainer, result = multiclass_vfl
        digfl = estimate_vfl_first_order(result.log)
        utility = VFLRetrainUtility(trainer, train, val)
        exact = exact_shapley(utility)
        assert pearson_correlation(digfl.totals, exact.totals) > 0.8

    def test_second_order_close(self, multiclass_vfl):
        train, _, trainer, result = multiclass_vfl
        fo = estimate_vfl_first_order(result.log)
        so = estimate_vfl_second_order(result.log, trainer.model, train)
        assert pearson_correlation(fo.totals, so.totals) > 0.9

    def test_unexpanded_blocks_rejected(self, multiclass_data):
        train, val = multiclass_data.validation_split(0.15, seed=1)
        feature_blocks = vertical_partition(9, 3, seed=2)
        trainer = VFLTrainer(
            "multiclass", feature_blocks, 5, LRSchedule(0.5), n_classes=4
        )
        with pytest.raises(ValueError, match="expand_feature_blocks"):
            trainer.train(train, val)


class TestMulticlassGenerator:
    def test_shapes(self):
        ds = make_tabular_multiclass("m", 100, 5, 3, seed=0)
        assert ds.X.shape == (100, 5)
        assert ds.num_classes == 3
        assert set(np.unique(ds.y)) <= {0, 1, 2}

    def test_deterministic(self):
        a = make_tabular_multiclass("m", 50, 4, 3, seed=5)
        b = make_tabular_multiclass("m", 50, 4, 3, seed=5)
        np.testing.assert_array_equal(a.y, b.y)

    def test_bad_classes(self):
        with pytest.raises(ValueError):
            make_tabular_multiclass("m", 50, 4, 1)
