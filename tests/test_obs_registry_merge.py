"""MetricsRegistry.merge — the cluster's metric-aggregation primitive.

A router scrapes each worker's ``/metricz?format=snapshot`` and folds
the JSON-decoded snapshots into one fresh registry under a ``worker``
label.  These tests pin the contract that makes that safe: merges are
additive per ``(name, labels)`` key, JSON round-trips (tuples → lists)
are accepted, live instruments refuse to be merged over, and the merged
registry's Prometheus rendering still satisfies the strict round-trip
parser from ``tests/test_obs_registry``.
"""

import json

import pytest

from repro.metrics.cost import LatencyHistogram
from repro.obs.registry import MetricsRegistry
from tests.test_obs_registry import parse_prometheus


def _worker_registry(worker_seed: int) -> MetricsRegistry:
    """A registry shaped like one shard worker's: counters, gauge, histogram."""
    registry = MetricsRegistry()
    registry.counter(
        "repro_requests_total", help="requests", labels={"path": "/runs"}
    ).inc(10 + worker_seed)
    registry.counter(
        "repro_requests_total", help="requests", labels={"path": "/healthz"}
    ).inc(2)
    registry.gauge("repro_queue_depth", help="depth").set(worker_seed)
    hist = registry.histogram("repro_latency_seconds", help="latency")
    for value in (0.001, 0.01, 0.1 * (worker_seed + 1)):
        hist.record(value)
    return registry


def test_merge_stamps_worker_label_and_keeps_series_apart():
    merged = MetricsRegistry()
    merged.merge(_worker_registry(0).snapshot(), labels={"worker": "0"})
    merged.merge(_worker_registry(1).snapshot(), labels={"worker": "1"})
    snap = merged.snapshot()
    series = snap["repro_requests_total"]["series"]
    by_labels = {tuple(sorted(s["labels"].items())): s["value"] for s in series}
    assert by_labels[(("path", "/runs"), ("worker", "0"))] == 10.0
    assert by_labels[(("path", "/runs"), ("worker", "1"))] == 11.0
    assert len(series) == 4  # two paths x two workers, none collapsed


def test_merge_is_additive_on_identical_keys():
    merged = MetricsRegistry()
    merged.merge(_worker_registry(0).snapshot(), labels={"worker": "0"})
    merged.merge(_worker_registry(0).snapshot(), labels={"worker": "0"})
    snap = merged.snapshot()
    by_labels = {
        tuple(sorted(s["labels"].items())): s["value"]
        for s in snap["repro_requests_total"]["series"]
    }
    assert by_labels[(("path", "/runs"), ("worker", "0"))] == 20.0
    hist = snap["repro_latency_seconds"]["series"][0]["value"]
    assert hist["count"] == 6
    assert hist["total"] == pytest.approx(2 * (0.001 + 0.01 + 0.1))


def test_merge_accepts_json_round_tripped_snapshots():
    """Over the wire, snapshot tuples become lists; merge must not care."""
    wire = json.loads(json.dumps(_worker_registry(2).snapshot()))
    merged = MetricsRegistry().merge(wire, labels={"worker": "2"})
    snap = merged.snapshot()
    hist = snap["repro_latency_seconds"]["series"][0]["value"]
    assert hist["count"] == 3
    assert snap["repro_queue_depth"]["series"][0]["value"] == 2.0


def test_merged_histograms_bucket_add_and_track_max():
    a = LatencyHistogram()
    b = LatencyHistogram()
    for value in (0.002, 0.02):
        a.record(value)
    b.record(1.5)
    registry_a = MetricsRegistry()
    registry_a.register("repro_h_seconds", a)
    registry_b = MetricsRegistry()
    registry_b.register("repro_h_seconds", b)
    merged = MetricsRegistry()
    merged.merge(registry_a.snapshot())
    merged.merge(registry_b.snapshot())
    snap = merged.snapshot()["repro_h_seconds"]["series"][0]["value"]
    assert snap["count"] == 3
    assert snap["max"] == pytest.approx(1.5)
    assert snap["total"] == pytest.approx(0.002 + 0.02 + 1.5)


def test_merge_refuses_mismatched_histogram_bounds():
    coarse = MetricsRegistry()
    coarse.register("repro_h_seconds", LatencyHistogram((0.1, 1.0)))
    fine = MetricsRegistry()
    fine.register("repro_h_seconds", LatencyHistogram((0.01, 0.1, 1.0)))
    merged = MetricsRegistry().merge(coarse.snapshot())
    with pytest.raises(ValueError, match="bounds"):
        merged.merge(fine.snapshot())


def test_merge_refuses_to_overwrite_live_instruments():
    registry = MetricsRegistry()
    registry.counter("repro_live_total", help="live").inc(5)
    foreign = MetricsRegistry()
    foreign.counter("repro_live_total", help="live").inc(1)
    with pytest.raises(ValueError, match="live instrument"):
        registry.merge(foreign.snapshot())


def test_merge_refuses_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("repro_thing", help="as counter")
    foreign = MetricsRegistry()
    foreign.gauge("repro_thing", help="as gauge").set(1)
    with pytest.raises(ValueError, match="counter"):
        registry.merge(foreign.snapshot())


def test_merge_rejects_invalid_extra_labels():
    with pytest.raises(ValueError, match="label"):
        MetricsRegistry().merge({}, labels={"bad-label": "x"})


def test_merged_prometheus_rendering_round_trips():
    """The cluster /metricz?format=prometheus contract: a registry built
    purely from merged worker snapshots renders text the strict parser
    accepts, with per-worker series distinguishable by label."""
    merged = MetricsRegistry()
    for worker in range(3):
        merged.merge(
            json.loads(json.dumps(_worker_registry(worker).snapshot())),
            labels={"worker": str(worker)},
        )
    parsed = parse_prometheus(merged.render_prometheus())
    assert parsed["repro_requests_total"]["type"] == "counter"
    samples = parsed["repro_requests_total"]["samples"]
    workers_seen = {dict(labels)["worker"] for _, labels in samples}
    assert workers_seen == {"0", "1", "2"}
    hist_samples = parsed["repro_latency_seconds"]["samples"]
    counts = [
        value
        for (name, _), value in hist_samples.items()
        if name == "repro_latency_seconds_count"
    ]
    assert counts == [3.0, 3.0, 3.0]
