"""Tests for the plaintext VFL trainer and its coalition semantics."""

import numpy as np
import pytest

from repro.data import build_vfl_federation, iris_like
from repro.metrics import CostLedger
from repro.nn import LRSchedule
from repro.vfl import VFLTrainer


class TestTraining:
    def test_loss_decreases(self, vfl_result):
        curve = vfl_result.log.val_loss_curve()
        assert curve[-1] < curve[0]

    def test_theta_zero_init(self, vfl_result):
        np.testing.assert_allclose(vfl_result.log.records[0].theta_before, 0.0)

    def test_final_theta_consistency(self, vfl_result):
        np.testing.assert_allclose(
            vfl_result.log.final_theta, vfl_result.theta, atol=1e-12
        )

    def test_gradient_is_models_gradient(self, vfl_split, vfl_trainer, vfl_result):
        record = vfl_result.log.records[0]
        expected = vfl_trainer.model.gradient(
            record.theta_before, vfl_split.train.X, vfl_split.train.y
        )
        np.testing.assert_allclose(record.train_gradient, expected, atol=1e-12)

    def test_logistic_task(self):
        ds = iris_like(seed=0).standardized()
        split = build_vfl_federation(ds, 4, seed=0)
        trainer = VFLTrainer("binary", split.feature_blocks, 30, LRSchedule(0.5))
        result = trainer.train(split.train, split.validation, track_losses=True)
        curve = result.log.val_loss_curve()
        assert curve[-1] < curve[0]
        assert trainer.model.score(result.theta, split.validation.X, split.validation.y) > 0.6


class TestBlocks:
    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            VFLTrainer("regression", [np.array([0, 1]), np.array([1, 2])], 5, LRSchedule(0.1))

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError, match="no features"):
            VFLTrainer("regression", [np.array([0]), np.array([], dtype=int)], 5, LRSchedule(0.1))

    def test_party_mask(self, vfl_trainer):
        mask = vfl_trainer.party_mask([0, 2])
        blocks = vfl_trainer.feature_blocks
        for j in blocks[0]:
            assert mask[j]
        for j in blocks[1]:
            assert not mask[j]


class TestCoalitions:
    def test_removed_party_block_stays_zero(self, vfl_split, vfl_trainer):
        result = vfl_trainer.train(
            vfl_split.train, vfl_split.validation, parties=[0, 1, 3]
        )
        for excluded in (2, 4):
            block = vfl_split.feature_blocks[excluded]
            np.testing.assert_allclose(result.theta[block], 0.0)

    def test_removal_equals_feature_deletion(self, vfl_split):
        """Training a coalition must equal training on only its columns.

        This is the paper's Sec. II-C2 equivalence: with θ_0 = 0 the removed
        party's output is identically zero.
        """
        parties = [0, 2]
        trainer = VFLTrainer(
            "regression", vfl_split.feature_blocks, 15, LRSchedule(0.1)
        )
        res_masked = trainer.train(vfl_split.train, vfl_split.validation, parties=parties)

        cols = np.concatenate([vfl_split.feature_blocks[i] for i in parties])
        cols = np.sort(cols)
        sub_blocks = []
        for i in parties:
            sub_blocks.append(
                np.array([np.searchsorted(cols, c) for c in vfl_split.feature_blocks[i]])
            )
        sub_train = vfl_split.train.feature_slice(cols)
        sub_val = vfl_split.validation.feature_slice(cols)
        sub_trainer = VFLTrainer("regression", sub_blocks, 15, LRSchedule(0.1))
        res_direct = sub_trainer.train(sub_train, sub_val)

        np.testing.assert_allclose(res_masked.theta[cols], res_direct.theta, atol=1e-10)

    def test_empty_coalition_rejected(self, vfl_split, vfl_trainer):
        with pytest.raises(ValueError, match="at least one"):
            vfl_trainer.train(vfl_split.train, vfl_split.validation, parties=[])

    def test_unknown_party_rejected(self, vfl_split, vfl_trainer):
        with pytest.raises(ValueError, match="unknown party"):
            vfl_trainer.train(vfl_split.train, vfl_split.validation, parties=[0, 9])


class TestLedger:
    def test_bytes_recorded(self, vfl_split):
        trainer = VFLTrainer("regression", vfl_split.feature_blocks, 3, LRSchedule(0.1))
        ledger = CostLedger()
        trainer.train(vfl_split.train, vfl_split.validation, ledger=ledger)
        m = len(vfl_split.train)
        expected_up = 3 * trainer.n_parties * m * 8
        assert ledger.comm_bytes["party->coordinator"] == expected_up
        d = vfl_split.train.X.shape[1]
        assert ledger.comm_bytes["coordinator->party"] == 3 * d * 8


class TestDeterminism:
    def test_same_run_same_theta(self, vfl_split):
        trainer = VFLTrainer("regression", vfl_split.feature_blocks, 5, LRSchedule(0.1))
        a = trainer.train(vfl_split.train, vfl_split.validation)
        b = trainer.train(vfl_split.train, vfl_split.validation)
        np.testing.assert_array_equal(a.theta, b.theta)
