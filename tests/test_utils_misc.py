"""Tests for repro.utils.timer and repro.utils.validation."""

import time

import numpy as np
import pytest

from repro.utils.timer import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_matching_lengths,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability_vector,
)


class TestStopwatch:
    def test_initially_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_accumulates(self):
        sw = Stopwatch()
        with sw.running():
            time.sleep(0.01)
        first = sw.elapsed
        assert first >= 0.01
        with sw.running():
            time.sleep(0.01)
        assert sw.elapsed >= first + 0.01

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw.running():
            pass
        sw.reset()
        assert sw.elapsed == 0.0

    def test_elapsed_while_running(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.005)
        assert sw.elapsed > 0.0
        sw.stop()

    def test_exception_inside_context_still_stops(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError, match="boom"):
            with sw.running():
                raise RuntimeError("boom")
        # Can start again: the window was closed.
        with sw.running():
            pass

    def test_uses_perf_counter_not_wall_clock(self, monkeypatch):
        """A wall-clock jump (NTP stepping time.time backwards) must not
        corrupt measurements — the stopwatch reads perf_counter only."""
        wall = iter([1000.0, 500.0, 0.0])  # time.time going backwards
        monkeypatch.setattr(time, "time", lambda: next(wall, 0.0))
        sw = Stopwatch()
        with sw.running():
            time.sleep(0.002)
        assert sw.elapsed >= 0.002  # unaffected by the rogue wall clock

    def test_implementation_never_calls_wall_clock(self):
        import inspect

        assert "time.time(" not in inspect.getsource(Stopwatch)
        assert "perf_counter" in inspect.getsource(Stopwatch)

    def test_elapsed_is_monotonic_across_reads(self):
        sw = Stopwatch()
        sw.start()
        reads = [sw.elapsed for _ in range(50)]
        sw.stop()
        assert all(b >= a for a, b in zip(reads, reads[1:]))


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_numpy_int(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")


class TestCheckNonNegativeInt:
    def test_zero_ok(self):
        assert check_non_negative_int(0, "x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f", inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "f")


class TestCheckPositiveFloat:
    def test_accepts(self):
        assert check_positive_float(0.5, "x") == 0.5

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            check_positive_float(0.0, "x")

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_positive_float(float("nan"), "x")

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            check_positive_float(float("inf"), "x")


class TestCheckProbabilityVector:
    def test_accepts_uniform(self):
        v = check_probability_vector(np.full(4, 0.25), "w")
        assert v.dtype == np.float64

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([1.5, -0.5]), "w")

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([0.5, 0.4]), "w")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.ones((2, 2)) / 4, "w")


class TestCheckMatchingLengths:
    def test_match(self):
        check_matching_lengths("a", [1, 2], "b", [3, 4])

    def test_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            check_matching_lengths("a", [1], "b", [2, 3])
