"""Tests for participant selection policies."""

import numpy as np
import pytest

from repro.core import ContributionReport
from repro.core.selection import (
    SelectionResult,
    flag_low_quality,
    select_covering_fraction,
    select_top_k,
    select_under_budget,
)


def make_report(totals, ids=None):
    totals = np.asarray(totals, dtype=np.float64)
    if ids is None:
        ids = list(range(len(totals)))
    return ContributionReport(method="test", participant_ids=ids, totals=totals)


class TestTopK:
    def test_picks_highest(self):
        result = select_top_k(make_report([0.1, 0.9, 0.5, 0.7]), 2)
        assert result.selected == [1, 3]

    def test_contribution_sum(self):
        result = select_top_k(make_report([0.1, 0.9, 0.5]), 2)
        assert result.total_contribution == pytest.approx(1.4)

    def test_k_equals_n(self):
        result = select_top_k(make_report([1.0, 2.0]), 2)
        assert result.selected == [0, 1]

    def test_k_too_large(self):
        with pytest.raises(ValueError, match="exceeds"):
            select_top_k(make_report([1.0]), 2)

    def test_respects_participant_ids(self):
        result = select_top_k(make_report([0.1, 0.9], ids=[7, 3]), 1)
        assert result.selected == [3]

    def test_contains(self):
        result = select_top_k(make_report([0.1, 0.9]), 1)
        assert 1 in result
        assert 0 not in result


class TestUnderBudget:
    def test_greedy_density(self):
        # Participant 1 has best value/cost; 0 second.
        report = make_report([4.0, 3.0, 1.0])
        costs = np.array([4.0, 1.0, 1.0])
        result = select_under_budget(report, costs, budget=2.0)
        assert result.selected == [1, 2]

    def test_budget_respected(self):
        report = make_report([5.0, 4.0, 3.0])
        result = select_under_budget(report, np.ones(3), budget=2.0)
        assert result.total_cost <= 2.0
        assert len(result.selected) == 2

    def test_negative_contributors_never_selected(self):
        report = make_report([-1.0, 2.0, -5.0])
        result = select_under_budget(report, np.ones(3), budget=10.0)
        assert result.selected == [1]

    def test_skips_unaffordable_but_continues(self):
        report = make_report([10.0, 2.0])
        costs = np.array([100.0, 1.0])
        result = select_under_budget(report, costs, budget=5.0)
        assert result.selected == [1]

    def test_bad_costs(self):
        with pytest.raises(ValueError, match="positive"):
            select_under_budget(make_report([1.0]), np.array([0.0]), 1.0)

    def test_bad_budget(self):
        with pytest.raises(ValueError, match="budget"):
            select_under_budget(make_report([1.0]), np.ones(1), 0.0)

    def test_cost_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            select_under_budget(make_report([1.0, 2.0]), np.ones(3), 1.0)


class TestCoveringFraction:
    def test_covers_target(self):
        report = make_report([5.0, 3.0, 1.0, 1.0])
        result = select_covering_fraction(report, 0.8)
        assert result.total_contribution >= 0.8 * 10.0
        assert result.selected == [0, 1]

    def test_full_fraction_selects_all_positive(self):
        report = make_report([5.0, -1.0, 3.0])
        result = select_covering_fraction(report, 1.0)
        assert result.selected == [0, 2]

    def test_all_negative(self):
        result = select_covering_fraction(make_report([-1.0, -2.0]), 0.5)
        assert result.selected == []

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            select_covering_fraction(make_report([1.0]), 0.0)


class TestFlagLowQuality:
    def test_flags_clear_outlier(self):
        report = make_report([1.0, 1.01, 0.99, 1.02, -5.0])
        assert flag_low_quality(report) == [4]

    def test_no_flag_on_uniform(self):
        assert flag_low_quality(make_report([1.0, 1.0, 1.0])) == []

    def test_high_outliers_not_flagged(self):
        report = make_report([1.0, 1.01, 0.99, 50.0])
        assert flag_low_quality(report) == []

    def test_threshold_controls_sensitivity(self):
        report = make_report([1.0, 1.1, 0.9, 0.2])
        loose = flag_low_quality(report, threshold=1.5)
        strict = flag_low_quality(report, threshold=10.0)
        assert 3 in loose
        assert strict == []

    def test_result_type(self):
        result = select_top_k(make_report([1.0, 2.0]), 1)
        assert isinstance(result, SelectionResult)
