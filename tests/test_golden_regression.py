"""Golden-number regression tests.

Fixed-seed end-to-end pipelines whose key metrics are pinned (with small
tolerances).  A legitimate algorithm change may move these numbers — when
it does, verify the shape criteria in EXPERIMENTS.md still hold and update
the goldens deliberately; an *unintentional* drift is a regression in the
estimator, the simulator or the data generators.
"""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, estimate_vfl_first_order
from repro.experiments.workloads import build_hfl_workload, build_vfl_workload
from repro.metrics import pearson_correlation
from repro.shapley import HFLRetrainUtility, VFLRetrainUtility, exact_shapley


class TestHFLGolden:
    @pytest.fixture(scope="class")
    def pipeline(self):
        workload = build_hfl_workload(
            "mnist", n_parties=5, n_mislabeled=1, n_noniid=1, epochs=10, seed=0
        )
        digfl = estimate_hfl_resource_saving(
            workload.result.log,
            workload.federation.validation,
            workload.model_factory,
        )
        utility = HFLRetrainUtility(
            workload.trainer,
            workload.federation.locals,
            workload.federation.validation,
            init_theta=workload.result.log.initial_theta,
        )
        exact = exact_shapley(utility)
        return workload, digfl, exact

    def test_training_accuracy(self, pipeline):
        workload, _, _ = pipeline
        acc = workload.result.log.records[-1].val_accuracy
        assert acc == pytest.approx(0.7417, abs=0.02)

    def test_digfl_totals(self, pipeline):
        _, digfl, _ = pipeline
        expected = [0.4027, 0.3956, 0.1348, 0.3874, 0.3733]
        np.testing.assert_allclose(digfl.totals, expected, atol=0.02)

    def test_exact_totals(self, pipeline):
        _, _, exact = pipeline
        expected = [0.4577, 0.4547, 0.1015, 0.4232, 0.1779]
        np.testing.assert_allclose(exact.totals, expected, atol=0.02)

    def test_pcc(self, pipeline):
        _, digfl, exact = pipeline
        pcc = pearson_correlation(digfl.totals, exact.totals)
        assert pcc == pytest.approx(0.785, abs=0.05)

    def test_qualities_fixed(self, pipeline):
        workload, _, _ = pipeline
        assert workload.qualities == ["clean", "clean", "mislabeled", "clean", "noniid"]


class TestVFLGolden:
    @pytest.fixture(scope="class")
    def pipeline(self):
        workload = build_vfl_workload("iris", epochs=30, seed=0)
        digfl = estimate_vfl_first_order(workload.result.log)
        utility = VFLRetrainUtility(
            workload.trainer, workload.split.train, workload.split.validation
        )
        exact = exact_shapley(utility)
        return workload, digfl, exact

    def test_pcc(self, pipeline):
        _, digfl, exact = pipeline
        pcc = pearson_correlation(digfl.totals, exact.totals)
        assert pcc > 0.95  # Table III iris row: 0.981

    def test_party_count_matches_table3(self, pipeline):
        workload, _, _ = pipeline
        assert workload.split.n_parties == 4

    def test_best_party_agreement(self, pipeline):
        _, digfl, exact = pipeline
        assert int(np.argmax(digfl.totals)) == int(np.argmax(exact.totals))
