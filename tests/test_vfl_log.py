"""Invariants of the VFL training log container."""

import numpy as np
import pytest

from repro.vfl.log import VFLEpochRecord, VFLTrainingLog


def make_log(weights_by_epoch, lr=0.1, d=6):
    blocks = [np.array([0, 1]), np.array([2, 3]), np.array([4, 5])]
    rng = np.random.default_rng(0)
    log = VFLTrainingLog(feature_blocks=blocks, active_parties=[0, 1, 2])
    theta = np.zeros(d)
    for t, weights in enumerate(weights_by_epoch, start=1):
        grad = rng.normal(size=d)
        log.records.append(
            VFLEpochRecord(
                epoch=t,
                lr=lr,
                theta_before=theta.copy(),
                train_gradient=grad,
                val_gradient=rng.normal(size=d),
                weights=np.asarray(weights, dtype=np.float64),
            )
        )
        update = np.zeros(d)
        for party, block in enumerate(blocks):
            update[block] = weights[party] * grad[block]
        theta = theta - lr * update
    return log, theta


class TestFinalTheta:
    def test_uniform_weights(self):
        log, theta = make_log([np.ones(3)] * 4)
        np.testing.assert_allclose(log.final_theta, theta, atol=1e-12)

    def test_nonuniform_weights(self):
        """final_theta must honour the per-party weights of the last epoch."""
        weights = [np.array([1.0, 1.0, 1.0]), np.array([0.5, 2.0, 0.0])]
        log, theta = make_log(weights)
        np.testing.assert_allclose(log.final_theta, theta, atol=1e-12)

    def test_empty_log_raises(self):
        log = VFLTrainingLog(feature_blocks=[np.array([0])], active_parties=[0])
        with pytest.raises(ValueError):
            _ = log.final_theta


class TestAccessors:
    def test_counts(self):
        log, _ = make_log([np.ones(3)] * 3)
        assert log.n_parties == 3
        assert log.n_epochs == 3

    def test_val_loss_curve_nan_when_untracked(self):
        log, _ = make_log([np.ones(3)])
        assert np.isnan(log.val_loss_curve()).all()
