"""Fault injection: dropouts, stragglers, crash-retry, deadlines.

Covers the three layers separately — :class:`FaultInjector` sampling,
:class:`Scheduler` dispatch decisions, and the full
:class:`FederatedRuntime` — and ends with the paper-level property: DIG-FL
still ranks a mislabeled party last when the federation runs with
dropouts, stragglers and a round deadline.
"""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, estimate_vfl_first_order
from repro.data import build_hfl_federation, mnist_like
from repro.experiments.workloads import build_hfl_workload, build_vfl_workload
from repro.runtime import (
    EventLog,
    FaultInjector,
    FaultPlan,
    FederatedRuntime,
    NULL_PLAN,
    Outage,
    RuntimeConfig,
    Scheduler,
    SerialExecutor,
)
from repro.runtime import events as ev
from repro.runtime.faults import MS


class TestFaultPlan:
    def test_null_plan(self):
        assert NULL_PLAN.is_null()
        assert FaultPlan(straggler_ms=1.0).is_null() is False
        assert FaultPlan(dropout_rate=0.1).is_null() is False
        assert FaultPlan(crash_rate=0.1).is_null() is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_rate": -0.1},
            {"dropout_rate": 1.0},
            {"crash_rate": 1.5},
            {"straggler_ms": -1.0},
            {"backoff_ms": -1.0},
            {"base_ms": -1.0},
            {"max_retries": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)


class TestOutage:
    def test_covers_inclusive_1_indexed_span(self):
        outage = Outage(party=2, start_round=3, end_round=5)
        assert not outage.covers(2, 2)
        assert all(outage.covers(r, 2) for r in (3, 4, 5))
        assert not outage.covers(6, 2)
        assert not outage.covers(4, 1)  # other parties unaffected

    def test_open_ended_outage(self):
        outage = Outage(party=0, start_round=4)
        assert not outage.covers(3, 0)
        assert outage.covers(4, 0) and outage.covers(1000, 0)

    def test_plan_accounting(self):
        plan = FaultPlan(outages=(Outage(1, 2, 3),))
        assert plan.is_null() is False
        assert not plan.in_outage(1, 1)
        assert plan.in_outage(2, 1) and plan.in_outage(3, 1)
        assert not plan.in_outage(2, 0)
        assert FaultPlan(outages=()).is_null()

    def test_outages_coerced_to_tuple(self):
        plan = FaultPlan(outages=[Outage(0, 1)])
        assert isinstance(plan.outages, tuple)
        with pytest.raises(TypeError, match="Outage"):
            FaultPlan(outages=("party 0 down",))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"party": -1, "start_round": 1},
            {"party": 0, "start_round": -1},
            {"party": 0, "start_round": 3, "end_round": 2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Outage(**kwargs)

    def test_fate_drops_without_perturbing_other_draws(self):
        # An outage must not consume rng draws: every non-outage fate is
        # identical to the same plan without the outage.
        base = FaultPlan(dropout_rate=0.3, straggler_ms=20.0, seed=5)
        with_outage = FaultPlan(
            dropout_rate=0.3, straggler_ms=20.0, seed=5,
            outages=(Outage(party=1, start_round=2, end_round=3),),
        )
        a, b = FaultInjector(base), FaultInjector(with_outage)
        for round in range(1, 6):
            for party in range(4):
                fate = b.fate(round, party)
                if with_outage.in_outage(round, party):
                    assert fate.dropped and fate.attempts == 0
                    assert fate.duration_s == 0.0
                else:
                    assert fate == a.fate(round, party)

    def test_outage_only_plan_drops_exactly_the_span(self):
        plan = FaultPlan(outages=(Outage(party=0, start_round=2),))
        injector = FaultInjector(plan)
        for round in range(1, 5):
            for party in range(3):
                fate = injector.fate(round, party)
                expected_drop = party == 0 and round >= 2
                assert fate.dropped is expected_drop


class TestFaultInjector:
    def test_null_fate_is_base_duration(self):
        fate = FaultInjector(NULL_PLAN).fate(3, 1)
        assert fate.completes and fate.attempts == 1 and fate.crashes == 0
        assert fate.duration_s == NULL_PLAN.base_ms * MS

    def test_fate_is_deterministic(self):
        plan = FaultPlan(dropout_rate=0.3, straggler_ms=25.0, crash_rate=0.2, seed=7)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for round in range(1, 6):
            for party in range(4):
                assert a.fate(round, party) == b.fate(round, party)
                assert a.fate(round, party) == a.fate(round, party)

    def test_fates_vary_across_rounds_and_parties(self):
        injector = FaultInjector(FaultPlan(straggler_ms=50.0, seed=0))
        durations = {
            injector.fate(r, i).duration_s for r in range(1, 5) for i in range(4)
        }
        assert len(durations) == 16  # continuous delays never collide

    def test_dropout_rate_is_respected(self):
        injector = FaultInjector(FaultPlan(dropout_rate=0.4, seed=0))
        fates = [injector.fate(r, i) for r in range(1, 101) for i in range(5)]
        dropped = sum(f.dropped for f in fates)
        assert 0.3 < dropped / len(fates) < 0.5
        assert all(f.attempts == 0 and f.duration_s == 0.0
                   for f in fates if f.dropped)

    def test_straggler_adds_exponential_delay(self):
        plan = FaultPlan(straggler_ms=40.0, seed=1)
        injector = FaultInjector(plan)
        delays = [
            injector.fate(r, i).duration_s - plan.base_ms * MS
            for r in range(1, 51)
            for i in range(4)
        ]
        assert all(d > 0.0 for d in delays)
        assert np.mean(delays) == pytest.approx(40.0 * MS, rel=0.25)

    def test_crash_then_retry_charges_backoff(self):
        plan = FaultPlan(crash_rate=0.5, max_retries=3, backoff_ms=10.0, seed=2)
        injector = FaultInjector(plan)
        fates = [injector.fate(r, i) for r in range(1, 40) for i in range(4)]
        retried = [f for f in fates if f.completes and f.crashes > 0]
        assert retried, "expected at least one crash-then-success fate"
        for fate in retried:
            assert fate.attempts == fate.crashes + 1
            backoff = sum(
                plan.backoff_ms * MS * 2 ** (c - 1)
                for c in range(1, fate.crashes + 1)
            )
            expected = fate.attempts * plan.base_ms * MS + backoff
            assert fate.duration_s == pytest.approx(expected)

    def test_retries_exhausted_gives_up(self):
        plan = FaultPlan(crash_rate=0.9, max_retries=2, seed=3)
        injector = FaultInjector(plan)
        fates = [injector.fate(r, i) for r in range(1, 30) for i in range(4)]
        exhausted = [f for f in fates if f.gave_up]
        assert exhausted, "expected at least one retries-exhausted fate"
        for fate in exhausted:
            assert fate.dropped and not fate.completes
            assert fate.crashes == fate.attempts == plan.max_retries + 1


class TestScheduler:
    def _tasks(self, n, calls):
        def make(i):
            def task():
                calls.append(i)
                return i * 10

            return task

        return [(i, make(i)) for i in range(n)]

    def test_no_fault_round_runs_everyone(self):
        calls = []
        scheduler = Scheduler(SerialExecutor())
        outcome = scheduler.run_round(1, self._tasks(4, calls))
        assert calls == [0, 1, 2, 3]
        assert outcome.arrived_parties == [0, 1, 2, 3]
        assert [o.result for o in outcome.outcomes] == [0, 10, 20, 30]
        assert outcome.duration_s == NULL_PLAN.base_ms * MS

    def test_empty_round_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(SerialExecutor()).run_round(1, [])

    def test_dropped_tasks_are_never_executed(self):
        calls = []
        plan = FaultPlan(dropout_rate=0.5, seed=0)
        scheduler = Scheduler(SerialExecutor(), FaultInjector(plan))
        outcome = scheduler.run_round(1, self._tasks(8, calls))
        dropped = [o.party for o in outcome.outcomes if o.status == "dropout"]
        assert dropped, "seed chosen so at least one party drops"
        assert set(calls) == set(range(8)) - set(dropped)
        for o in outcome.outcomes:
            if o.status == "dropout":
                assert o.result is None and o.finished_at is None

    def test_straggler_past_deadline_times_out_unexecuted(self):
        calls = []
        # base_ms alone exceeds the deadline: deterministic all-timeout round.
        plan = FaultPlan(straggler_ms=200.0, base_ms=100.0, seed=0)
        scheduler = Scheduler(
            SerialExecutor(), FaultInjector(plan), round_deadline_ms=50.0
        )
        outcome = scheduler.run_round(1, self._tasks(3, calls))
        assert calls == []  # the server discarded them, so we never computed
        assert [o.status for o in outcome.outcomes] == ["timeout"] * 3
        assert outcome.duration_s == pytest.approx(50.0 * MS)

    def test_deadline_keeps_fast_parties(self):
        calls = []
        plan = FaultPlan(straggler_ms=60.0, seed=4)
        scheduler = Scheduler(
            SerialExecutor(), FaultInjector(plan), round_deadline_ms=60.0
        )
        outcome = scheduler.run_round(1, self._tasks(8, calls))
        statuses = {o.status for o in outcome.outcomes}
        assert statuses == {"completed", "timeout"}  # seed gives a mixed round
        assert sorted(calls) == outcome.arrived_parties
        assert outcome.ended_at == pytest.approx(60.0 * MS)

    def test_crashed_party_emits_crash_and_retry_events(self):
        log = EventLog()
        plan = FaultPlan(crash_rate=0.6, max_retries=2, seed=5)
        scheduler = Scheduler(
            SerialExecutor(), FaultInjector(plan), event_log=log
        )
        for round in range(1, 6):
            scheduler.run_round(round, self._tasks(4, []))
        summary = log.summary()
        assert summary["crashes"] > 0
        assert summary["retries"] > 0
        assert summary["retries"] <= summary["crashes"]
        # Every completed task was dispatched; nothing completes after a give-up.
        assert summary["completed"] <= summary["dispatched"]

    def test_clock_advances_across_rounds(self):
        scheduler = Scheduler(SerialExecutor())
        first = scheduler.run_round(1, self._tasks(2, []))
        second = scheduler.run_round(2, self._tasks(2, []))
        assert second.started_at == first.ended_at
        assert scheduler.clock.now == second.ended_at

    def test_round_events_bracket_the_round(self):
        log = EventLog()
        scheduler = Scheduler(SerialExecutor(), event_log=log)
        scheduler.run_round(1, self._tasks(3, []))
        kinds = [e.kind for e in log.for_round(1)]
        assert kinds[0] == ev.ROUND_BEGIN and kinds[-1] == ev.ROUND_END
        assert log.n_rounds == 1
        assert log.round_duration(1) == pytest.approx(NULL_PLAN.base_ms * MS)


class TestRuntimeUnderFaults:
    @pytest.fixture(scope="class")
    def federation(self):
        return build_hfl_federation(
            mnist_like(400, seed=0), n_parties=4, n_mislabeled=1, seed=0
        )

    def _run(self, federation, plan, deadline=None, executor="serial", workers=1):
        from repro.hfl import HFLTrainer
        from repro.nn import LRSchedule, make_hfl_model

        trainer = HFLTrainer(
            lambda: make_hfl_model("mnist", seed=0),
            epochs=6,
            lr_schedule=LRSchedule(0.5),
        )
        runtime = FederatedRuntime(
            RuntimeConfig(
                executor=executor,
                workers=workers,
                faults=plan,
                round_deadline_ms=deadline,
            )
        )
        result = runtime.run_hfl(trainer, federation.locals, federation.validation)
        return result, runtime

    def test_dropout_zeroes_update_rows_and_renormalises(self, federation):
        result, runtime = self._run(
            federation, FaultPlan(dropout_rate=0.4, seed=1)
        )
        masked = [r for r in result.log.records if r.participation is not None]
        assert masked, "40% dropout over 6 rounds must mask some round"
        for record in masked:
            mask = record.participation
            absent = ~mask
            assert not record.local_updates[absent].any()
            assert record.weights[absent].sum() == 0.0
            if mask.any():
                assert record.weights.sum() == pytest.approx(1.0)
                np.testing.assert_allclose(
                    record.weights[mask], 1.0 / mask.sum()
                )
        assert runtime.event_log.summary()["dropouts"] > 0

    def test_deadline_discards_stragglers_end_to_end(self, federation):
        result, runtime = self._run(
            federation,
            FaultPlan(straggler_ms=50.0, seed=2),
            deadline=60.0,
        )
        summary = runtime.event_log.summary()
        assert summary["timeouts"] > 0
        assert summary["completed"] < summary["dispatched"]
        masked = [r for r in result.log.records if r.participation is not None]
        assert masked
        # Rounds with a miss close exactly at the deadline.
        timed_out_rounds = {e.round for e in runtime.event_log.of_kind(ev.TIMEOUT)}
        for round in timed_out_rounds:
            assert runtime.event_log.round_duration(round) == pytest.approx(
                60.0 * MS
            )

    def test_crash_retry_end_to_end(self, federation):
        _, runtime = self._run(
            federation,
            FaultPlan(crash_rate=0.3, max_retries=3, backoff_ms=5.0, seed=3),
        )
        summary = runtime.event_log.summary()
        assert summary["crashes"] > 0 and summary["retries"] > 0
        # Retries make the run survivable: most tasks still complete.
        assert summary["completed"] > summary["dispatched"] * 0.7

    def test_faulty_run_differs_from_clean_run(self, federation):
        clean, _ = self._run(federation, FaultPlan())
        faulty, _ = self._run(federation, FaultPlan(dropout_rate=0.4, seed=1))
        assert not np.array_equal(clean.final_theta, faulty.final_theta)

    def test_same_plan_replays_identically(self, federation):
        plan = FaultPlan(dropout_rate=0.3, straggler_ms=10.0, seed=9)
        a, _ = self._run(federation, plan, deadline=40.0)
        b, _ = self._run(federation, plan, deadline=40.0, executor="threads",
                         workers=4)
        np.testing.assert_array_equal(a.final_theta, b.final_theta)
        for ra, rb in zip(a.log.records, b.log.records):
            np.testing.assert_array_equal(
                ra.participation_mask(), rb.participation_mask()
            )


class TestPaperPropertyUnderFaults:
    def test_hfl_mislabeled_party_ranked_last_under_faults(self):
        workload = build_hfl_workload(
            "mnist",
            n_parties=5,
            n_mislabeled=1,
            epochs=10,
            seed=0,
            runtime=RuntimeConfig(
                executor="threads",
                workers=4,
                faults=FaultPlan(dropout_rate=0.2, straggler_ms=30.0, seed=0),
                round_deadline_ms=80.0,
            ),
        )
        summary = workload.runtime.event_log.summary()
        assert summary["dropouts"] > 0  # the faults actually fired
        report = estimate_hfl_resource_saving(
            workload.result.log,
            workload.federation.validation,
            workload.model_factory,
        )
        mislabeled = workload.federation.qualities.index("mislabeled")
        assert int(np.argmin(report.totals)) == mislabeled

    def test_vfl_estimator_runs_under_dropouts(self):
        workload = build_vfl_workload(
            "iris",
            epochs=15,
            seed=0,
            runtime=RuntimeConfig(faults=FaultPlan(dropout_rate=0.3, seed=1)),
        )
        masked = [
            r for r in workload.result.log.records if r.participation is not None
        ]
        assert masked
        report = estimate_vfl_first_order(workload.result.log)
        assert np.isfinite(report.totals).all()
