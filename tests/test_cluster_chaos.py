"""Cluster chaos: SIGKILL a shard worker mid-ingest, demand bit-identity.

The whole point of per-shard WALs is that worker death loses *nothing*
acknowledged: the supervisor respawns the shard and the replacement
replays its WAL, so every contribution it serves afterwards is
``np.array_equal`` to the batch estimator over the exact replayed
prefix.  This test runs the real thing — spawn-context worker processes,
a router proxying over sockets, ``SIGKILL`` dead in the middle of a
slowed-down ingest — and holds the revived shard to that equality.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import estimate_vfl_first_order
from repro.io import save_vfl_training_log
from repro.serve import ClusterRouter, ClusterSupervisor
from repro.vfl.log import VFLTrainingLog

pytestmark = pytest.mark.timeout(300)


@pytest.fixture(scope="module")
def vfl_log(vfl_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster_chaos") / "vfl_run.npz"
    save_vfl_training_log(vfl_result.log, path)
    return {"path": str(path), "log": vfl_result.log}


def _get(port, path, timeout=30):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return json.loads(response.read())


def _wait_healthy(port, deadline_s=120):
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            health = _get(port, "/healthz", timeout=5)
            if health["status"] == "ok":
                return health
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            pass
        assert time.monotonic() < deadline, "cluster never became healthy"
        time.sleep(0.2)


def test_sigkill_mid_ingest_replays_bit_identical(vfl_log, tmp_path):
    """Kill the owning worker while epochs are streaming in; the respawn
    must serve exactly the batch answer for whatever prefix the WAL
    acknowledged — and the cluster must stay up throughout."""
    supervisor = ClusterSupervisor(
        2,
        wal_root=tmp_path / "wals",
        probe_interval_s=0.2,
        probe_reset_s=1.0,
        chaos_ingest_ms=200.0,  # ~5s for 25 epochs: a wide kill window
    )
    supervisor.start()
    router = ClusterRouter(("127.0.0.1", 0), supervisor)
    router.serve_background()
    run_id = "vfl-chaos"
    try:
        # Stream the registration in the background: with the slowed
        # ingest it keeps the owner busy for seconds.
        def register():
            request = urllib.request.Request(
                f"http://127.0.0.1:{router.port}/runs",
                data=json.dumps(
                    {"kind": "vfl", "log_path": vfl_log["path"],
                     "run_id": run_id}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                urllib.request.urlopen(request, timeout=120).read()
            except (urllib.error.URLError, ConnectionError):
                pass  # the kill tears this request; that is the test

        ingest_thread = threading.Thread(target=register, daemon=True)
        ingest_thread.start()

        # Wait until the owner's WAL has acknowledged the registration
        # plus a few epochs — then the kill provably lands mid-ingest.
        # (Polling /runs cannot see this: the run lock is held for the
        # whole batched ingest, so HTTP observers block until it ends.
        # The WAL file is the ground truth, appended record by record.)
        owner = supervisor.ring.shard_for(run_id)
        wal_path = os.path.join(supervisor.specs[owner].wal_dir, "serve.wal")
        deadline = time.monotonic() + 60
        while True:
            try:
                with open(wal_path, "rb") as fh:
                    acknowledged = sum(1 for _ in fh)
            except FileNotFoundError:
                acknowledged = 0
            if 3 <= acknowledged < 20:  # register + >=2 of the 25 ingests
                break
            assert time.monotonic() < deadline, (
                f"WAL never reached a mid-ingest state ({acknowledged} lines)"
            )
            time.sleep(0.02)

        cluster_info = _get(router.port, f"/cluster?key={run_id}")
        assert cluster_info["shard"] == str(owner)
        victim_pid = cluster_info["shards"][str(owner)]["pid"]
        os.kill(victim_pid, signal.SIGKILL)
        ingest_thread.join(timeout=120)

        # Failover: the supervisor respawns the shard, the WAL replays.
        _wait_healthy(router.port)
        info = _get(router.port, "/cluster")["shards"][str(owner)]
        assert info["pid"] != victim_pid
        assert info["respawns"] >= 1

        # The revived shard serves the run at some WAL-acknowledged
        # prefix — and bit-identical to the batch estimator over it.
        runs = {
            run["run_id"]: run for run in _get(router.port, "/runs")["runs"]
        }
        assert run_id in runs, "run lost by failover"
        replayed = runs[run_id]["epochs"]
        assert 1 <= replayed <= 25
        served = _get(router.port, f"/runs/{run_id}/contributions")
        full = vfl_log["log"]
        batch = estimate_vfl_first_order(
            VFLTrainingLog(
                full.feature_blocks, full.active_parties,
                full.records[:replayed],
            )
        )
        assert np.array_equal(np.asarray(served["totals"]), batch.totals)
        assert served["participant_ids"] == list(batch.participant_ids)

        # The cluster is whole again: new registrations land anywhere.
        post = urllib.request.Request(
            f"http://127.0.0.1:{router.port}/runs",
            data=json.dumps(
                {"kind": "vfl", "log_path": vfl_log["path"],
                 "run_id": "vfl-after"}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(post, timeout=120) as response:
            assert response.status == 201
    finally:
        router.shutdown()
        router.server_close()
        supervisor.stop()
    for proc in supervisor._procs.values():
        assert not proc.is_alive()
