"""Tests for the synthetic image and tabular dataset generators."""

import numpy as np
import pytest

from repro.data import (
    ALL_DATASETS,
    HFL_DATASETS,
    VFL_DATASETS,
    boston_like,
    cifar_like,
    get_dataset_info,
    iris_like,
    make_image_classification,
    make_tabular_classification,
    make_tabular_regression,
    mnist_like,
    motor_like,
    real_like,
)
from repro.models import LinearRegressionModel, LogisticRegressionModel


class TestImageGenerators:
    def test_mnist_shape(self):
        ds = mnist_like(64, seed=0)
        assert ds.X.shape == (64, 1, 10, 10)
        assert ds.num_classes == 10

    def test_cifar_shape(self):
        ds = cifar_like(32, seed=0)
        assert ds.X.shape == (32, 3, 8, 8)

    def test_motor_binary(self):
        ds = motor_like(32, seed=0)
        assert ds.num_classes == 2
        assert set(np.unique(ds.y)) <= {0, 1}

    def test_real_ten_classes(self):
        assert real_like(32, seed=0).num_classes == 10

    def test_deterministic(self):
        a = mnist_like(20, seed=3).X
        b = mnist_like(20, seed=3).X
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_data(self):
        assert not np.allclose(mnist_like(20, seed=1).X, mnist_like(20, seed=2).X)

    def test_labels_cover_range(self):
        ds = mnist_like(500, seed=0)
        assert set(np.unique(ds.y)) == set(range(10))

    def test_separability_ordering(self):
        """A linear probe should find MNIST-like easier than REAL-like."""

        def probe_accuracy(ds):
            X = ds.X.reshape(len(ds), -1)
            # One-vs-rest least-squares probe.
            onehot = np.eye(ds.num_classes)[ds.y]
            W, *_ = np.linalg.lstsq(X, onehot, rcond=None)
            return float(np.mean(np.argmax(X @ W, axis=1) == ds.y))

        easy = probe_accuracy(mnist_like(1500, seed=0))
        hard = probe_accuracy(real_like(1500, seed=0))
        assert easy > hard

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            make_image_classification("x", 0, (1, 4, 4), 2)


class TestTabularGenerators:
    def test_regression_shape(self):
        ds = boston_like(seed=0)
        assert ds.X.shape == (506, 13)
        assert ds.task == "regression"

    def test_classification_binary(self):
        ds = iris_like(seed=0)
        assert ds.task == "binary"
        assert set(np.unique(ds.y)) <= {0, 1}

    def test_regression_learnable(self):
        """A linear fit must explain most of the variance (linear ground truth)."""
        ds = make_tabular_regression("t", 400, 8, noise=0.2, seed=1)
        theta, *_ = np.linalg.lstsq(ds.X, ds.y, rcond=None)
        assert LinearRegressionModel().score(theta, ds.X, ds.y) > 0.8

    def test_classification_learnable(self):
        ds = make_tabular_classification("t", 600, 6, temperature=0.5, seed=1)
        model = LogisticRegressionModel()
        theta = np.zeros(6)
        for _ in range(300):
            theta -= 0.5 * model.gradient(theta, ds.X, ds.y)
        assert model.score(theta, ds.X, ds.y) > 0.8

    def test_features_standardised(self):
        ds = boston_like(seed=0)
        np.testing.assert_allclose(ds.X.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(ds.X.std(axis=0), 1.0, atol=1e-6)

    def test_heterogeneous_signal(self):
        """Coefficient magnitudes must differ strongly across features."""
        ds = make_tabular_regression("t", 2000, 10, noise=0.05, seed=2)
        theta, *_ = np.linalg.lstsq(ds.X, ds.y, rcond=None)
        mags = np.sort(np.abs(theta))
        assert mags[-1] / max(mags[0], 1e-9) > 3.0

    def test_deterministic(self):
        np.testing.assert_array_equal(boston_like(seed=9).X, boston_like(seed=9).X)


class TestRegistry:
    def test_counts_match_paper(self):
        assert len(HFL_DATASETS) == 4
        assert len(VFL_DATASETS) == 10
        assert len(ALL_DATASETS) == 14

    def test_lookup_by_name(self):
        assert get_dataset_info("mnist").key == "D_M"

    def test_lookup_by_paper_key(self):
        assert get_dataset_info("D_S").name == "seoul_bike"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_dataset_info("imagenet")

    def test_vfl_party_counts_match_table3(self):
        expected = {
            "boston": 13, "diabetes": 10, "wine_quality": 11, "seoul_bike": 14,
            "california": 8, "iris": 4, "wine": 13, "breast_cancer": 15,
            "credit_card": 11, "adult": 14,
        }
        for name, n in expected.items():
            assert VFL_DATASETS[name].vfl_parties == n

    def test_all_vfl_datasets_make(self):
        for name, info in VFL_DATASETS.items():
            ds = info.make(seed=0)
            assert len(ds) > 0, name
            assert ds.task in ("regression", "binary")

    def test_vfl_models_assigned(self):
        assert VFL_DATASETS["boston"].vfl_model == "linreg"
        assert VFL_DATASETS["adult"].vfl_model == "logreg"

    def test_party_count_not_exceeding_features(self):
        """Every Table III party count must fit the dataset's feature count."""
        for name, info in VFL_DATASETS.items():
            ds = info.make(seed=0)
            assert info.vfl_parties <= ds.X.shape[1], name
