"""Tests for the plotting-free rendering helpers."""

import numpy as np
import pytest

from repro.core import ContributionReport, from_per_epoch
from repro.render import (
    bar_chart,
    contribution_bars,
    per_epoch_sparklines,
    report_markdown,
    sparkline,
)


def sample_report():
    per_epoch = np.array([[0.5, -0.1, 0.2], [0.3, -0.2, 0.1]])
    return from_per_epoch("digfl", [0, 1, 2], per_epoch)


class TestBarChart:
    def test_contains_values_and_labels(self):
        out = bar_chart([1.0, -0.5], ["a", "b"])
        assert "a" in out and "b" in out
        assert "+1" in out and "-0.5" in out

    def test_negative_bars_left_of_axis(self):
        out = bar_chart([1.0, -1.0], ["p", "n"])
        pos_line, neg_line = out.splitlines()
        assert "█" in pos_line and "░" not in pos_line
        assert "░" in neg_line and "█" not in neg_line

    def test_zero_vector_safe(self):
        out = bar_chart([0.0, 0.0])
        assert "+0" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_label_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart([1.0], ["a", "b"])


class TestSparkline:
    def test_monotone_curve(self):
        out = sparkline([1.0, 2.0, 3.0, 4.0])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 4

    def test_constant_curve(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_downsampling(self):
        out = sparkline(np.linspace(0, 1, 200), width=20)
        assert len(out) <= 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestReportRendering:
    def test_contribution_bars(self):
        out = contribution_bars(sample_report(), qualities=["clean", "bad", "clean"])
        assert "p0 (clean)" in out
        assert "p1 (bad)" in out

    def test_contribution_bars_quality_mismatch(self):
        with pytest.raises(ValueError):
            contribution_bars(sample_report(), qualities=["clean"])

    def test_markdown_table(self):
        out = report_markdown(sample_report())
        assert out.startswith("**method:** `digfl`")
        assert "| participant | contribution | share |" in out
        assert out.count("\n|") >= 4  # header + divider + 3 rows

    def test_markdown_shares_sum_to_one(self):
        out = report_markdown(sample_report())
        shares = [
            float(line.split("|")[-2].strip().rstrip("%"))
            for line in out.splitlines()
            if line.startswith("| ") and "%" in line
        ]
        assert sum(shares) == pytest.approx(100.0, abs=0.3)

    def test_markdown_with_qualities(self):
        out = report_markdown(sample_report(), qualities=["a", "b", "c"])
        assert "| quality |" in out

    def test_per_epoch_sparklines(self):
        out = per_epoch_sparklines(sample_report())
        assert out.count("\n") == 2  # three participants

    def test_per_epoch_requires_matrix(self):
        report = ContributionReport(
            method="exact", participant_ids=[0], totals=np.array([1.0])
        )
        with pytest.raises(ValueError):
            per_epoch_sparklines(report)


class TestExperimentsMainOnly:
    def test_only_filter(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_file = tmp_path / "report.txt"
        code = main(["--only", "ablation-weighting", "--output", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "ablation-weighting-scheme" in text
        assert "hfl-vs-actual" not in text

    def test_unknown_only_rejected(self, tmp_path):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "nope", "--output", str(tmp_path / "r.txt")])
