"""Tests for TMC-Shapley, GT-Shapley, MR and IM."""

import numpy as np
import pytest

from repro.metrics import pearson_correlation
from repro.shapley import (
    CallableUtility,
    exact_shapley_values,
    gt_shapley,
    gt_shapley_values,
    im_scores,
    mr_shapley,
    tmc_shapley,
    tmc_shapley_values,
)

from tests.conftest import small_model_factory


def random_game(n, seed):
    rng = np.random.default_rng(seed)
    table = {frozenset(): 0.0}

    def fn(coalition):
        key = frozenset(coalition)
        if key not in table:
            # Supermodular-ish: value grows with size plus noise.
            table[key] = len(key) + 0.5 * float(rng.normal())
        return table[key]

    return CallableUtility(n, fn)


def additive_utility(values):
    values = np.asarray(values, dtype=np.float64)
    return CallableUtility(
        len(values), lambda s: float(sum(values[i] for i in s))
    )


class TestTMC:
    def test_exact_on_additive_game(self):
        """Permutation marginals of an additive game are constant, so TMC is
        exact with a single permutation and no truncation."""
        values = np.array([2.0, -1.0, 4.0, 0.5])
        est = tmc_shapley_values(
            additive_utility(values), n_permutations=1, tolerance=0.0, seed=0
        )
        np.testing.assert_allclose(est, values, atol=1e-12)

    def test_converges_on_random_game(self):
        util = random_game(5, seed=1)
        exact = exact_shapley_values(util)
        est = tmc_shapley_values(util, n_permutations=400, tolerance=0.0, seed=2)
        assert pearson_correlation(est, exact) > 0.9

    def test_truncation_reduces_evaluations(self):
        util_full = random_game(6, seed=3)
        tmc_shapley_values(util_full, n_permutations=30, tolerance=0.0, seed=4)
        full_evals = util_full.evaluations

        util_trunc = random_game(6, seed=3)
        tmc_shapley_values(util_trunc, n_permutations=30, tolerance=0.5, seed=4)
        assert util_trunc.evaluations < full_evals

    def test_default_budget(self):
        util = additive_utility([1.0, 2.0, 3.0])
        report = tmc_shapley(util, seed=0)
        assert report.method == "tmc-shapley"
        assert report.extra["coalition_evaluations"] > 0

    def test_bad_permutations(self):
        with pytest.raises(ValueError):
            tmc_shapley_values(additive_utility([1.0, 2.0]), n_permutations=0)

    def test_efficiency_approximate(self):
        """Without truncation, TMC averages of full permutations satisfy
        efficiency exactly (telescoping sum)."""
        util = random_game(4, seed=5)
        est = tmc_shapley_values(util, n_permutations=50, tolerance=0.0, seed=6)
        assert est.sum() == pytest.approx(util(util.grand_coalition), abs=1e-9)


class TestGT:
    def test_exact_on_additive_game_in_expectation(self):
        values = np.array([3.0, 1.0, -0.5, 2.0, 0.0])
        est = gt_shapley_values(additive_utility(values), n_tests=6000, seed=0)
        np.testing.assert_allclose(est, values, atol=0.35)

    def test_correlates_with_exact(self):
        util = random_game(5, seed=7)
        exact = exact_shapley_values(util)
        est = gt_shapley_values(util, n_tests=4000, seed=8)
        assert pearson_correlation(est, exact) > 0.85

    def test_efficiency_exact_by_construction(self):
        util = random_game(4, seed=9)
        est = gt_shapley_values(util, n_tests=200, seed=10)
        assert est.sum() == pytest.approx(util(util.grand_coalition), abs=1e-9)

    def test_single_player(self):
        util = additive_utility([5.0])
        np.testing.assert_allclose(gt_shapley_values(util), [5.0])

    def test_bad_tests(self):
        with pytest.raises(ValueError):
            gt_shapley_values(additive_utility([1.0, 2.0]), n_tests=0)

    def test_report(self):
        report = gt_shapley(additive_utility([1.0, 2.0]), n_tests=50, seed=0)
        assert report.method == "gt-shapley"


class TestMR:
    def test_per_epoch_shape(self, hfl_result, hfl_federation):
        report = mr_shapley(hfl_result.log, hfl_federation.validation, small_model_factory)
        assert report.per_epoch.shape == (hfl_result.log.n_epochs, 5)

    def test_correlates_with_digfl(self, hfl_result, hfl_federation):
        from repro.core import estimate_hfl_resource_saving

        mr = mr_shapley(hfl_result.log, hfl_federation.validation, small_model_factory)
        digfl = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        assert pearson_correlation(mr.totals, digfl.totals) > 0.8

    def test_round_efficiency(self, hfl_result, hfl_federation):
        """Per-round Shapley values sum to the round's grand-coalition
        utility: loss^v(θ_{t-1}) − loss^v(θ_t)."""
        report = mr_shapley(hfl_result.log, hfl_federation.validation, small_model_factory)
        model = small_model_factory()
        record = hfl_result.log.records[0]
        model.set_flat(record.theta_before)
        before = model.loss(hfl_federation.validation.X, hfl_federation.validation.y).item()
        model.set_flat(record.theta_after)
        after = model.loss(hfl_federation.validation.X, hfl_federation.validation.y).item()
        assert report.per_epoch[0].sum() == pytest.approx(before - after, abs=1e-9)

    def test_exponential_eval_count_reported(self, hfl_result, hfl_federation):
        report = mr_shapley(hfl_result.log, hfl_federation.validation, small_model_factory)
        assert report.extra["validation_evaluations"] == hfl_result.log.n_epochs * 32


class TestIM:
    def test_shape(self, hfl_result):
        report = im_scores(hfl_result.log)
        assert report.totals.shape == (5,)

    def test_projection_formula(self, hfl_result):
        report = im_scores(hfl_result.log)
        direction = hfl_result.log.initial_theta - hfl_result.log.final_theta
        direction /= np.linalg.norm(direction)
        manual = sum(
            record.local_updates @ direction for record in hfl_result.log.records
        )
        np.testing.assert_allclose(report.totals, manual, atol=1e-10)

    def test_zero_direction_safe(self):
        """A run that never moves θ must yield zeros, not NaNs."""
        from repro.hfl import EpochRecord, TrainingLog

        p = 4
        log = TrainingLog(participant_ids=[0, 1])
        log.records.append(
            EpochRecord(
                epoch=1,
                lr=0.1,
                theta_before=np.zeros(p),
                local_updates=np.zeros((2, p)),
                weights=np.full(2, 0.5),
            )
        )
        report = im_scores(log)
        np.testing.assert_allclose(report.totals, 0.0)
