"""Tests for repro.utils.rng — determinism and stream independence."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, shuffled, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = make_rng(42).normal(size=5)
        b = make_rng(42).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).normal(size=8)
        b = make_rng(2).normal(size=8)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(9)
        a = make_rng(seq).normal(size=3)
        b = make_rng(np.random.SeedSequence(9)).normal(size=3)
        np.testing.assert_array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(5, 3)
        draws = [c.normal(size=10) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_children_deterministic_in_root(self):
        a = [c.normal(size=4) for c in spawn_rngs(11, 2)]
        b = [c.normal(size=4) for c in spawn_rngs(11, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_salt_changes_seed(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 2, 4)

    def test_none_base_seed(self):
        assert derive_seed(None, 5) == derive_seed(None, 5)

    def test_result_in_range(self):
        s = derive_seed(123, 456)
        assert 0 <= s < 2**63


class TestShuffled:
    def test_preserves_elements(self):
        items = list(range(20))
        out = shuffled(items, make_rng(0))
        assert sorted(out) == items

    def test_input_untouched(self):
        items = [3, 1, 2]
        shuffled(items, make_rng(0))
        assert items == [3, 1, 2]

    def test_deterministic(self):
        assert shuffled(range(10), make_rng(4)) == shuffled(range(10), make_rng(4))
