"""Tests for the OR baseline, Dirichlet partitioning and Adam."""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving
from repro.data import dirichlet_label_partition
from repro.hfl import TrainingLog
from repro.metrics import pearson_correlation
from repro.nn import Adam
from repro.shapley import or_shapley

from tests.conftest import small_model_factory


class TestORShapley:
    def test_totals_shape(self, hfl_result, hfl_federation):
        report = or_shapley(hfl_result.log, hfl_federation.validation, small_model_factory)
        assert report.totals.shape == (5,)
        assert report.method == "or"

    def test_no_per_epoch(self, hfl_result, hfl_federation):
        report = or_shapley(hfl_result.log, hfl_federation.validation, small_model_factory)
        assert report.per_epoch is None

    def test_eval_count(self, hfl_result, hfl_federation):
        report = or_shapley(hfl_result.log, hfl_federation.validation, small_model_factory)
        assert report.extra["validation_evaluations"] == 32

    def test_correlates_with_digfl(self, hfl_result, hfl_federation):
        or_report = or_shapley(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        digfl = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        assert pearson_correlation(or_report.totals, digfl.totals) > 0.6

    def test_empty_log_rejected(self, hfl_federation):
        with pytest.raises(ValueError, match="empty"):
            or_shapley(
                TrainingLog(participant_ids=[0]),
                hfl_federation.validation,
                small_model_factory,
            )


class TestDirichletPartition:
    def _labels(self, n=1000, classes=10, seed=0):
        return np.random.default_rng(seed).integers(0, classes, size=n)

    def test_disjoint_and_complete(self):
        labels = self._labels()
        parts = dirichlet_label_partition(labels, 5, 0.5, num_classes=10, seed=0)
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(1000))

    def test_all_parties_nonempty(self):
        labels = self._labels(200)
        parts = dirichlet_label_partition(labels, 8, 0.1, num_classes=10, seed=1)
        assert all(len(p) > 0 for p in parts)

    def test_small_alpha_more_skew_than_large(self):
        """Quantify skew as the mean max-class share per party."""
        labels = self._labels(4000)

        def skew(alpha):
            parts = dirichlet_label_partition(
                labels, 6, alpha, num_classes=10, seed=2
            )
            shares = []
            for part in parts:
                counts = np.bincount(labels[part], minlength=10)
                shares.append(counts.max() / counts.sum())
            return float(np.mean(shares))

        assert skew(0.05) > skew(10.0)

    def test_large_alpha_near_iid(self):
        labels = self._labels(5000)
        parts = dirichlet_label_partition(labels, 4, 100.0, num_classes=10, seed=3)
        for part in parts:
            counts = np.bincount(labels[part], minlength=10)
            assert counts.min() > 0  # every class present

    def test_deterministic(self):
        labels = self._labels()
        a = dirichlet_label_partition(labels, 4, 0.3, num_classes=10, seed=7)
        b = dirichlet_label_partition(labels, 4, 0.3, num_classes=10, seed=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            dirichlet_label_partition(self._labels(), 3, 0.0, num_classes=10)


class TestAdam:
    def test_first_step_is_signed_lr(self):
        """With bias correction, the first Adam step ≈ lr·sign(grad)."""
        from repro.autodiff import Tensor

        p = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        p.grad = Tensor(np.array([0.3, -0.7]))
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.9, -0.9], atol=1e-6)

    def test_converges_on_quadratic(self):
        from repro.autodiff import Tensor, backward, mul, tsum

        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([x], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            backward(tsum(mul(x, x)))
            opt.step()
        np.testing.assert_allclose(x.data, 0.0, atol=1e-2)

    def test_none_grad_skipped(self):
        from repro.autodiff import Tensor

        p = Tensor(np.array([1.0]), requires_grad=True)
        Adam([p]).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam([], eps=0.0)
