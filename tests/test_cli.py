"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import load_report, load_training_log


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_audit_hfl_defaults(self):
        args = build_parser().parse_args(["audit-hfl"])
        assert args.dataset == "mnist"
        assert args.parties == 5
        assert not args.exact

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8733
        assert args.cache_mb == 64
        assert args.query_workers == 4

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--cache-mb", "8", "--query-workers", "2"]
        )
        assert args.port == 0
        assert args.cache_mb == 8
        assert args.query_workers == 2

    def test_serve_trace_flags(self):
        args = build_parser().parse_args(["serve"])
        assert not args.trace
        assert args.trace_export is None
        args = build_parser().parse_args(
            ["serve", "--trace", "--trace-export", "spans.jsonl"]
        )
        assert args.trace
        assert args.trace_export == "spans.jsonl"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "run.npz"])
        assert args.command == "profile"
        assert args.log == "run.npz"
        assert args.kind == "hfl"
        assert args.dataset == "mnist"

    def test_scenario_run_defaults(self):
        args = build_parser().parse_args(["scenario", "run", "free_rider"])
        assert args.command == "scenario"
        assert args.name == "free_rider"
        assert args.backend == "digfl"
        assert args.seed == 0
        assert args.exact_max_parties == 6
        assert not args.json

    def test_scenario_matrix_defaults(self):
        args = build_parser().parse_args(["scenario", "matrix"])
        assert args.scenarios == "all"
        assert args.backends == "all"
        assert not args.check
        assert args.save is None

    def test_scenario_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "run", "free_rider", "--backend", "ouija"]
            )


class TestDatasets:
    def test_lists_all_14(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("D_M", "D_C", "D_O", "D_R", "D_B", "D_A"):
            assert key in out
        assert out.count("\n") == 15  # header + 14 rows


class TestAuditHFL:
    def test_basic_run(self, capsys):
        code = main(
            ["audit-hfl", "--dataset", "mnist", "--parties", "3",
             "--mislabeled", "1", "--noniid", "0", "--epochs", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "participant" in out
        assert "mislabeled" in out

    def test_unknown_dataset(self, capsys):
        code = main(["audit-hfl", "--dataset", "boston"])
        assert code == 2
        assert "not an HFL dataset" in capsys.readouterr().err

    def test_exact_flag(self, capsys):
        code = main(
            ["audit-hfl", "--parties", "3", "--epochs", "2", "--noniid", "0",
             "--mislabeled", "0", "--exact"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PCC(DIG-FL, exact)" in out
        assert "8 retrainings" in out

    def test_save_outputs(self, tmp_path, capsys):
        log_path = tmp_path / "run.npz"
        report_path = tmp_path / "run.json"
        code = main(
            ["audit-hfl", "--parties", "3", "--epochs", "2", "--noniid", "0",
             "--save-log", str(log_path), "--save-report", str(report_path)]
        )
        assert code == 0
        log = load_training_log(log_path)
        assert log.n_epochs == 2
        report = load_report(report_path)
        assert report.method == "digfl-resource-saving"
        payload = json.loads(report_path.read_text())
        assert len(payload["totals"]) == 3


class TestAuditVFL:
    def test_basic_run(self, capsys):
        code = main(["audit-vfl", "--dataset", "iris", "--epochs", "5"])
        assert code == 0
        assert "participant" in capsys.readouterr().out

    def test_unknown_dataset(self, capsys):
        code = main(["audit-vfl", "--dataset", "mnist"])
        assert code == 2
        assert "not a VFL dataset" in capsys.readouterr().err

    def test_exact_and_party_override(self, capsys):
        code = main(
            ["audit-vfl", "--dataset", "diabetes", "--parties", "4",
             "--epochs", "5", "--exact"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "16 retrainings" in out
        assert "PCC" in out

    def test_save_vfl_log(self, tmp_path, capsys):
        from repro.io import load_vfl_training_log

        path = tmp_path / "vfl.npz"
        code = main(
            ["audit-vfl", "--dataset", "iris", "--epochs", "4",
             "--save-log", str(path)]
        )
        assert code == 0
        log = load_vfl_training_log(path)
        assert log.n_epochs == 4


class TestProfile:
    def test_profiles_a_saved_hfl_log(self, tmp_path, capsys):
        log_path = tmp_path / "run.npz"
        assert main(
            ["audit-hfl", "--parties", "3", "--epochs", "2", "--noniid", "0",
             "--save-log", str(log_path)]
        ) == 0
        capsys.readouterr()
        assert main(["profile", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "2 epochs" in out
        assert "phase" in out  # the table header
        assert "estimator.valgrad" in out
        assert "cache.digest" in out

    def test_profiles_a_saved_vfl_log(self, tmp_path, capsys):
        log_path = tmp_path / "vfl.npz"
        assert main(
            ["audit-vfl", "--dataset", "iris", "--epochs", "3",
             "--save-log", str(log_path)]
        ) == 0
        capsys.readouterr()
        assert main(["profile", str(log_path), "--kind", "vfl"]) == 0
        out = capsys.readouterr().out
        assert "estimator.dot_products" in out

    def test_missing_log_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["profile", str(tmp_path / "ghost.npz")])


class TestScenario:
    def test_run_one_scenario(self, capsys):
        assert main(
            ["scenario", "run", "label_noise_symmetric", "--backend", "digfl"]
        ) == 0
        out = capsys.readouterr().out
        assert "label_noise_symmetric" in out
        assert "digfl" in out
        assert "PASS" in out

    def test_run_json_output(self, capsys):
        assert main(
            ["scenario", "run", "free_rider", "--backend", "digfl", "--json"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["ok"] is True
        assert payload["cells"][0]["scenario"] == "free_rider"

    def test_matrix_reduced_with_save_and_check(self, tmp_path, capsys):
        out_path = tmp_path / "matrix.json"
        assert main(
            ["scenario", "matrix",
             "--scenarios", "label_noise_symmetric,free_rider",
             "--backends", "digfl",
             "--check", "--save", str(out_path)]
        ) == 0
        assert "PASS" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True
        assert len(payload["cells"]) == 2

    def test_unknown_scenario_exits(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "matrix", "--scenarios", "meteor_strike"])

    def test_unknown_matrix_backend_exits(self):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["scenario", "matrix", "--backends", "ouija"])

    def test_incapable_backend_exits(self):
        with pytest.raises(SystemExit, match="supports none"):
            main(
                ["scenario", "run", "vfl_modality_dropout",
                 "--backend", "gtg_shapley"]
            )
