"""Tests for the Module base class: registration, flat state, cloning."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, Module, Sequential


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, seed=0)
        self.fc2 = Linear(3, 2, seed=1)

    def forward(self, x):
        return self.fc2(self.fc1(x))


class TestRegistration:
    def test_parameters_depth_first_in_order(self):
        m = TwoLayer()
        params = m.parameters()
        assert len(params) == 4  # two weights + two biases
        assert params[0] is m.fc1.weight
        assert params[1] is m.fc1.bias
        assert params[2] is m.fc2.weight

    def test_named_parameters(self):
        names = [n for n, _ in TwoLayer().named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_direct_tensor_attribute(self):
        class WithScale(Module):
            def __init__(self):
                super().__init__()
                self.scale = Tensor(np.ones(1), requires_grad=True)

            def forward(self, x):
                return x * self.scale

        assert len(WithScale().parameters()) == 1

    def test_num_parameters(self):
        m = TwoLayer()
        assert m.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_reassignment_replaces(self):
        m = TwoLayer()
        m.fc1 = Linear(4, 3, seed=9)
        assert len(m.parameters()) == 4


class TestFlatState:
    def test_roundtrip(self):
        m = TwoLayer()
        flat = m.get_flat()
        m2 = TwoLayer()
        m2.set_flat(flat)
        np.testing.assert_allclose(m2.get_flat(), flat)

    def test_get_flat_is_copy(self):
        m = TwoLayer()
        flat = m.get_flat()
        flat[:] = 0
        assert not np.allclose(m.get_flat(), 0)

    def test_set_flat_wrong_size(self):
        with pytest.raises(ValueError):
            TwoLayer().set_flat(np.zeros(3))

    def test_set_flat_changes_forward(self):
        m = TwoLayer()
        x = np.ones((1, 4))
        before = m(Tensor(x)).data.copy()
        m.set_flat(np.zeros(m.num_parameters()))
        after = m(Tensor(x)).data
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, 0.0)


class TestClone:
    def test_clone_independent(self):
        m = TwoLayer()
        c = m.clone()
        c.set_flat(np.zeros(c.num_parameters()))
        assert not np.allclose(m.get_flat(), 0)

    def test_clone_same_values(self):
        m = TwoLayer()
        np.testing.assert_allclose(m.clone().get_flat(), m.get_flat())


class TestZeroGrad:
    def test_clears(self):
        from repro.autodiff import backward, tsum

        m = TwoLayer()
        backward(tsum(m(Tensor(np.ones((2, 4))))))
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestSequential:
    def test_iterates_in_order(self):
        a, b = Linear(2, 2, seed=0), Linear(2, 2, seed=1)
        seq = Sequential(a, b)
        assert list(seq) == [a, b]

    def test_forward_composes(self):
        a, b = Linear(2, 3, seed=0), Linear(3, 1, seed=1)
        seq = Sequential(a, b)
        x = Tensor(np.ones((4, 2)))
        np.testing.assert_allclose(seq(x).data, b(a(x)).data)
