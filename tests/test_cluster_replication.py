"""Warm standby replication: WAL shipping, promotion, and failover chaos.

Two layers of coverage.  The in-process tests drive the replication
machinery directly — :class:`WalApplier` idempotence, a real
:class:`WalFollower` tailing a real ``/wal/stream`` over sockets, the
``/control/*`` plane, and ring-epoch fencing — with no child processes.
The chaos test then runs the full thing twice (one shard with a warm
standby, one without), SIGKILLs the primary in both, and holds the
cluster to the tentpole claims: the promoted standby serves
contributions ``np.array_equal`` to the batch estimate of everything
acknowledged, the router never answers a bare 500 throughout, and the
warm failover gap is strictly below cold respawn-plus-full-replay.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import estimate_vfl_first_order
from repro.io import save_vfl_training_log
from repro.serve import (
    ClusterRouter,
    ClusterSupervisor,
    EvaluationHTTPServer,
    EvaluationService,
    ReplicationError,
    WalApplier,
    WalFollower,
    WorkerController,
    WriteAheadLog,
    recover,
)
from repro.serve.replication import APPLIED_GAUGE, LAG_GAUGE
from repro.serve.wal import RecoveryError

pytestmark = pytest.mark.timeout(300)


@pytest.fixture(scope="module")
def vfl_log(vfl_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster_repl") / "vfl_run.npz"
    save_vfl_training_log(vfl_result.log, path)
    return {"path": str(path), "log": vfl_result.log}


def _get(port, path, timeout=30):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return json.loads(response.read())


def _post(port, path, payload, timeout=120, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _spec(vfl_log, run_id):
    return {"kind": "vfl", "log_path": vfl_log["path"], "run_id": run_id}


# ------------------------------------------------------------- WalApplier


class TestWalApplier:
    def _primary_entries(self, vfl_log, tmp_path, run_id="vfl-src"):
        from repro.serve.http import register_from_spec

        wal = WriteAheadLog(tmp_path / "primary-wal")
        service = EvaluationService(wal=wal)
        register_from_spec(service, _spec(vfl_log, run_id))
        want = service.report(run_id).totals
        entries = wal.replay()
        service.close()
        return entries, want

    def test_applies_a_whole_stream_bit_identically(self, vfl_log, tmp_path):
        entries, want = self._primary_entries(vfl_log, tmp_path)
        replica = EvaluationService()
        applier = WalApplier(replica)
        for entry in entries:
            applier.apply(entry)
        assert applier.runs_restored == 1
        assert applier.epochs_replayed == vfl_log["log"].n_epochs
        assert np.array_equal(replica.report("vfl-src").totals, want)
        replica.close()

    def test_redelivery_is_free(self, vfl_log, tmp_path):
        """Every frame applied twice: same registry, same numbers — this
        is what makes refetch-after-restart and adopt-after-dual-write
        safe without any dedup bookkeeping."""
        entries, want = self._primary_entries(vfl_log, tmp_path)
        replica = EvaluationService()
        applier = WalApplier(replica)
        for entry in entries:
            applier.apply(entry)
        for entry in entries:
            applier.apply(entry)
        (summary,) = replica.runs()
        assert summary["epochs"] == vfl_log["log"].n_epochs
        assert np.array_equal(replica.report("vfl-src").totals, want)
        replica.close()

    def test_digest_divergence_refuses(self, vfl_log, tmp_path):
        from repro.serve.wal import WalEntry

        entries, _ = self._primary_entries(vfl_log, tmp_path)
        replica = EvaluationService()
        applier = WalApplier(replica)
        applier.apply(entries[0])
        first_ingest = entries[1]
        tampered = WalEntry(
            first_ingest.seq,
            first_ingest.kind,
            dict(first_ingest.payload, digest="0" * 64),
        )
        with pytest.raises(RecoveryError, match="digest"):
            applier.apply(tampered)
        replica.close()


# ----------------------------------------------------- follower over HTTP


class _Primary:
    """An in-process primary: WAL-attached service behind a real server."""

    def __init__(self, tmp_path):
        self.wal_dir = tmp_path / "primary-wal"
        self.wal = WriteAheadLog(self.wal_dir)
        self.service = EvaluationService(wal=self.wal)
        self.server = EvaluationHTTPServer(("127.0.0.1", 0), self.service)
        self.server.serve_background()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


@pytest.fixture()
def primary(tmp_path):
    node = _Primary(tmp_path)
    yield node
    node.close()


def _standby(tmp_path, primary, start=True):
    service = EvaluationService()
    wal = WriteAheadLog(tmp_path / "standby-wal")
    applier = WalApplier(service)
    recover(service, wal, applier=applier)
    service.attach_wal(wal)
    follower = WalFollower(
        applier,
        "127.0.0.1",
        primary.server.port,
        primary_wal_dir=primary.wal_dir,
        start_seq=wal.next_seq,
        poll_s=0.02,
        registry=service.obs.registry,
    )
    if start:
        follower.start()
    return service, follower


def _wait(predicate, deadline_s=60, message="condition never held"):
    deadline = time.monotonic() + deadline_s
    while not predicate():
        assert time.monotonic() < deadline, message
        time.sleep(0.02)


class TestWalFollower:
    def test_tails_the_stream_to_zero_lag_and_exports_gauges(
        self, primary, vfl_log, tmp_path
    ):
        from repro.serve.http import register_from_spec

        register_from_spec(primary.service, _spec(vfl_log, "vfl-repl"))
        end_seq = primary.wal.next_seq - 1
        standby, follower = _standby(tmp_path, primary)
        try:
            _wait(
                lambda: follower.next_seq - 1 == end_seq,
                message="follower never caught up",
            )
            assert follower.lag == 0
            assert follower.stats()["applied_seq"] == end_seq
            assert np.array_equal(
                standby.report("vfl-repl").totals,
                primary.service.report("vfl-repl").totals,
            )
            snapshot = standby.obs.registry.snapshot()
            (lag_series,) = snapshot[LAG_GAUGE]["series"]
            assert lag_series["value"] == 0.0
            (applied_series,) = snapshot[APPLIED_GAUGE]["series"]
            assert applied_series["value"] == float(end_seq)
        finally:
            follower.stop()
            standby.close()

    def test_standby_relogs_locally_and_resumes_after_restart(
        self, primary, vfl_log, tmp_path
    ):
        from repro.serve.http import register_from_spec

        register_from_spec(primary.service, _spec(vfl_log, "vfl-resume"))
        end_seq = primary.wal.next_seq - 1
        standby, follower = _standby(tmp_path, primary)
        _wait(lambda: follower.next_seq - 1 == end_seq)
        follower.stop()
        standby.close()
        # "Restart" the standby over its own WAL: recovery rebuilds the
        # registry and the new follower resumes at the primary seq its
        # local WAL length implies — caught up, nothing refetched.
        standby2, follower2 = _standby(tmp_path, primary, start=False)
        try:
            assert follower2.next_seq == end_seq + 1
            assert np.array_equal(
                standby2.report("vfl-resume").totals,
                primary.service.report("vfl-resume").totals,
            )
        finally:
            standby2.close()

    def test_promote_drains_the_unshipped_tail_from_the_wal_file(
        self, primary, vfl_log, tmp_path
    ):
        """A follower that never streamed a byte still promotes whole:
        the catch-up drain reads the dead primary's fsync'd file."""
        from repro.serve.http import register_from_spec

        register_from_spec(primary.service, _spec(vfl_log, "vfl-drain"))
        total = primary.wal.next_seq - 1
        standby, follower = _standby(tmp_path, primary, start=False)
        try:
            primary.close()  # the primary is dead; only its file remains
            stats = follower.promote()
            assert stats["promoted"] is True
            assert stats["drained"] == total
            assert follower.lag == 0
            assert np.array_equal(
                standby.report("vfl-drain").totals,
                estimate_vfl_first_order(vfl_log["log"]).totals,
            )
            # Promotion dropped the standby gauges; a frozen lag would
            # read as live replication delay on a primary.
            snapshot = standby.obs.registry.snapshot()
            assert LAG_GAUGE not in snapshot
            assert APPLIED_GAUGE not in snapshot
            # Idempotent: a second promote is a no-op report.
            assert follower.promote()["drained"] == 0
        finally:
            follower.stop()
            standby.close()

    def test_promote_refuses_a_diverged_follower(self, primary, tmp_path):
        standby, follower = _standby(tmp_path, primary, start=False)
        try:
            follower.error = RecoveryError("digest mismatch")
            with pytest.raises(ReplicationError, match="diverged"):
                follower.promote()
        finally:
            standby.close()


# ------------------------------------------------------- /control plane


@pytest.fixture()
def controlled_worker(tmp_path):
    wal = WriteAheadLog(tmp_path / "worker-wal")
    service = EvaluationService(wal=wal)
    server = EvaluationHTTPServer(("127.0.0.1", 0), service)
    server.ring_epoch = 0
    applier = WalApplier(service)
    server.controller = WorkerController(server, service, applier)
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()
    service.close()


class TestControlPlane:
    def test_status_reports_role_and_epoch(self, controlled_worker):
        status, body, _ = _post(controlled_worker.port, "/control/status", {})
        assert status == 200
        assert body == {"role": "primary", "ring_epoch": 0, "replication": None}

    def test_epoch_is_monotonic(self, controlled_worker):
        status, body, _ = _post(
            controlled_worker.port, "/control/epoch", {"ring_epoch": 3}
        )
        assert status == 200 and body["ring_epoch"] == 3
        # A lagging retry must not un-fence the worker.
        status, body, _ = _post(
            controlled_worker.port, "/control/epoch", {"ring_epoch": 1}
        )
        assert status == 200 and body["ring_epoch"] == 3
        status, body, _ = _post(
            controlled_worker.port, "/control/epoch", {"ring_epoch": "x"}
        )
        assert status == 400

    def test_stale_epoch_write_answers_typed_409_with_fence(
        self, controlled_worker, vfl_log
    ):
        _post(controlled_worker.port, "/control/epoch", {"ring_epoch": 2})
        status, body, headers = _post(
            controlled_worker.port,
            "/runs",
            _spec(vfl_log, "vfl-fenced"),
            headers={"X-Repro-Ring-Epoch": "1"},
        )
        assert status == 409
        assert "stale ring epoch" in body["error"]
        assert headers["X-Repro-Ring-Epoch"] == "2"
        # Current-epoch and unstamped writes pass.
        status, _, _ = _post(
            controlled_worker.port,
            "/runs",
            _spec(vfl_log, "vfl-fresh"),
            headers={"X-Repro-Ring-Epoch": "2"},
        )
        assert status == 201
        status, _, _ = _post(
            controlled_worker.port, "/runs", _spec(vfl_log, "vfl-unstamped")
        )
        assert status == 201

    def test_promote_on_a_primary_is_409(self, controlled_worker):
        status, body, _ = _post(controlled_worker.port, "/control/promote", {})
        assert status == 409 and "primary" in body["error"]

    def test_unknown_verb_is_404_and_no_controller_is_404(self, tmp_path):
        service = EvaluationService()
        bare = EvaluationHTTPServer(("127.0.0.1", 0), service)
        bare.serve_background()
        try:
            status, body, _ = _post(bare.port, "/control/status", {})
            assert status == 404 and "no cluster controller" in body["error"]
        finally:
            bare.shutdown()
            bare.server_close()
            service.close()

    def test_adopt_applies_frames_and_rejects_tampering(
        self, controlled_worker, vfl_log, tmp_path
    ):
        from repro.serve.http import register_from_spec

        source_wal = WriteAheadLog(tmp_path / "source-wal")
        source = EvaluationService(wal=source_wal)
        register_from_spec(source, _spec(vfl_log, "vfl-moved"))
        want = source.report("vfl-moved").totals
        frames = [entry.frame() for entry in source_wal.replay()]
        source.close()

        status, body, _ = _post(
            controlled_worker.port, "/control/adopt", {"frames": frames}
        )
        assert status == 200
        assert body == {"adopted": len(frames), "runs": ["vfl-moved"]}
        assert np.array_equal(
            controlled_worker.service.report("vfl-moved").totals, want
        )
        # Adoption is idempotent (dual-writes may have landed already).
        status, body, _ = _post(
            controlled_worker.port, "/control/adopt", {"frames": frames}
        )
        assert status == 200 and body["adopted"] == len(frames)

        bad = dict(frames[0], payload=dict(frames[0]["payload"], run_id="evil"))
        status, body, _ = _post(
            controlled_worker.port, "/control/adopt", {"frames": [bad]}
        )
        assert status == 400 and "checksum" in body["error"]
        status, body, _ = _post(
            controlled_worker.port, "/control/adopt", {"frames": "nope"}
        )
        assert status == 400


class TestWalStreamEndpoint:
    def test_stream_serves_validated_frames(self, controlled_worker, vfl_log):
        _post(controlled_worker.port, "/runs", _spec(vfl_log, "vfl-stream"))
        page = _get(
            controlled_worker.port, "/wal/stream?from_seq=1&limit=3"
        )
        assert [f["seq"] for f in page["frames"]] == [1, 2, 3]
        assert page["end_seq"] == vfl_log["log"].n_epochs + 1
        from repro.serve.wal import validate_wal_record

        for frame in page["frames"]:
            assert validate_wal_record(frame) is not None

    def test_stream_without_wal_is_404_and_bad_params_400(self, tmp_path):
        service = EvaluationService()
        bare = EvaluationHTTPServer(("127.0.0.1", 0), service)
        bare.serve_background()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(bare.port, "/wal/stream")
            assert excinfo.value.code == 404
        finally:
            bare.shutdown()
            bare.server_close()
            service.close()
        # Bad query params on a WAL-attached worker: typed 400.

    def test_bad_stream_params_are_400(self, controlled_worker):
        for query in ("from_seq=0", "limit=0", "from_seq=x"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(controlled_worker.port, f"/wal/stream?{query}")
            assert excinfo.value.code == 400


# ------------------------------------------------------------ chaos: failover


class _StatusPoller(threading.Thread):
    """Hammers one URL, recording (monotonic time, status) pairs."""

    def __init__(self, url):
        super().__init__(daemon=True)
        self.url = url
        self.samples = []
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                with urllib.request.urlopen(self.url, timeout=5) as response:
                    self.samples.append((time.monotonic(), response.status))
                    response.read()
            except urllib.error.HTTPError as exc:
                self.samples.append((time.monotonic(), exc.code))
                exc.read()
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
                # Connection-level failure at the *router* would be a
                # harness bug; the router itself stays up throughout.
                self.samples.append((time.monotonic(), -1))
            time.sleep(0.05)

    def stop(self):
        self._halt.set()
        self.join(timeout=10)


def _failover_gap_s(tmp_path, vfl_log, *, standby_replicas):
    """Kill shard 0's primary; return (gap seconds, served totals, info)."""
    supervisor = ClusterSupervisor(
        1,
        wal_root=tmp_path / f"wals-standby{standby_replicas}",
        standby_replicas=standby_replicas,
        probe_interval_s=0.2,
        probe_reset_s=1.0,
        # Slows every ingest — including cold-respawn WAL replay, which
        # is exactly the window warm promotion exists to close.
        chaos_ingest_ms=80.0,
    )
    supervisor.start()
    router = ClusterRouter(("127.0.0.1", 0), supervisor)
    router.serve_background()
    run_id = "vfl-failover"
    try:
        status, _, _ = _post(
            router.port, "/runs", _spec(vfl_log, run_id), timeout=180
        )
        assert status == 201
        end_seq = vfl_log["log"].n_epochs + 1  # register + every epoch
        if standby_replicas:
            info = _get(router.port, "/cluster")["shards"]["0"]
            host, port = info["standby"]["address"]
            _wait(
                lambda: (
                    _post(port, "/control/status", {})[1]["replication"] or {}
                ).get("applied_seq") == end_seq,
                deadline_s=120,
                message="standby never caught up",
            )
        victim_pid = _get(router.port, "/cluster")["shards"]["0"]["pid"]
        poller = _StatusPoller(
            f"http://127.0.0.1:{router.port}/runs/{run_id}/contributions"
        )
        poller.start()
        killed_at = time.monotonic()
        os.kill(victim_pid, signal.SIGKILL)
        _wait(
            lambda: any(
                at > killed_at and code == 200 for at, code in poller.samples
            ),
            deadline_s=120,
            message="shard never came back",
        )
        poller.stop()
        recovered_at = next(
            at
            for at, code in poller.samples
            if at > killed_at and code == 200
        )
        statuses = {code for _, code in poller.samples}
        assert statuses <= {200, 503, 504}, f"bare failure seen: {statuses}"
        served = _get(router.port, f"/runs/{run_id}/contributions")
        info = _get(router.port, "/cluster")
        return recovered_at - killed_at, np.asarray(served["totals"]), info
    finally:
        router.shutdown()
        router.server_close()
        supervisor.stop()


def test_warm_failover_beats_cold_replay_and_stays_bit_identical(
    vfl_log, tmp_path
):
    want = estimate_vfl_first_order(vfl_log["log"]).totals

    warm_gap, warm_totals, warm_info = _failover_gap_s(
        tmp_path, vfl_log, standby_replicas=1
    )
    shard = warm_info["shards"]["0"]
    assert shard["promotions"] >= 1
    assert shard["respawns"] == 0, "warm path must promote, not respawn"
    assert np.array_equal(warm_totals, want)
    # The promoted primary got a fresh standby behind it.
    assert warm_info["standby_replicas"] == 1
    assert "standby" in shard

    cold_gap, cold_totals, cold_info = _failover_gap_s(
        tmp_path, vfl_log, standby_replicas=0
    )
    assert cold_info["shards"]["0"]["respawns"] >= 1
    assert np.array_equal(cold_totals, want)

    # The tentpole number: catching up the lag beats replaying the world.
    assert warm_gap < cold_gap, (
        f"warm failover ({warm_gap:.2f}s) not faster than cold replay "
        f"({cold_gap:.2f}s)"
    )
