"""Deterministic-equivalence guarantee of the federated runtime.

With the serial executor, the null fault plan and no round deadline,
``FederatedRuntime.run_hfl`` / ``run_vfl`` must reproduce the synchronous
trainers' training logs **bit for bit** — same ``θ_t``, same ``δ_{t,i}``,
same weights, same validation curves, same cost ledger.  The thread-pool
executor must produce the same numbers as well (order-independent work,
order-fixed aggregation); only wall-clock may differ.
"""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, estimate_vfl_first_order
from repro.data import build_hfl_federation, mnist_like
from repro.experiments.workloads import build_vfl_workload
from repro.hfl import HFLTrainer, LocalTrainingConfig
from repro.metrics.cost import CostLedger
from repro.nn import LRSchedule, make_hfl_model
from repro.runtime import FederatedRuntime, RuntimeConfig


@pytest.fixture(scope="module")
def federation():
    return build_hfl_federation(
        mnist_like(400, seed=0), n_parties=4, n_mislabeled=1, seed=0
    )


def _factory():
    return make_hfl_model("mnist", seed=0)


def _trainer(epochs=4, local_config=None):
    return HFLTrainer(
        _factory, epochs=epochs, lr_schedule=LRSchedule(0.5),
        local_config=local_config,
    )


def assert_hfl_logs_identical(log_a, log_b):
    assert log_a.participant_ids == log_b.participant_ids
    assert log_a.n_epochs == log_b.n_epochs
    for a, b in zip(log_a.records, log_b.records):
        assert a.epoch == b.epoch and a.lr == b.lr
        np.testing.assert_array_equal(a.theta_before, b.theta_before)
        np.testing.assert_array_equal(a.local_updates, b.local_updates)
        np.testing.assert_array_equal(a.weights, b.weights)
        assert (a.val_loss == b.val_loss) or (
            np.isnan(a.val_loss) and np.isnan(b.val_loss)
        )


class TestHFLSerialEquivalence:
    def test_logs_bit_for_bit(self, federation):
        trainer = _trainer()
        sync = trainer.train(
            federation.locals, federation.validation, track_validation=True
        )
        run = FederatedRuntime(RuntimeConfig()).run_hfl(
            trainer, federation.locals, federation.validation,
            track_validation=True,
        )
        assert_hfl_logs_identical(sync.log, run.log)
        np.testing.assert_array_equal(sync.final_theta, run.final_theta)

    def test_no_fault_log_has_no_participation_masks(self, federation):
        run = FederatedRuntime(RuntimeConfig()).run_hfl(
            _trainer(), federation.locals
        )
        assert all(r.participation is None for r in run.log.records)
        assert run.log.participation_matrix().all()

    def test_fedavg_local_config(self, federation):
        """The FedAvg path (multi-step, mini-batch) is equivalent too."""
        config = LocalTrainingConfig(local_steps=3, batch_size=32, seed=7)
        trainer = _trainer(epochs=3, local_config=config)
        sync = trainer.train(federation.locals, federation.validation)
        run = FederatedRuntime(RuntimeConfig()).run_hfl(
            trainer, federation.locals, federation.validation
        )
        assert_hfl_logs_identical(sync.log, run.log)

    def test_weight_by_samples(self, federation):
        trainer = _trainer(epochs=3)
        sync = trainer.train(federation.locals, weight_by_samples=True)
        run = FederatedRuntime(RuntimeConfig()).run_hfl(
            trainer, federation.locals, weight_by_samples=True
        )
        assert_hfl_logs_identical(sync.log, run.log)

    def test_coalition(self, federation):
        trainer = _trainer(epochs=3)
        sync = trainer.train(federation.locals, participants=[0, 2])
        run = FederatedRuntime(RuntimeConfig()).run_hfl(
            trainer, federation.locals, participants=[0, 2]
        )
        assert_hfl_logs_identical(sync.log, run.log)

    def test_cost_ledger_matches(self, federation):
        trainer = _trainer(epochs=3)
        sync_ledger, run_ledger = CostLedger(), CostLedger()
        trainer.train(federation.locals, ledger=sync_ledger)
        FederatedRuntime(RuntimeConfig()).run_hfl(
            trainer, federation.locals, ledger=run_ledger
        )
        assert dict(sync_ledger.comm_bytes) == dict(run_ledger.comm_bytes)

    def test_estimator_output_identical(self, federation):
        """DIG-FL scores computed from both logs agree exactly."""
        trainer = _trainer()
        sync = trainer.train(federation.locals)
        run = FederatedRuntime(RuntimeConfig()).run_hfl(trainer, federation.locals)
        a = estimate_hfl_resource_saving(sync.log, federation.validation, _factory)
        b = estimate_hfl_resource_saving(run.log, federation.validation, _factory)
        np.testing.assert_array_equal(a.totals, b.totals)


class TestDefaultRobustConfigEquivalence:
    """The seed regime: a default RobustConfig must change *nothing*.

    The robustness PR's acceptance criterion — with ``RobustConfig()``
    (weighted mean, no screening, no checkpointing) the workload builders
    and trainers produce bit-for-bit the same logs as omitting the config
    entirely.
    """

    def test_hfl_default_config_bit_for_bit(self, federation):
        from repro.robust import RobustConfig

        config = RobustConfig()
        assert config.is_default()
        trainer = _trainer()
        plain = trainer.train(
            federation.locals, federation.validation, track_validation=True
        )
        configured = trainer.train(
            federation.locals, federation.validation, track_validation=True,
            aggregator=config.make_aggregator(),
            screener=config.make_screener(),
            checkpoint=config.make_checkpoint("hfl"),
            resume=config.resume,
        )
        assert_hfl_logs_identical(plain.log, configured.log)
        np.testing.assert_array_equal(plain.final_theta, configured.final_theta)
        assert all(r.applied_update is None for r in configured.log.records)
        assert all(r.participation is None for r in configured.log.records)

    def test_hfl_workload_default_config_bit_for_bit(self):
        from repro.experiments.workloads import build_hfl_workload
        from repro.robust import RobustConfig

        plain = build_hfl_workload("motor", epochs=3, seed=0)
        configured = build_hfl_workload(
            "motor", epochs=3, seed=0, robust=RobustConfig()
        )
        assert configured.quarantine is None
        assert_hfl_logs_identical(plain.result.log, configured.result.log)

    def test_vfl_workload_default_config_bit_for_bit(self):
        from repro.robust import RobustConfig

        plain = build_vfl_workload("iris", epochs=6, seed=0)
        configured = build_vfl_workload(
            "iris", epochs=6, seed=0, robust=RobustConfig()
        )
        assert configured.quarantine is None
        for a, b in zip(plain.result.log.records, configured.result.log.records):
            np.testing.assert_array_equal(a.theta_before, b.theta_before)
            np.testing.assert_array_equal(a.train_gradient, b.train_gradient)
            assert b.participation is None
        np.testing.assert_array_equal(plain.result.theta, configured.result.theta)


class TestHFLThreadEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_matches_sync(self, federation, workers):
        trainer = _trainer()
        sync = trainer.train(federation.locals, federation.validation,
                             track_validation=True)
        run = FederatedRuntime(
            RuntimeConfig(executor="threads", workers=workers)
        ).run_hfl(
            trainer, federation.locals, federation.validation,
            track_validation=True,
        )
        assert_hfl_logs_identical(sync.log, run.log)

    def test_pool_fedavg_matches_sync(self, federation):
        config = LocalTrainingConfig(local_steps=2, batch_size=16, seed=3)
        trainer = _trainer(epochs=3, local_config=config)
        sync = trainer.train(federation.locals)
        run = FederatedRuntime(
            RuntimeConfig(executor="threads", workers=4)
        ).run_hfl(trainer, federation.locals)
        assert_hfl_logs_identical(sync.log, run.log)


class TestVFLSerialEquivalence:
    @pytest.fixture(scope="class")
    def cell(self):
        return build_vfl_workload("iris", epochs=12, seed=0)

    def test_logs_bit_for_bit(self, cell):
        run = FederatedRuntime(RuntimeConfig()).run_vfl(
            cell.trainer, cell.split.train, cell.split.validation,
            track_losses=True,
        )
        sync_log, run_log = cell.result.log, run.log
        assert sync_log.active_parties == run_log.active_parties
        for a, b in zip(sync_log.records, run_log.records):
            assert a.epoch == b.epoch and a.lr == b.lr
            np.testing.assert_array_equal(a.theta_before, b.theta_before)
            np.testing.assert_array_equal(a.train_gradient, b.train_gradient)
            np.testing.assert_array_equal(a.val_gradient, b.val_gradient)
            np.testing.assert_array_equal(a.weights, b.weights)
            assert b.participation is None
        np.testing.assert_array_equal(cell.result.theta, run.theta)

    def test_estimator_output_identical(self, cell):
        run = FederatedRuntime(RuntimeConfig()).run_vfl(
            cell.trainer, cell.split.train, cell.split.validation
        )
        a = estimate_vfl_first_order(cell.result.log)
        b = estimate_vfl_first_order(run.log)
        np.testing.assert_array_equal(a.totals, b.totals)

    def test_vfl_coalition(self, cell):
        sync = cell.trainer.train(
            cell.split.train, cell.split.validation, parties=[0, 2]
        )
        run = FederatedRuntime(RuntimeConfig()).run_vfl(
            cell.trainer, cell.split.train, cell.split.validation,
            parties=[0, 2],
        )
        np.testing.assert_array_equal(sync.theta, run.theta)
