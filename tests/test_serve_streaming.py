"""Streaming estimators are *bit-for-bit* the batch estimators.

The acceptance contract of ``repro.serve.streaming``: ingesting a log one
epoch at a time yields ``np.array_equal`` totals and per-epoch matrices —
not merely allclose — against one batch call, on every workload class the
batch estimators support: clean seed runs, logged-weight attribution,
partial participation (runtime dropouts), and quarantined parties
(robust screening).  Plus the incremental-only surface: prefix queries,
leaderboards and running Eq. 17–18 weights.
"""

import numpy as np
import pytest

from repro.core import (
    estimate_hfl_resource_saving,
    estimate_vfl_first_order,
    rectified_weights,
    softmax_weights,
)
from repro.data import build_hfl_federation, mnist_like
from repro.hfl.attacks import AdversarialHFLTrainer, scale
from repro.hfl.log import TrainingLog
from repro.nn import LRSchedule
from repro.robust import QuarantineLedger, ScreenConfig, UpdateScreener
from repro.serve import StreamingHFLEstimator, StreamingVFLEstimator
from repro.vfl.log import VFLTrainingLog
from tests.conftest import small_model_factory
from tests.test_runtime_partial_estimators import (
    _build_hfl_log,
    _build_vfl_log,
    _factory as mnist_factory,
)

pytestmark = pytest.mark.timeout(180)  # inert without pytest-timeout (CI has it)


def _stream_hfl(log, validation, **kwargs) -> StreamingHFLEstimator:
    estimator = StreamingHFLEstimator(
        log.participant_ids, validation, small_model_factory, **kwargs
    )
    estimator.ingest_log(log)
    return estimator


def _assert_bit_for_bit(streaming_report, batch_report):
    assert np.array_equal(streaming_report.totals, batch_report.totals)
    assert np.array_equal(streaming_report.per_epoch, batch_report.per_epoch)
    assert streaming_report.participant_ids == batch_report.participant_ids
    assert streaming_report.method == batch_report.method


class TestHFLBitForBit:
    def test_clean_seed_run(self, hfl_result, hfl_federation):
        streaming = _stream_hfl(hfl_result.log, hfl_federation.validation)
        batch = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        _assert_bit_for_bit(streaming.report(), batch)

    def test_logged_weights(self, hfl_result, hfl_federation):
        streaming = _stream_hfl(
            hfl_result.log, hfl_federation.validation, use_logged_weights=True
        )
        batch = estimate_hfl_resource_saving(
            hfl_result.log,
            hfl_federation.validation,
            small_model_factory,
            use_logged_weights=True,
        )
        _assert_bit_for_bit(streaming.report(), batch)

    def test_partial_participation_log(self):
        """The hand-built dropout log: masked rounds, an all-absent round."""
        log = _build_hfl_log()
        validation = mnist_like(40, seed=1)
        streaming = StreamingHFLEstimator(
            log.participant_ids, validation, mnist_factory
        )
        streaming.ingest_log(log)
        batch = estimate_hfl_resource_saving(log, validation, mnist_factory)
        assert np.array_equal(streaming.per_epoch(), batch.per_epoch)
        assert np.array_equal(streaming.totals(), batch.totals)
        # The all-absent round streams to an exactly-zero row too.
        assert (streaming.per_epoch()[3] == 0.0).all()

    def test_quarantine_log(self):
        """Screening marks a boosting attacker absent; streaming agrees."""
        federation = build_hfl_federation(mnist_like(400, seed=0), 6, seed=0)
        ledger = QuarantineLedger()
        screener = UpdateScreener(ScreenConfig(norm_factor=5.0), ledger)
        trainer = AdversarialHFLTrainer(
            small_model_factory,
            epochs=4,
            lr_schedule=LRSchedule(0.5),
            attacks={5: scale(200.0)},
        )
        result = trainer.train(
            federation.locals, federation.validation, screener=screener
        )
        assert len(ledger) > 0, "the boosting attacker must get quarantined"
        assert not result.log.participation_matrix().all()
        streaming = _stream_hfl(result.log, federation.validation)
        batch = estimate_hfl_resource_saving(
            result.log, federation.validation, small_model_factory
        )
        _assert_bit_for_bit(streaming.report(), batch)
        # Quarantined rounds contribute exactly zero for the attacker.
        matrix = result.log.participation_matrix()
        np.testing.assert_array_equal(streaming.per_epoch()[~matrix], 0.0)

    def test_every_prefix_matches_batch_on_truncated_log(
        self, hfl_result, hfl_federation
    ):
        """Mid-training queries equal a batch re-estimate of the prefix."""
        log = hfl_result.log
        streaming = StreamingHFLEstimator(
            log.participant_ids, hfl_federation.validation, small_model_factory
        )
        for t, record in enumerate(log.records, start=1):
            streaming.ingest(record)
            prefix = TrainingLog(
                participant_ids=log.participant_ids, records=log.records[:t]
            )
            batch = estimate_hfl_resource_saving(
                prefix, hfl_federation.validation, small_model_factory
            )
            assert np.array_equal(streaming.totals(), batch.totals)
            assert np.array_equal(streaming.per_epoch(), batch.per_epoch)


class TestVFLBitForBit:
    def test_clean_seed_run(self, vfl_result):
        streaming = StreamingVFLEstimator(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        streaming.ingest_log(vfl_result.log)
        batch = estimate_vfl_first_order(vfl_result.log)
        _assert_bit_for_bit(streaming.report(), batch)

    def test_partial_participation_log(self):
        log = _build_vfl_log()
        streaming = StreamingVFLEstimator(log.feature_blocks, log.active_parties)
        streaming.ingest_log(log)
        batch = estimate_vfl_first_order(log)
        assert np.array_equal(streaming.per_epoch(), batch.per_epoch)
        assert np.array_equal(streaming.totals(), batch.totals)
        assert streaming.per_epoch()[1, 1] == 0.0
        assert streaming.per_epoch()[2, 0] == 0.0

    def test_every_prefix_matches_batch(self, vfl_result):
        log = vfl_result.log
        streaming = StreamingVFLEstimator(log.feature_blocks, log.active_parties)
        for t, record in enumerate(log.records, start=1):
            streaming.ingest(record)
            prefix = VFLTrainingLog(
                feature_blocks=log.feature_blocks,
                active_parties=log.active_parties,
                records=log.records[:t],
            )
            batch = estimate_vfl_first_order(prefix)
            assert np.array_equal(streaming.totals(), batch.totals)


class TestStreamingSurface:
    def test_leaderboard_is_sorted_and_truncates(self, vfl_result):
        streaming = StreamingVFLEstimator(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        streaming.ingest_log(vfl_result.log)
        board = streaming.leaderboard()
        values = [v for _, v in board]
        assert values == sorted(values, reverse=True)
        assert streaming.leaderboard(top=2) == board[:2]

    def test_current_weights_match_reweight_module(self, hfl_result, hfl_federation):
        streaming = _stream_hfl(hfl_result.log, hfl_federation.validation)
        last_row = streaming.per_epoch()[-1]
        np.testing.assert_array_equal(
            streaming.current_weights(), rectified_weights(last_row)
        )
        np.testing.assert_array_equal(
            streaming.current_weights("softmax"), softmax_weights(last_row, 1.0)
        )
        with pytest.raises(ValueError, match="scheme"):
            streaming.current_weights("banana")

    def test_weight_history_rows_are_simplex_points(self, hfl_result, hfl_federation):
        streaming = _stream_hfl(hfl_result.log, hfl_federation.validation)
        history = streaming.weight_history()
        assert history.shape == (
            hfl_result.log.n_epochs,
            len(hfl_result.log.participant_ids),
        )
        np.testing.assert_allclose(history.sum(axis=1), 1.0, rtol=1e-12)
        assert (history >= 0.0).all()

    def test_empty_estimator_raises(self, hfl_federation):
        streaming = StreamingHFLEstimator(
            [0, 1], hfl_federation.validation, small_model_factory
        )
        assert streaming.n_epochs == 0
        assert streaming.per_epoch().shape == (0, 2)
        with pytest.raises(ValueError, match="no epochs"):
            streaming.report()
        with pytest.raises(ValueError, match="no epochs"):
            streaming.current_weights()

    def test_mismatched_log_rejected(self, hfl_result, hfl_federation):
        streaming = StreamingHFLEstimator(
            [0, 1], hfl_federation.validation, small_model_factory
        )
        with pytest.raises(ValueError, match="do not match"):
            streaming.ingest_log(hfl_result.log)
        with pytest.raises(ValueError, match="update rows"):
            streaming.ingest(hfl_result.log.records[0])
