"""Tests for the phase timers and the per-run profile registry."""

import pytest

from repro.obs.profile import NULL_PHASE, NULL_PROFILER, Profiler, ProfileRegistry


def ticking_profiler(step: float = 1.0) -> Profiler:
    """A profiler whose clock advances ``step`` per reading."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return Profiler(clock=clock)


class TestProfiler:
    def test_phase_aggregates_calls_total_and_max(self):
        profiler = ticking_profiler()
        for _ in range(3):
            with profiler.phase("valgrad"):
                pass
        (row,) = profiler.report()
        assert row["phase"] == "valgrad"
        assert row["calls"] == 3
        assert row["total_s"] == pytest.approx(3.0)  # each window ticks once
        assert row["mean_s"] == pytest.approx(1.0)
        assert row["max_s"] == pytest.approx(1.0)
        assert row["share"] == pytest.approx(1.0)

    def test_report_sorts_by_total_and_shares_sum_to_one(self):
        profiler = Profiler()
        profiler.add("small", 0.1)
        profiler.add("large", 0.9)
        rows = profiler.report()
        assert [row["phase"] for row in rows] == ["large", "small"]
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)

    def test_add_rejects_negative_durations(self):
        with pytest.raises(ValueError, match="non-negative"):
            Profiler().add("p", -0.1)

    def test_clear(self):
        profiler = Profiler()
        profiler.add("p", 0.5)
        profiler.clear()
        assert profiler.report() == []

    def test_table_is_aligned_and_handles_empty(self):
        profiler = Profiler()
        assert profiler.table() == "no phases recorded"
        profiler.add("estimator.valgrad", 0.004)
        profiler.add("cache.digest", 0.001)
        table = profiler.table()
        lines = table.splitlines()
        assert lines[0].startswith("phase")
        assert len(lines) == 3
        assert "estimator.valgrad" in lines[1]  # largest total first

    def test_disabled_profiler_records_nothing(self):
        assert NULL_PROFILER.phase("anything") is NULL_PHASE
        NULL_PROFILER.add("anything", 1.0)
        assert NULL_PROFILER.report() == []


class TestProfileRegistry:
    def test_for_run_get_or_creates(self):
        registry = ProfileRegistry()
        a = registry.for_run("run-1")
        assert registry.for_run("run-1") is a
        assert registry.for_run("run-2") is not a
        assert registry.keys() == ["run-1", "run-2"]

    def test_report_for_unknown_run_is_empty(self):
        assert ProfileRegistry().report("nope") == []

    def test_disabled_registry_hands_out_the_null_profiler(self):
        registry = ProfileRegistry(enabled=False)
        assert registry.for_run("run-1") is NULL_PROFILER
        assert registry.keys() == []
