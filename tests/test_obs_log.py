"""Tests for the structured JSON logger and its trace correlation."""

import io
import json
import threading

import pytest

from repro.obs.log import NULL_LOGGER, JsonLogger
from repro.obs.trace import Tracer


def lines_of(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, clock=lambda: 12.5)
        logger.info("serve.ingest", run_id="r1", epochs=3)
        logger.error("publish.dead_letter", seq=9)
        first, second = lines_of(stream)
        assert first == {
            "ts": 12.5,
            "level": "info",
            "event": "serve.ingest",
            "run_id": "r1",
            "epochs": 3,
        }
        assert second["level"] == "error"
        assert second["seq"] == 9

    def test_bind_attaches_fields_and_shares_the_stream(self):
        stream = io.StringIO()
        logger = JsonLogger(stream)
        child = logger.bind(source="runtime", round=4)
        child.debug("round.end")
        (line,) = lines_of(stream)
        assert line["source"] == "runtime"
        assert line["round"] == 4
        # Call-site fields override bound ones.
        child.bind(round=9).info("round.end")
        assert lines_of(stream)[1]["round"] == 9

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            JsonLogger(io.StringIO()).log("e", level="fatal")

    def test_non_serialisable_fields_fall_back_to_str(self):
        stream = io.StringIO()
        JsonLogger(stream).info("e", obj={1, 2})
        (line,) = lines_of(stream)
        assert "1" in line["obj"]

    def test_disabled_logger_never_touches_the_stream(self):
        class Explosive:
            def write(self, *_):  # pragma: no cover - must not run
                raise AssertionError("disabled logger wrote")

            def flush(self):  # pragma: no cover - must not run
                raise AssertionError("disabled logger flushed")

        logger = JsonLogger(Explosive(), enabled=False)
        logger.info("dropped")
        assert not logger.enabled
        NULL_LOGGER.error("also dropped")

    def test_no_stream_means_disabled(self):
        assert not JsonLogger(None).enabled

    def test_concurrent_writers_never_interleave_lines(self):
        stream = io.StringIO()
        logger = JsonLogger(stream)

        def hammer(worker: int):
            for i in range(200):
                logger.info("tick", worker=worker, i=i)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        rows = lines_of(stream)  # json.loads raises on any torn line
        assert len(rows) == 800


class TestTraceCorrelation:
    def test_lines_inside_a_span_carry_its_ids(self):
        stream = io.StringIO()
        tracer = Tracer()
        logger = JsonLogger(stream, tracer=tracer)
        logger.info("outside")
        with tracer.span("request") as span:
            logger.info("inside")
        outside, inside = lines_of(stream)
        assert "trace_id" not in outside
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id

    def test_disabled_tracer_adds_no_ids(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, tracer=Tracer(enabled=False))
        with logger.tracer.span("nope"):
            logger.info("line")
        (line,) = lines_of(stream)
        assert "trace_id" not in line
