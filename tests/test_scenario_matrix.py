"""Tests for the robustness matrix — including the reduced CI rehearsal.

The full grid runs in ``benchmarks/bench_scenarios.py``; here a reduced
2-scenario × 2-backend matrix (the shape the CI ``scenario-matrix`` job
runs under pytest-timeout) pins the verdict policy: injected bad
participants land in ``digfl``'s bottom-``k``, streaming stays
``np.array_equal`` to batch in every cell, and the whole grid is
bit-reproducible under one seed.
"""

import json

import numpy as np
import pytest

from repro.scenario import (
    FreeRiders,
    LabelNoise,
    MatrixResult,
    RobustnessMatrix,
    VFLModalityDropout,
)

REDUCED = [
    LabelNoise(rates=(0.8, 0.0, 0.0, 0.0), epochs=3, n_samples=320),
    FreeRiders(riders={0: "zero"}, n_parties=4, epochs=3, n_samples=320),
]


class TestReducedMatrix:
    """The exact shape the CI scenario-matrix job rehearses."""

    @pytest.fixture(scope="class")
    def result(self):
        return RobustnessMatrix(
            scenarios=REDUCED, backends=["digfl", "gtg_shapley"], seed=0
        ).run()

    def test_grid_shape(self, result):
        assert len(result.cells) == 4  # 2 scenarios x 2 backends

    def test_rank_correctness_verdicts(self, result):
        result.assert_robustness()
        # Not just digfl: on these clear-cut scenarios gtg passes too.
        assert all(cell.bad_in_bottom_k for cell in result.cells)

    def test_streaming_equals_batch_everywhere(self, result):
        assert all(cell.streaming_equals_batch for cell in result.cells)

    def test_spearman_reference_present(self, result):
        for cell in result.cells:
            assert cell.spearman_vs_exact is not None
            assert -1.0 <= cell.spearman_vs_exact <= 1.0

    def test_backend_cells_get_distinct_seeds(self, result):
        seeds = {(cell.scenario, cell.backend): cell.seed for cell in result.cells}
        assert len(set(seeds.values())) == len(seeds)

    def test_to_dict_json_safe(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["ok"] is True
        assert payload["failures"] == []
        assert len(payload["cells"]) == 4

    def test_table_renders_every_cell(self, result):
        table = result.table()
        for cell in result.cells:
            assert cell.scenario in table
            assert cell.backend in table


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        matrix = RobustnessMatrix(
            scenarios=[REDUCED[0]], backends=["digfl"], seed=3
        )
        a, b = matrix.run(), matrix.run()
        for cell_a, cell_b in zip(a.cells, b.cells):
            np.testing.assert_array_equal(cell_a.totals, cell_b.totals)
            assert cell_a.ranking == cell_b.ranking
            assert cell_a.seed == cell_b.seed

    def test_different_matrix_seed_changes_cell_seeds(self):
        cells_a = RobustnessMatrix(
            scenarios=[REDUCED[0]], backends=["digfl"], seed=0
        ).run().cells
        cells_b = RobustnessMatrix(
            scenarios=[REDUCED[0]], backends=["digfl"], seed=1
        ).run().cells
        assert cells_a[0].seed != cells_b[0].seed


class TestBackendFiltering:
    def test_hfl_only_backend_skips_vfl_scenario(self):
        result = RobustnessMatrix(
            scenarios=[VFLModalityDropout(epochs=6, max_rows=200)],
            backends=["digfl", "gtg_shapley"],
            seed=0,
        ).run()
        assert [cell.backend for cell in result.cells] == ["digfl"]

    def test_vfl_cell_has_no_spearman(self):
        result = RobustnessMatrix(
            scenarios=[VFLModalityDropout(epochs=6, max_rows=200)],
            backends=["digfl"],
            seed=0,
        ).run()
        assert result.cells[0].spearman_vs_exact is None
        result.assert_robustness()

    def test_exact_max_parties_gates_spearman(self):
        result = RobustnessMatrix(
            scenarios=[REDUCED[0]],
            backends=["digfl"],
            seed=0,
            exact_max_parties=2,
        ).run()
        assert result.cells[0].spearman_vs_exact is None


class TestVerdictPolicy:
    def test_failures_name_the_cell(self):
        bad_cell = RobustnessMatrix(
            scenarios=[REDUCED[0]], backends=["digfl"], seed=0
        ).run().cells[0]
        bad_cell.bad_in_bottom_k = False
        broken = MatrixResult(cells=[bad_cell], seed=0)
        problems = broken.failures()
        assert len(problems) == 1
        assert "label_noise_symmetric × digfl" in problems[0]
        with pytest.raises(AssertionError, match="robustness matrix"):
            broken.assert_robustness()

    def test_streaming_break_fails_any_backend(self):
        cell = RobustnessMatrix(
            scenarios=[REDUCED[0]], backends=["gtg_shapley"], seed=0
        ).run().cells[0]
        cell.streaming_equals_batch = False
        broken = MatrixResult(cells=[cell], seed=0)
        assert any("streaming != batch" in p for p in broken.failures())

    def test_non_digfl_rank_miss_is_recorded_not_fatal(self):
        cell = RobustnessMatrix(
            scenarios=[REDUCED[0]], backends=["gtg_shapley"], seed=0
        ).run().cells[0]
        cell.bad_in_bottom_k = False
        tolerated = MatrixResult(cells=[cell], seed=0)
        assert tolerated.failures() == []
