"""Tests for the span tracer: ids, parenting, buffering, export."""

import threading

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SpanContext,
    Tracer,
    load_jsonl,
    slowest_spans,
)


def make_tracer(**kwargs):
    """A tracer whose ids are deterministic small integers."""
    counter = iter(range(1, 10_000))
    kwargs.setdefault("id_source", lambda: next(counter))
    return Tracer(**kwargs)


class TestSpanLifecycle:
    def test_with_block_records_duration_and_status(self):
        tracer = make_tracer()
        with tracer.span("work", size=3) as span:
            assert span.recording
        assert not span.recording
        assert span.status == "ok"
        assert span.duration_s >= 0.0
        assert span.attributes == {"size": 3}

    def test_ids_are_deterministic(self):
        first = make_tracer()
        second = make_tracer()
        with first.span("a"):
            pass
        with second.span("a"):
            pass
        assert first.spans()[0].trace_id == second.spans()[0].trace_id
        assert first.spans()[0].span_id == second.spans()[0].span_id

    def test_exception_marks_error_status(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("kaput")
        assert span.status == "error"
        assert "RuntimeError: kaput" in span.attributes["error"]

    def test_end_is_idempotent_and_first_status_wins(self):
        tracer = make_tracer()
        span = tracer.span("once")
        span.end(status="error")
        span.end()  # a later plain end must not overwrite or re-buffer
        assert span.status == "error"
        assert len(tracer.spans()) == 1

    def test_events_are_timestamped(self):
        tracer = make_tracer()
        with tracer.span("evented") as span:
            span.add_event("shed", depth=7)
        (event,) = span.events
        assert event["name"] == "shed"
        assert event["depth"] == 7
        assert event["time_s"] >= span.start_s


class TestParenting:
    def test_nested_with_blocks_parent_automatically(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id

    def test_explicit_context_wins_over_thread_local(self):
        tracer = make_tracer()
        with tracer.span("active") as active:
            other = SpanContext("cafe", "f00d")
            child = tracer.span("child", parent=other)
            child.end()
        assert child.trace_id == "cafe"
        assert child.parent_id == "f00d"
        assert active.trace_id != "cafe"

    def test_context_survives_a_thread_pool_hop(self):
        tracer = make_tracer()
        results = []

        def worker(ctx):
            span = tracer.span("pooled", parent=ctx)
            span.end()
            results.append(span)

        with tracer.span("request") as root:
            thread = threading.Thread(target=worker, args=(root.context,))
            thread.start()
            thread.join()
        (pooled,) = results
        assert pooled.trace_id == root.trace_id
        assert pooled.parent_id == root.span_id

    def test_threads_do_not_leak_active_spans_to_each_other(self):
        tracer = make_tracer()
        seen = []

        def worker():
            seen.append(tracer.current_context())

        with tracer.span("active"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert tracer.current_context() is not None
        assert seen == [None]


class TestBufferAndStats:
    def test_ring_drops_oldest_and_counts(self):
        tracer = make_tracer(capacity=2)
        for name in ("a", "b", "c"):
            tracer.span(name).end()
        assert [s.name for s in tracer.spans()] == ["b", "c"]
        assert tracer.dropped == 1
        assert tracer.stats() == {
            "enabled": True,
            "capacity": 2,
            "buffered": 2,
            "dropped": 1,
        }

    def test_traces_groups_by_trace_id(self):
        tracer = make_tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two") as outer:
            tracer.span("two.child", parent=outer).end()
        grouped = tracer.traces()
        assert sorted(len(spans) for spans in grouped.values()) == [1, 2]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_clear_resets_buffer_and_dropped(self):
        tracer = make_tracer(capacity=1)
        tracer.span("a").end()
        tracer.span("b").end()
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.dropped == 0


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert NULL_TRACER.span("anything") is NULL_SPAN

    def test_null_span_accepts_everything_and_buffers_nothing(self):
        with NULL_TRACER.span("nope") as span:
            span.set_attribute("k", 1)
            span.set_attributes(a=2)
            span.add_event("e")
        span.end(status="error")
        assert span.context is None
        assert NULL_TRACER.spans() == []


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("outer", size=1) as outer:
            tracer.span("inner", parent=outer).end()
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        rows = load_jsonl(path)
        assert [row["name"] for row in rows] == ["inner", "outer"]
        by_name = {row["name"]: row for row in rows}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"size": 1}

    def test_slowest_spans_on_dicts_and_spans(self):
        tracer = make_tracer()
        for name, duration in (("fast", 0.0), ("slow", 0.002)):
            span = tracer.span(name)
            span.end()
            span.end_s = span.start_s + duration  # pin a known duration
        spans = tracer.spans()
        assert slowest_spans(spans, 1)[0].name == "slow"
        dicts = [span.to_dict() for span in spans]
        assert slowest_spans(dicts, 1)[0]["name"] == "slow"
