"""Tests for the declarative scenario runner."""

import numpy as np
import pytest

from repro.hfl import LocalTrainingConfig, sign_flip
from repro.scenario import HFLScenario, ScenarioResult, quick_audit


class TestConfiguration:
    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            HFLScenario(dataset="imagenet")

    def test_attack_target_validated(self):
        with pytest.raises(ValueError, match="outside the federation"):
            HFLScenario(n_parties=3, attacks={5: sign_flip(1.0)})

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            HFLScenario(epochs=0)


class TestBasicRun:
    @pytest.fixture(scope="class")
    def result(self):
        return HFLScenario(
            n_parties=4, n_mislabeled=1, epochs=6, compute_exact=True, seed=1
        ).run()

    def test_result_type(self, result):
        assert isinstance(result, ScenarioResult)

    def test_qualities(self, result):
        assert result.qualities.count("mislabeled") == 1

    def test_contributions_shape(self, result):
        assert result.digfl.totals.shape == (4,)

    def test_pcc_available(self, result):
        assert result.pcc is not None
        assert result.pcc > 0.5

    def test_summary_keys(self, result):
        summary = result.summary()
        assert {"n_parties", "qualities", "final_accuracy", "contributions",
                "ranking", "flagged", "exact_shapley", "pcc"} <= set(summary)

    def test_summary_json_safe(self, result):
        import json

        json.dumps(result.summary())

    def test_deterministic(self):
        a = HFLScenario(n_parties=3, epochs=3, seed=7).run()
        b = HFLScenario(n_parties=3, epochs=3, seed=7).run()
        np.testing.assert_array_equal(a.digfl.totals, b.digfl.totals)


class TestOptions:
    def test_no_exact_by_default(self):
        result = HFLScenario(n_parties=3, epochs=3, seed=0).run()
        assert result.exact is None
        assert result.pcc is None
        assert "pcc" not in result.summary()

    def test_reweight_adds_run(self):
        result = HFLScenario(
            n_parties=4, n_mislabeled=3, epochs=8, reweight=True, seed=2
        ).run()
        assert result.reweighted_training is not None
        summary = result.summary()
        assert "reweighted_accuracy" in summary
        assert summary["reweighted_accuracy"] >= summary["final_accuracy"] - 0.05

    def test_attacks_applied(self):
        result = HFLScenario(
            n_parties=4, epochs=6, attacks={0: sign_flip(1.0)}, seed=3
        ).run()
        assert int(np.argmin(result.digfl.totals)) == 0
        assert 0 in result.flagged(threshold=1.5)

    def test_fedavg_config(self):
        result = HFLScenario(
            n_parties=3, epochs=3,
            local_config=LocalTrainingConfig(local_steps=2, batch_size=32),
            seed=4,
        ).run()
        assert result.training.log.n_epochs == 3


class TestQuickAudit:
    def test_returns_summary_dict(self):
        summary = quick_audit(seed=5)
        assert summary["n_parties"] == 5
        assert "pcc" in summary
        assert len(summary["contributions"]) == 5

    def test_smoke_flags_and_json(self):
        import json

        summary = quick_audit(seed=11)
        json.dumps(summary)  # end-to-end summary stays JSON-safe
        assert set(summary["ranking"]) == set(range(5))
        assert all(i in range(5) for i in summary["flagged"])

    def test_deterministic(self):
        assert quick_audit(seed=6) == quick_audit(seed=6)


class TestVFLScenario:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.scenario import VFLScenario

        return VFLScenario(
            dataset="iris", epochs=20, compute_exact=True, seed=2
        ).run()

    def test_table3_party_count_default(self, result):
        assert result.digfl.n_participants == 4  # iris row of Table III

    def test_pcc(self, result):
        assert result.pcc > 0.9

    def test_score(self, result):
        assert result.validation_score > 0.6

    def test_summary_json_safe(self, result):
        import json

        json.dumps(result.summary())

    def test_party_override(self):
        from repro.scenario import VFLScenario

        result = VFLScenario(
            dataset="boston", n_parties=3, epochs=10, max_rows=120, seed=3
        ).run()
        assert result.digfl.n_participants == 3
        assert result.exact is None

    def test_deterministic(self):
        from repro.scenario import VFLScenario

        a = VFLScenario(dataset="boston", n_parties=3, epochs=8,
                        max_rows=150, seed=9).run()
        b = VFLScenario(dataset="boston", n_parties=3, epochs=8,
                        max_rows=150, seed=9).run()
        np.testing.assert_array_equal(a.digfl.totals, b.digfl.totals)
        np.testing.assert_array_equal(a.theta, b.theta)

    def test_top_level_reexports(self):
        import repro

        assert hasattr(repro, "HFLScenario")
        assert hasattr(repro, "VFLScenario")
        assert hasattr(repro, "quick_audit")
