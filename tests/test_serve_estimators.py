"""Estimator backends served end-to-end: registry -> service -> HTTP -> WAL.

The serving contract for pluggable backends: ``POST /runs`` carries an
``estimator:`` field, unknown names are typed 400s listing the registry,
the backend rides the run's cache digest (no cross-backend cache leaks),
every query payload names the answering backend, WAL recovery rebuilds
the run under the same backend, and validation gradients are memoised
*across* runs sharing a validation set.
"""

import numpy as np
import pytest

from repro.core import UnknownBackendError, backend_names
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.io import save_training_log
from repro.nn import LRSchedule
from repro.serve import EvaluationService, WriteAheadLog, recover
from repro.serve.http import ApiError, register_from_spec
from tests.test_runtime_partial_estimators import _factory

pytestmark = pytest.mark.timeout(180)  # inert without pytest-timeout


@pytest.fixture(scope="module")
def world():
    federation = build_hfl_federation(mnist_like(300, seed=0), 3, seed=0)
    trainer = HFLTrainer(_factory, epochs=3, lr_schedule=LRSchedule(0.5))
    result = trainer.train(
        federation.locals, federation.validation, track_validation=True
    )
    return federation, result.log


def _register(service, federation, log, **kwargs):
    run_id = service.register_hfl(
        log.participant_ids, federation.validation, _factory, **kwargs
    )
    service.ingest_log(run_id, log)
    return run_id


def _summary(service, run_id):
    return next(r for r in service.runs() if r["run_id"] == run_id)


class TestServiceBackendSelection:
    def test_default_is_digfl_and_payload_names_backend(self, world):
        federation, log = world
        with EvaluationService() as service:
            run_id = _register(service, federation, log)
            payload = service.contributions(run_id)
            assert payload["estimator"] == "digfl"
            assert payload["method"] == "digfl-resource-saving"
            assert _summary(service, run_id)["estimator"] == "digfl"

    def test_each_backend_serves_under_its_own_digest(self, world):
        federation, log = world
        with EvaluationService() as service:
            payloads = {}
            for name in ("digfl", "gtg_shapley", "dpvs"):
                run_id = _register(
                    service, federation, log, estimator=name, run_id=name
                )
                payloads[name] = service.contributions(run_id)
            digests = {service.run_digest(name) for name in payloads}
            assert len(digests) == 3  # backend folded into the cache key
            for name, payload in payloads.items():
                assert payload["estimator"] == name
            assert not np.array_equal(
                payloads["digfl"]["totals"], payloads["gtg_shapley"]["totals"]
            )

    def test_options_fork_the_digest(self, world):
        federation, log = world
        with EvaluationService() as service:
            a = _register(
                service, federation, log, estimator="gtg_shapley", run_id="a"
            )
            b = _register(
                service, federation, log, estimator="gtg_shapley", run_id="b",
                estimator_options={"seed": 9},
            )
            assert service.run_digest(a) != service.run_digest(b)

    def test_unknown_backend_and_wrong_kind_are_valueerrors(self, world):
        federation, log = world
        with EvaluationService() as service:
            with pytest.raises(UnknownBackendError, match="registered backends"):
                service.register_hfl(
                    log.participant_ids, federation.validation, _factory,
                    estimator="nope",
                )
            with pytest.raises(ValueError, match="does not support 'vfl'"):
                service.register_vfl(
                    [np.array([0, 1]), np.array([2, 3])],
                    [0, 1],
                    estimator="gtg_shapley",
                )

    def test_validation_gradients_shared_across_runs(self, world):
        """Two digfl runs over the same log hit the cross-run gradient memo."""
        federation, log = world
        with EvaluationService() as service:
            _register(service, federation, log, run_id="first")
            before = service.cache.stats()["hits"]
            _register(service, federation, log, run_id="second")
            hits = service.cache.stats()["hits"] - before
            assert hits >= log.n_epochs  # every epoch's gradient was memoised


@pytest.fixture()
def hfl_log_path(world, tmp_path):
    _, log = world
    path = tmp_path / "run.npz"
    save_training_log(log, path)
    return str(path)


class TestHttpSpec:
    def _spec(self, hfl_log_path, **extra):
        return {
            "kind": "hfl",
            "log_path": hfl_log_path,
            "dataset": "mnist",
            "seed": 0,
            "n_samples": 300,
            **extra,
        }

    def test_response_names_backend(self, hfl_log_path):
        with EvaluationService() as service:
            answer = register_from_spec(
                service, self._spec(hfl_log_path, estimator="gtg_shapley")
            )
            assert answer["estimator"] == "gtg_shapley"
            payload = service.contributions(answer["run_id"])
            assert payload["estimator"] == "gtg_shapley"

    def test_default_estimator_recorded(self, hfl_log_path):
        with EvaluationService() as service:
            answer = register_from_spec(service, self._spec(hfl_log_path))
            assert answer["estimator"] == "digfl"

    def test_unknown_estimator_is_400_listing_backends(self, hfl_log_path):
        with EvaluationService() as service:
            with pytest.raises(ApiError) as excinfo:
                register_from_spec(
                    service, self._spec(hfl_log_path, estimator="nope")
                )
            assert excinfo.value.status == 400
            for name in backend_names():
                assert name in str(excinfo.value)

    def test_bad_option_and_bad_types_are_400(self, hfl_log_path):
        with EvaluationService() as service:
            for broken in (
                {"estimator": "gtg_shapley", "estimator_options": {"zap": 1}},
                {"estimator": "gtg_shapley", "estimator_options": [1, 2]},
                {"estimator": 7},
            ):
                with pytest.raises(ApiError) as excinfo:
                    register_from_spec(
                        service, self._spec(hfl_log_path, **broken)
                    )
                assert excinfo.value.status == 400

    def test_wrong_kind_backend_is_400_before_loading_log(self):
        with EvaluationService() as service:
            with pytest.raises(ApiError) as excinfo:
                register_from_spec(
                    service,
                    {
                        "kind": "vfl",
                        "log_path": "does-not-exist.npz",
                        "estimator": "gtg_shapley",
                    },
                )
            assert excinfo.value.status == 400
            assert "does not support 'vfl'" in str(excinfo.value)


class TestWalRecovery:
    def test_recovered_run_keeps_its_backend(self, hfl_log_path, tmp_path):
        spec = {
            "kind": "hfl",
            "log_path": hfl_log_path,
            "dataset": "mnist",
            "seed": 0,
            "n_samples": 300,
            "estimator": "gtg_shapley",
            "run_id": "gtg-run",
        }
        with WriteAheadLog(tmp_path / "wal") as wal:
            service = EvaluationService()
            service.attach_wal(wal)
            register_from_spec(service, spec)
            original = service.contributions("gtg-run")
            service.close()

        recovered = EvaluationService()
        report = recover(recovered, WriteAheadLog(tmp_path / "wal"))
        assert report.runs_restored == 1
        replayed = recovered.contributions("gtg-run")
        assert replayed["estimator"] == "gtg_shapley"
        assert np.array_equal(replayed["totals"], original["totals"])
        recovered.close()
