"""Tests for repro.utils.packing — flatten/unflatten round-trips."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.packing import (
    ParamSpec,
    flatten_params,
    params_close,
    unflatten_params,
)


def _example_params():
    rng = np.random.default_rng(0)
    return [rng.normal(size=(3, 4)), rng.normal(size=(4,)), rng.normal(size=(2, 2, 2))]


class TestFlatten:
    def test_roundtrip(self):
        params = _example_params()
        flat, spec = flatten_params(params)
        restored = unflatten_params(flat, spec)
        assert params_close(params, restored)

    def test_flat_is_1d_float64(self):
        flat, _ = flatten_params(_example_params())
        assert flat.ndim == 1
        assert flat.dtype == np.float64
        assert flat.size == 12 + 4 + 8

    def test_empty_list(self):
        flat, spec = flatten_params([])
        assert flat.size == 0
        assert unflatten_params(flat, spec) == []

    def test_flat_is_copy(self):
        params = _example_params()
        flat, _ = flatten_params(params)
        flat[0] = 999.0
        assert params[0].ravel()[0] != 999.0

    def test_unflatten_copies(self):
        params = _example_params()
        flat, spec = flatten_params(params)
        restored = unflatten_params(flat, spec)
        restored[0][0, 0] = 777.0
        assert flat[0] != 777.0

    def test_scalar_shaped_param(self):
        flat, spec = flatten_params([np.array(3.0)])
        assert flat.shape == (1,)
        (restored,) = unflatten_params(flat, spec)
        assert restored.shape == ()
        assert restored == 3.0


class TestUnflattenErrors:
    def test_wrong_size(self):
        _, spec = flatten_params(_example_params())
        with pytest.raises(ValueError, match="spec expects"):
            unflatten_params(np.zeros(5), spec)

    def test_wrong_ndim(self):
        _, spec = flatten_params(_example_params())
        with pytest.raises(ValueError, match="1-D"):
            unflatten_params(np.zeros((4, 6)), spec)


class TestParamSpec:
    def test_total_size(self):
        spec = ParamSpec.of(_example_params())
        assert spec.total_size == 24

    def test_of_records_shapes(self):
        spec = ParamSpec.of(_example_params())
        assert spec.shapes == ((3, 4), (4,), (2, 2, 2))


class TestParamsClose:
    def test_equal(self):
        a = _example_params()
        assert params_close(a, [p.copy() for p in a])

    def test_length_mismatch(self):
        a = _example_params()
        assert not params_close(a, a[:-1])

    def test_shape_mismatch(self):
        a = [np.zeros((2, 3))]
        b = [np.zeros((3, 2))]
        assert not params_close(a, b)

    def test_value_mismatch(self):
        a = [np.zeros(3)]
        b = [np.ones(3)]
        assert not params_close(a, b)


@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
    ),
    seed=st.integers(0, 2**16),
)
def test_roundtrip_property(shapes, seed):
    """flatten → unflatten is the identity for arbitrary shape lists."""
    rng = np.random.default_rng(seed)
    params = [rng.normal(size=s) for s in shapes]
    flat, spec = flatten_params(params)
    assert params_close(params, unflatten_params(flat, spec))
