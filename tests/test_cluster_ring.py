"""Property tests for the consistent-hash ring behind the cluster router.

Two exact invariants of consistent hashing (not statistical claims) are
what make :mod:`repro.serve.cluster` failover cheap, and Hypothesis
drives them across arbitrary shard sets and key sets:

* removing a shard moves *only* the keys that shard owned — everything
  else keeps its owner bit-for-bit;
* adding a shard moves keys *only onto* the new shard.

Balance, by contrast, is statistical: with the default 64 virtual nodes
per shard the deterministic SHA-256 placement keeps every shard within a
modest factor of fair share, pinned here over a fixed key universe.
"""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.serve.ring import HashRing

KEYS = [f"run-{i}" for i in range(2000)]

shard_sets = st.sets(
    st.one_of(st.integers(0, 99), st.text(min_size=1, max_size=8)),
    min_size=1,
    max_size=10,
)
key_lists = st.lists(st.text(min_size=1, max_size=32), min_size=1, max_size=64)


# ------------------------------------------------------------------ validation


def test_empty_ring_refuses_lookup():
    with pytest.raises(ValueError, match="empty ring"):
        HashRing().shard_for("run-1")


def test_replicas_must_be_positive():
    with pytest.raises(ValueError, match="replicas"):
        HashRing(replicas=0)


def test_duplicate_shard_rejected():
    ring = HashRing([0, 1])
    with pytest.raises(ValueError, match="already on the ring"):
        ring.add(1)


def test_remove_unknown_shard_raises():
    ring = HashRing([0, 1])
    with pytest.raises(KeyError):
        ring.remove(7)


def test_membership_introspection():
    ring = HashRing(["a", "b"])
    assert len(ring) == 2
    assert "a" in ring and "c" not in ring
    assert ring.shards == frozenset({"a", "b"})
    ring.remove("a")
    assert "a" not in ring and len(ring) == 1


# ------------------------------------------------------------ exact invariants


@given(shards=shard_sets, keys=key_lists)
def test_lookup_is_deterministic_and_order_independent(shards, keys):
    """Owners are members, stable across calls, and independent of the
    order shards were added in — two routers built from differently
    ordered configs must agree on every key."""
    forward = HashRing(sorted(shards, key=str))
    backward = HashRing(sorted(shards, key=str, reverse=True))
    for key in keys:
        owner = forward.shard_for(key)
        assert owner in shards
        assert forward.shard_for(key) == owner
        assert backward.shard_for(key) == owner


@given(shards=shard_sets.filter(lambda s: len(s) >= 2), data=st.data())
def test_removal_moves_only_the_removed_shards_keys(shards, data):
    victim = data.draw(st.sampled_from(sorted(shards, key=str)))
    ring = HashRing(shards)
    before = {key: ring.shard_for(key) for key in KEYS[:300]}
    ring.remove(victim)
    for key, old_owner in before.items():
        new_owner = ring.shard_for(key)
        if old_owner == victim:
            assert new_owner != victim
        else:
            assert new_owner == old_owner


@given(shards=shard_sets, newcomer=st.integers(1000, 1999))
def test_addition_moves_keys_only_to_the_new_shard(shards, newcomer):
    ring = HashRing(shards)
    before = {key: ring.shard_for(key) for key in KEYS[:300]}
    ring.add(newcomer)
    for key, old_owner in before.items():
        new_owner = ring.shard_for(key)
        assert new_owner == old_owner or new_owner == newcomer


@given(shards=shard_sets)
def test_remove_then_readd_restores_every_owner(shards):
    """Failover round trip: a shard leaving and returning (the respawn
    path) must restore the exact pre-failure ownership map."""
    ring = HashRing(shards)
    before = {key: ring.shard_for(key) for key in KEYS[:200]}
    victim = sorted(shards, key=str)[0]
    if len(shards) >= 2:
        ring.remove(victim)
        ring.add(victim)
    assert {key: ring.shard_for(key) for key in KEYS[:200]} == before


# ----------------------------------------------------------------- plan_resize


@given(shards=shard_sets, new_shards=shard_sets, keys=key_lists)
def test_plan_resize_moves_equal_the_observed_ownership_diff(
    shards, new_shards, keys
):
    """The plan is *exact*: its move set is precisely the keys whose
    owner differs between the live ring and the would-be ring — nothing
    missing, nothing extra — and the live ring is left untouched."""
    ring = HashRing(sorted(shards, key=str))
    before = {key: ring.shard_for(key) for key in keys}
    plan = ring.plan_resize(new_shards, keys)
    after = {key: plan.new_ring.shard_for(key) for key in keys}
    assert plan.moves == {
        key: (before[key], after[key])
        for key in dict.fromkeys(keys)
        if before[key] != after[key]
    }
    assert plan.added == frozenset(new_shards) - frozenset(shards)
    assert plan.removed == frozenset(shards) - frozenset(new_shards)
    # Planning didn't mutate the live ring.
    assert {key: ring.shard_for(key) for key in keys} == before


@given(shards=shard_sets, newcomer=st.integers(1000, 1999))
def test_plan_resize_growth_moves_keys_only_onto_the_newcomer(
    shards, newcomer
):
    ring = HashRing(shards)
    plan = ring.plan_resize(set(shards) | {newcomer}, KEYS[:300])
    assert all(dest == newcomer for _, dest in plan.moves.values())
    assert all(src in shards for src, _ in plan.moves.values())


@given(shards=shard_sets.filter(lambda s: len(s) >= 2), data=st.data())
def test_plan_resize_shrink_moves_only_the_victims_keys(shards, data):
    victim = data.draw(st.sampled_from(sorted(shards, key=str)))
    ring = HashRing(shards)
    plan = ring.plan_resize(set(shards) - {victim}, KEYS[:300])
    assert all(src == victim for src, _ in plan.moves.values())
    assert all(dest != victim for _, dest in plan.moves.values())


@given(shards=shard_sets, keys=key_lists)
def test_plan_resize_to_the_same_membership_is_empty(shards, keys):
    plan = HashRing(shards).plan_resize(set(shards), keys)
    assert plan.empty
    assert plan.moves == {}
    assert plan.added == plan.removed == frozenset()


def test_plan_resize_collapses_duplicate_keys_and_rejects_empty():
    ring = HashRing([0, 1])
    plan = ring.plan_resize([0, 1, 2], ["k"] * 50 + ["j"] * 50)
    assert set(plan.moves) <= {"k", "j"}
    with pytest.raises(ValueError, match="empty"):
        ring.plan_resize([], ["k"])


def test_plan_resize_new_ring_matches_a_fresh_ring():
    """Determinism the rebalance protocol leans on: the pending ring the
    router dual-writes against and ``plan.new_ring`` must agree."""
    ring = HashRing(range(3))
    plan = ring.plan_resize(range(4), KEYS[:500])
    fresh = HashRing(range(4), replicas=ring.replicas)
    assert all(
        plan.new_ring.shard_for(key) == fresh.shard_for(key)
        for key in KEYS[:500]
    )


# ---------------------------------------------------------------------- spread


@pytest.mark.parametrize("n_shards", [2, 3, 5, 8])
def test_balance_within_bounded_spread(n_shards):
    """Every shard holds within [0.5, 1.6]x fair share of 20k keys at the
    default 64 virtual nodes (measured ~[0.81, 1.24]; the bound leaves
    headroom without letting real imbalance through)."""
    keys = [f"run-{i}" for i in range(20000)]
    ring = HashRing(range(n_shards))
    spread = ring.spread(keys)
    fair = len(keys) / n_shards
    assert sum(spread.values()) == len(keys)
    for shard, count in spread.items():
        assert 0.5 * fair <= count <= 1.6 * fair, (shard, count / fair)


def test_more_replicas_tighten_the_spread():
    keys = [f"run-{i}" for i in range(20000)]

    def imbalance(replicas):
        spread = HashRing(range(5), replicas=replicas).spread(keys)
        fair = len(keys) / 5
        return max(abs(c - fair) for c in spread.values()) / fair

    assert imbalance(64) < imbalance(1)


def test_spread_covers_empty_shards():
    ring = HashRing(range(4))
    spread = ring.spread([])
    assert spread == {0: 0, 1: 0, 2: 0, 3: 0}
