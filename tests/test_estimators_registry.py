"""The estimator-backend registry and the ``digfl`` equivalence contract.

Two things must hold for the registry to be safe to serve through: the
registry itself is strict (duplicate names refused, unknown names and
options are typed errors, not silent fallbacks), and the ``digfl``
backend is a pure rebinding — ``np.array_equal`` to the pre-registry
batch estimators on clean, partial-participation and quarantine-shaped
logs, through both its batch and streaming entry points.
"""

import numpy as np
import pytest

from repro.core import (
    UnknownBackendError,
    UnsupportedLogKind,
    backend_infos,
    backend_names,
    choose_backend,
    estimate_hfl_resource_saving,
    estimate_vfl_first_order,
    get_backend,
    kind_capable_backends,
    register_backend,
)
from repro.core.backends import EstimatorBackend, HFLRunContext, _REGISTRY
from repro.data import build_hfl_federation, mnist_like
from repro.hfl.attacks import AdversarialHFLTrainer, scale
from repro.nn import LRSchedule, make_mlp_classifier
from repro.robust import QuarantineLedger, ScreenConfig, UpdateScreener
from tests.test_runtime_partial_estimators import (
    _build_hfl_log,
    _build_vfl_log,
    _factory,
)


class TestRegistryContract:
    def test_builtin_backends_registered_and_sorted(self):
        names = backend_names()
        assert names == sorted(names)
        for expected in ("digfl", "dpvs", "gtg_shapley"):
            assert expected in names

    def test_unknown_name_is_typed_and_lists_backends(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("nope")
        assert isinstance(excinfo.value, ValueError)  # -> HTTP 400
        message = str(excinfo.value)
        for name in backend_names():
            assert name in message

    def test_unknown_option_refused(self):
        with pytest.raises(ValueError, match="no option"):
            get_backend("gtg_shapley", not_a_knob=3)
        with pytest.raises(ValueError, match="no option"):
            get_backend("digfl", seed=0)  # digfl has no options at all

    def test_duplicate_name_refused_same_class_idempotent(self):
        assert "digfl" in backend_names()  # force lazy population first

        class Impostor(EstimatorBackend):
            name = "digfl"
            kinds = ("hfl",)

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Impostor)
        # Re-registering the exact same class (module re-import) is fine.
        existing = _REGISTRY["digfl"]
        assert register_backend(existing) is existing

    def test_nameless_or_kindless_backend_refused(self):
        class NoName(EstimatorBackend):
            kinds = ("hfl",)

        class NoKinds(EstimatorBackend):
            name = "no-kinds"

        with pytest.raises(ValueError, match="non-empty 'name'"):
            register_backend(NoName)
        with pytest.raises(ValueError, match="log kinds"):
            register_backend(NoKinds)

    def test_kind_gating(self):
        gtg = get_backend("gtg_shapley")
        assert gtg.supports("hfl") and not gtg.supports("vfl")
        with pytest.raises(UnsupportedLogKind, match="does not support 'vfl'"):
            gtg.require("vfl")
        digfl = get_backend("digfl")
        digfl.require("hfl")
        digfl.require("vfl")

    def test_kind_gating_names_capable_backends(self):
        """Regression: the VFL gating error must point at usable backends."""
        with pytest.raises(UnsupportedLogKind) as excinfo:
            get_backend("gtg_shapley").require("vfl")
        message = str(excinfo.value)
        assert "backends supporting 'vfl': digfl" in message
        assert excinfo.value.capable == ["digfl"]
        # The offending backend never recommends itself.
        assert "gtg_shapley" not in excinfo.value.capable

    def test_kind_capable_backends(self):
        vfl_capable = kind_capable_backends("vfl")
        assert "digfl" in vfl_capable
        assert "gtg_shapley" not in vfl_capable
        hfl_capable = kind_capable_backends("hfl")
        assert {"digfl", "dpvs", "gtg_shapley"} <= set(hfl_capable)
        assert hfl_capable == sorted(hfl_capable)

    def test_digest_tokens_distinguish_backend_and_options(self):
        tokens = {
            get_backend("digfl").digest_token(),
            get_backend("gtg_shapley").digest_token(),
            get_backend("gtg_shapley", seed=1).digest_token(),
            get_backend("dpvs").digest_token(),
        }
        assert len(tokens) == 4
        # Same backend + same options -> same token (cache-key stability).
        assert (
            get_backend("gtg_shapley", seed=1).digest_token()
            == get_backend("gtg_shapley", seed=1).digest_token()
        )

    def test_backend_infos_expose_defaults(self):
        infos = {info.name: info for info in backend_infos()}
        assert infos["gtg_shapley"].option_defaults["max_permutations"] == 16
        assert infos["digfl"].kinds == ("hfl", "vfl")
        assert infos["dpvs"].summary


class TestChooseBackend:
    """Crossover-driven auto-selection from BENCH_estimators.json."""

    def _bench(self, tmp_path, payload):
        import json

        path = tmp_path / "BENCH_estimators.json"
        path.write_text(json.dumps(payload))
        return path

    def test_vfl_always_digfl(self, tmp_path):
        bench = self._bench(tmp_path, {"crossover": {"n_parties": 3}})
        assert choose_backend(2, "vfl", bench_path=bench) == "digfl"
        assert choose_backend(50, "vfl", bench_path=bench) == "digfl"

    def test_hfl_crossover_switches_backend(self, tmp_path):
        bench = self._bench(tmp_path, {"crossover": {"n_parties": 6}})
        assert choose_backend(3, "hfl", bench_path=bench) == "gtg_shapley"
        assert choose_backend(5, "hfl", bench_path=bench) == "gtg_shapley"
        assert choose_backend(6, "hfl", bench_path=bench) == "dpvs"
        assert choose_backend(40, "hfl", bench_path=bench) == "dpvs"

    def test_missing_bench_falls_back_to_digfl(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert choose_backend(5, "hfl", bench_path=missing) == "digfl"

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no crossover key
            {"crossover": {}},  # no n_parties
            {"crossover": {"n_parties": None}},  # sweep found no crossover
            {"crossover": {"n_parties": "soon"}},  # not numeric
            {"crossover": {"n_parties": 0}},  # nonsense value
        ],
    )
    def test_malformed_crossover_falls_back(self, tmp_path, payload):
        bench = self._bench(tmp_path, payload)
        assert choose_backend(5, "hfl", bench_path=bench) == "digfl"

    def test_invalid_json_falls_back(self, tmp_path):
        bench = tmp_path / "BENCH_estimators.json"
        bench.write_text("{not json")
        assert choose_backend(5, "hfl", bench_path=bench) == "digfl"

    def test_repo_bench_file_drives_selection(self):
        # The checked-in bench records a crossover, so HFL picks a
        # Shapley-family backend and never errors.
        name = choose_backend(4, "hfl")
        assert name in backend_names()

    def test_validation(self):
        with pytest.raises(ValueError, match="n_parties"):
            choose_backend(0, "hfl")
        with pytest.raises(ValueError, match="kind"):
            choose_backend(4, "diagonal")


@pytest.fixture(scope="module")
def quarantine_log():
    """A log shaped by screening: quarantined rounds punch participation holes."""
    federation = build_hfl_federation(mnist_like(400, seed=0), 6, seed=0)
    trainer = AdversarialHFLTrainer(
        _factory, epochs=4, lr_schedule=LRSchedule(0.5),
        attacks={5: scale(200.0)},
    )
    ledger = QuarantineLedger()
    screener = UpdateScreener(ScreenConfig(norm_factor=5.0), ledger)
    result = trainer.train(
        federation.locals, federation.validation, screener=screener
    )
    assert len(ledger) > 0, "attack strong enough to trip the screener"
    return federation, result.log


class TestDigFLBitEquality:
    """``digfl`` through the registry == the original estimators, exactly."""

    def _assert_reports_equal(self, ours, reference):
        assert ours.participant_ids == reference.participant_ids
        assert np.array_equal(ours.totals, reference.totals)
        assert np.array_equal(ours.per_epoch, reference.per_epoch)

    def test_clean_hfl_batch(self, hfl_result, hfl_federation):
        factory = lambda: make_mlp_classifier(100, 10, hidden=(16,), seed=0)
        reference = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, factory
        )
        ours = get_backend("digfl").estimate_hfl(
            hfl_result.log, hfl_federation.validation, factory
        )
        self._assert_reports_equal(ours, reference)
        assert ours.method == reference.method == "digfl-resource-saving"

    def test_partial_hfl_batch_and_streaming(self):
        log = _build_hfl_log()
        validation = mnist_like(40, seed=1)
        reference = estimate_hfl_resource_saving(log, validation, _factory)
        backend = get_backend("digfl")
        self._assert_reports_equal(
            backend.estimate_hfl(log, validation, _factory), reference
        )
        streaming = backend.streaming_hfl(
            HFLRunContext(log.participant_ids, validation, _factory)
        )
        for record in log.records:
            streaming.ingest(record)
        self._assert_reports_equal(streaming.report(), reference)

    def test_logged_weights_path(self):
        log = _build_hfl_log()
        validation = mnist_like(40, seed=1)
        reference = estimate_hfl_resource_saving(
            log, validation, _factory, use_logged_weights=True
        )
        ours = get_backend("digfl").estimate_hfl(
            log, validation, _factory, use_logged_weights=True
        )
        self._assert_reports_equal(ours, reference)

    def test_quarantine_hfl(self, quarantine_log):
        federation, log = quarantine_log
        reference = estimate_hfl_resource_saving(
            log, federation.validation, _factory
        )
        ours = get_backend("digfl").estimate_hfl(
            log, federation.validation, _factory
        )
        self._assert_reports_equal(ours, reference)

    def test_clean_vfl_batch(self, vfl_result):
        reference = estimate_vfl_first_order(vfl_result.log)
        ours = get_backend("digfl").estimate_vfl(vfl_result.log)
        self._assert_reports_equal(ours, reference)
        assert ours.method == "digfl-vfl"

    def test_partial_vfl_batch(self):
        log = _build_vfl_log()
        reference = estimate_vfl_first_order(log)
        self._assert_reports_equal(
            get_backend("digfl").estimate_vfl(log), reference
        )

    def test_empty_log_refused(self):
        from repro.hfl.log import TrainingLog

        with pytest.raises(ValueError, match="empty"):
            get_backend("gtg_shapley").estimate_hfl(
                TrainingLog(participant_ids=[0, 1]),
                mnist_like(40, seed=1),
                _factory,
            )
