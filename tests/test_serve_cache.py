"""The content-addressed result cache: LRU budget, counters, digests.

Pins the properties the service relies on: the byte budget actually
bounds memory (evicting least-recently-used first, rejecting values
larger than the whole budget), the counters stay internally consistent
(``lookups = hits + misses``), and :class:`RunDigest` is a pure function
of log *content* — two runs ingesting the same records converge on the
same hex state, and any single changed byte diverges.
"""

import numpy as np
import pytest

from repro.serve import CacheMemo, ResultCache, RunDigest, fingerprint_arrays
from tests.test_runtime_partial_estimators import _build_hfl_log, _build_vfl_log

pytestmark = pytest.mark.timeout(120)  # inert without pytest-timeout (CI has it)


class TestResultCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = ResultCache(1024)
        assert cache.get("k") is None
        cache.put("k", b"value")
        assert cache.get("k") == b"value"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["lookups"] == stats["hits"] + stats["misses"]
        assert stats["entries"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(100)
        cache.put("a", b"x" * 40)
        cache.put("b", b"x" * 40)
        assert cache.get("a") == b"x" * 40  # refresh "a": now "b" is LRU
        cache.put("c", b"x" * 40)  # 120 bytes > 100: evict "b"
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1
        assert cache.current_bytes <= 100

    def test_oversize_value_rejected_not_admitted(self):
        cache = ResultCache(64)
        cache.put("small", b"x" * 10)
        cache.put("huge", b"x" * 1000)
        assert "huge" not in cache
        assert "small" in cache, "an oversize value must not flush the cache"
        assert cache.rejected == 1
        assert cache.evictions == 0

    def test_reput_same_key_replaces_without_double_charge(self):
        cache = ResultCache(100)
        cache.put("k", b"x" * 60)
        cache.put("k", b"x" * 30)
        assert cache.current_bytes == 30
        assert len(cache) == 1

    def test_get_or_compute_computes_once(self):
        cache = ResultCache(1024)
        calls = []

        def compute():
            calls.append(1)
            return {"totals": [1.0, 2.0]}

        first = cache.get_or_compute("q", compute)
        second = cache.get_or_compute("q", compute)
        assert first == second
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_numpy_payloads_charged_by_nbytes(self):
        cache = ResultCache(100)
        cache.put("g", np.zeros(10))  # 80 bytes
        assert cache.current_bytes == 80
        cache.put("g2", np.zeros(10))  # would be 160: evict "g"
        assert cache.evictions == 1

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(0)

    def test_clear(self):
        cache = ResultCache(1024)
        cache.put("k", b"v")
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0


class TestCacheMemo:
    def test_mapping_view_shares_the_cache(self):
        cache = ResultCache(1024)
        memo = cache.memo("valgrad")
        assert isinstance(memo, CacheMemo)
        memo["abc"] = np.arange(3.0)
        np.testing.assert_array_equal(memo["abc"], np.arange(3.0))
        np.testing.assert_array_equal(cache.get(("valgrad", "abc")), np.arange(3.0))
        assert memo.get("missing") is None
        with pytest.raises(KeyError):
            memo["missing"]

    def test_prefixes_namespace_keys(self):
        cache = ResultCache(1024)
        cache.memo("a")["k"] = 1
        cache.memo("b")["k"] = 2
        assert cache.memo("a")["k"] == 1
        assert cache.memo("b")["k"] == 2

    def test_deletion_and_iteration_unsupported(self):
        memo = ResultCache(1024).memo("p")
        with pytest.raises(TypeError):
            del memo["k"]
        with pytest.raises(TypeError):
            list(memo)


class TestRunDigest:
    def test_same_content_same_digest(self):
        log = _build_hfl_log()
        a, b = RunDigest("hfl"), RunDigest("hfl")
        for record in log.records:
            a.update_hfl(record)
            b.update_hfl(record)
        assert a.hexdigest() == b.hexdigest()
        assert a.epochs == len(log.records)

    def test_any_changed_byte_diverges(self):
        log = _build_hfl_log()
        a, b = RunDigest("hfl"), RunDigest("hfl")
        a.update_hfl(log.records[0])
        perturbed = _build_hfl_log()
        perturbed.records[0].local_updates[0, 0] += 1e-9
        b.update_hfl(perturbed.records[0])
        assert a.hexdigest() != b.hexdigest()

    def test_seed_parts_separate_estimator_options(self):
        assert (
            RunDigest("hfl", "use_logged_weights=True").hexdigest()
            != RunDigest("hfl", "use_logged_weights=False").hexdigest()
        )

    def test_hexdigest_is_a_snapshot_not_a_finalise(self):
        """Reading the digest mid-stream must not corrupt later updates."""
        log = _build_vfl_log()
        a, b = RunDigest("vfl"), RunDigest("vfl")
        for record in log.records:
            a.update_vfl(record)
            a.hexdigest()  # interleaved reads
            b.update_vfl(record)
        assert a.hexdigest() == b.hexdigest()

    def test_prefix_digests_differ_per_epoch(self):
        log = _build_hfl_log()
        digest = RunDigest("hfl")
        states = [digest.update_hfl(record) for record in log.records]
        assert len(set(states)) == len(states)


class TestFingerprintArrays:
    def test_deterministic_and_name_sensitive(self):
        x = np.arange(6.0).reshape(2, 3)
        assert fingerprint_arrays(X=x) == fingerprint_arrays(X=x.copy())
        assert fingerprint_arrays(X=x) != fingerprint_arrays(Y=x)
        assert fingerprint_arrays(X=x) != fingerprint_arrays(X=x + 1)
