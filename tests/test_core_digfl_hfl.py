"""Tests for the HFL DIG-FL estimators (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.core import estimate_hfl_interactive, estimate_hfl_resource_saving
from repro.hfl import TrainingLog, validation_gradient
from repro.metrics import CostLedger, pearson_correlation

from tests.conftest import small_model_factory


class TestResourceSaving:
    def test_per_epoch_shape(self, hfl_result, hfl_federation):
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        assert report.per_epoch.shape == (hfl_result.log.n_epochs, 5)

    def test_totals_are_epoch_sums(self, hfl_result, hfl_federation):
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        np.testing.assert_allclose(report.totals, report.per_epoch.sum(axis=0))

    def test_matches_manual_formula(self, hfl_result, hfl_federation):
        """φ̂_{t,i} must equal (1/n)·⟨∇loss^v(θ_{t-1}), δ_{t,i}⟩ exactly."""
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        model = small_model_factory()
        record = hfl_result.log.records[2]
        v = validation_gradient(model, record.theta_before, hfl_federation.validation)
        for i in range(5):
            expected = (record.local_updates[i] @ v) / 5
            assert report.per_epoch[2, i] == pytest.approx(expected, abs=1e-12)

    def test_corrupted_participants_rank_lowest(self, hfl_result, hfl_federation):
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        order = np.argsort(report.totals)
        worst_two = {hfl_federation.qualities[i] for i in order[:2]}
        assert worst_two <= {"mislabeled", "noniid"}

    def test_no_extra_communication(self, hfl_result, hfl_federation):
        """Algorithm 2 is server-only: level-2 privacy, zero extra bytes."""
        ledger = CostLedger()
        estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory,
            ledger=ledger,
        )
        assert ledger.total_comm_bytes == 0

    def test_empty_log_rejected(self, hfl_federation):
        with pytest.raises(ValueError, match="empty"):
            estimate_hfl_resource_saving(
                TrainingLog(participant_ids=[0]),
                hfl_federation.validation,
                small_model_factory,
            )

    def test_method_name(self, hfl_result, hfl_federation):
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        assert report.method == "digfl-resource-saving"


class TestInteractive:
    def test_first_epoch_matches_resource_saving(self, hfl_result, hfl_federation):
        """At t=1 there is no accumulated ΔG, so both estimators agree."""
        rs = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        inter = estimate_hfl_interactive(
            hfl_result.log, hfl_federation.validation, small_model_factory,
            hfl_federation.locals,
        )
        np.testing.assert_allclose(inter.per_epoch[0], rs.per_epoch[0], atol=1e-10)

    def test_estimators_strongly_correlated(self, hfl_result, hfl_federation):
        """Sec. II-E: the second term is small, so φ ≈ φ̂."""
        rs = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        inter = estimate_hfl_interactive(
            hfl_result.log, hfl_federation.validation, small_model_factory,
            hfl_federation.locals,
        )
        assert pearson_correlation(rs.totals, inter.totals) > 0.9

    def test_uploads_hvp_vectors(self, hfl_result, hfl_federation):
        """Algorithm 1's extra cost: one p-vector upload per participant per
        epoch after the first (level-1 privacy)."""
        ledger = CostLedger()
        estimate_hfl_interactive(
            hfl_result.log, hfl_federation.validation, small_model_factory,
            hfl_federation.locals, ledger=ledger,
        )
        p = small_model_factory().num_parameters()
        tau = hfl_result.log.n_epochs
        expected = (tau - 1) * 5 * p * 8
        assert ledger.comm_bytes["participant->server"] == expected

    def test_empty_log_rejected(self, hfl_federation):
        with pytest.raises(ValueError, match="empty"):
            estimate_hfl_interactive(
                TrainingLog(participant_ids=[0]),
                hfl_federation.validation,
                small_model_factory,
                hfl_federation.locals,
            )


class TestAdditivityLemma:
    def test_utility_change_additive_first_order(self, hfl_result, hfl_federation):
        """Lemma 3: ΔV^{-S} = Σ_{i∈S} ΔV^{-i} holds exactly for the
        first-order estimator (it is linear in δ)."""
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        # Removing {0, 1} vs removing 0 and 1 separately.
        combined = report.totals[0] + report.totals[1]
        assert combined == pytest.approx(
            report.totals[[0, 1]].sum(), abs=1e-12
        )

    def test_shapley_equals_negative_delta_v(self, hfl_result, hfl_federation):
        """Eq. 13: with additivity, φ_i reduces to −ΔV^{-i}; check that the
        estimator's totals equal the per-epoch sums of −⟨v_t, ΔG_t^{-i}⟩
        with ΔG_t^{-i} = −δ_{t,i}/n."""
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        model = small_model_factory()
        manual = np.zeros(5)
        for record in hfl_result.log.records:
            v = validation_gradient(
                model, record.theta_before, hfl_federation.validation
            )
            for i in range(5):
                delta_g = -record.local_updates[i] / 5
                manual[i] += -(v @ delta_g)
        np.testing.assert_allclose(report.totals, manual, atol=1e-10)
