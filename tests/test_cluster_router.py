"""Router hardening: typed failures, passthrough, aggregation, tracing.

Drives a :class:`ClusterRouter` over a :class:`StaticTopology` of
in-process :class:`EvaluationHTTPServer` workers (real sockets, no child
processes — the supervisor's process management is covered by
``tests/test_cluster_chaos.py``).  The regression surface here is the
failure ladder: a downed shard must answer 503 with ``Retry-After``, a
wedged one 504, worker-side refusals must relay verbatim, and *no*
routing failure may ever surface as a bare 500.
"""

import http.client
import itertools
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.io import save_vfl_training_log
from repro.obs import Observability
from repro.serve import (
    ClusterRouter,
    EvaluationHTTPServer,
    EvaluationService,
    StaticTopology,
)
from repro.serve.http import MAX_BODY_BYTES
from repro.serve.resilience import CircuitBreaker
from tests.test_obs_registry import parse_prometheus

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def vfl_log_path(vfl_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster_router") / "vfl_run.npz"
    save_vfl_training_log(vfl_result.log, path)
    return str(path)


@pytest.fixture()
def workers():
    servers = [
        EvaluationHTTPServer(("127.0.0.1", 0), EvaluationService())
        for _ in range(2)
    ]
    for server in servers:
        server.serve_background()
    yield servers
    for server in servers:
        server.shutdown()
        server.server_close()
        server.service.close()


@pytest.fixture()
def cluster(workers):
    topology = StaticTopology(
        {index: ("127.0.0.1", server.port) for index, server in enumerate(workers)}
    )
    router = ClusterRouter(("127.0.0.1", 0), topology)
    router.serve_background()
    yield router, topology, workers
    router.shutdown()
    router.server_close()


def _get(router, path):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{router.port}{path}", timeout=30
        ) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _post(router, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{router.port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _key_for_shard(topology, shard, prefix="probe"):
    """A key the ring assigns to ``shard`` (exists for any shard: brute force)."""
    for i in range(10000):
        key = f"{prefix}-{i}"
        if topology.ring.shard_for(key) == shard:
            return key
    raise AssertionError(f"no key found for shard {shard}")


def _dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]  # released on close: refuses connections


# ------------------------------------------------------------------ routing


class TestRouting:
    def test_register_lands_on_the_ring_assigned_worker(
        self, cluster, vfl_log_path
    ):
        router, topology, workers = cluster
        run_id = "vfl-routing-test"
        status, body, _ = _post(
            router, "/runs", {"kind": "vfl", "log_path": vfl_log_path,
                              "run_id": run_id}
        )
        assert status == 201 and body["run_id"] == run_id
        owner = topology.ring.shard_for(run_id)
        owner_runs = [r["run_id"] for r in workers[owner].service.runs()]
        other_runs = [r["run_id"] for r in workers[1 - owner].service.runs()]
        assert run_id in owner_runs and run_id not in other_runs

    def test_router_mints_run_ids_when_absent(self, cluster, vfl_log_path):
        router, topology, workers = cluster
        status, body, _ = _post(
            router, "/runs", {"kind": "vfl", "log_path": vfl_log_path}
        )
        assert status == 201
        run_id = body["run_id"]
        assert run_id.startswith("vfl-c")
        owner = topology.ring.shard_for(run_id)
        assert run_id in [r["run_id"] for r in workers[owner].service.runs()]

    def test_queries_proxy_to_the_owner_and_aggregate_listing(
        self, cluster, vfl_log_path
    ):
        router, topology, workers = cluster
        ids = ["vfl-q-a", "vfl-q-b", "vfl-q-c"]
        for run_id in ids:
            _post(router, "/runs", {"kind": "vfl", "log_path": vfl_log_path,
                                    "run_id": run_id})
        for run_id in ids:
            status, body, _ = _get(router, f"/runs/{run_id}/contributions")
            assert status == 200
            assert len(body["totals"]) == len(body["participant_ids"])
            status, body, _ = _get(router, f"/runs/{run_id}/leaderboard?top=2")
            assert status == 200 and len(body["leaderboard"]) == 2
        status, body, _ = _get(router, "/runs")
        assert status == 200 and body["unavailable"] == []
        listed = {run["run_id"]: run["shard"] for run in body["runs"]}
        for run_id in ids:
            assert listed[run_id] == str(topology.ring.shard_for(run_id))

    def test_worker_404_relays_verbatim(self, cluster):
        router, _, _ = cluster
        status, body, _ = _get(router, "/runs/nonexistent/contributions")
        assert status == 404 and "error" in body

    def test_unknown_paths_and_methods_are_typed(self, cluster):
        router, _, _ = cluster
        status, _, _ = _get(router, "/runs/x/unknown")
        assert status == 404
        status, _, _ = _get(router, "/nope")
        assert status == 404
        conn = http.client.HTTPConnection("127.0.0.1", router.port, timeout=10)
        conn.request("PUT", "/runs", body=b"{}")
        response = conn.getresponse()
        assert response.status == 405
        assert "POST" in response.headers["Allow"]
        conn.close()

    def test_cluster_endpoint_maps_keys_to_shards(self, cluster):
        router, topology, _ = cluster
        status, body, _ = _get(router, "/cluster?key=vfl-xyz")
        assert status == 200
        assert body["shard"] == str(topology.ring.shard_for("vfl-xyz"))
        assert set(body["shards"]) == {"0", "1"}
        assert body["supervised"] is False


# ------------------------------------------------------------- body ladder


class TestPostBodyLadder:
    def test_missing_content_length_is_411(self, cluster):
        router, _, _ = cluster
        conn = http.client.HTTPConnection("127.0.0.1", router.port, timeout=10)
        conn.putrequest("POST", "/runs", skip_accept_encoding=True)
        conn.endheaders()
        response = conn.getresponse()
        assert response.status == 411
        conn.close()

    def test_oversized_body_is_413_before_reading(self, cluster):
        router, _, _ = cluster
        conn = http.client.HTTPConnection("127.0.0.1", router.port, timeout=10)
        conn.putrequest("POST", "/runs")
        conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        conn.endheaders()
        response = conn.getresponse()
        assert response.status == 413
        conn.close()

    def test_malformed_json_is_400(self, cluster):
        router, _, _ = cluster
        request = urllib.request.Request(
            f"http://127.0.0.1:{router.port}/runs",
            data=b"not json at all",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unroutable_spec_is_400(self, cluster):
        router, _, _ = cluster
        status, body, _ = _post(router, "/runs", {"log_path": "x.npz"})
        assert status == 400 and "kind" in body["error"]


# --------------------------------------------------------------- the ladder


class TestFailureLadder:
    def test_downed_shard_answers_503_with_retry_after(self, workers):
        """One live worker, one dead port: keys on the dead shard get the
        typed 503 (+Retry-After), keys on the live shard keep working."""
        topology = StaticTopology(
            {
                0: ("127.0.0.1", workers[0].port),
                1: ("127.0.0.1", _dead_port()),
            },
            retry_after_hint_s=7.0,
        )
        router = ClusterRouter(("127.0.0.1", 0), topology)
        router.serve_background()
        try:
            dead_key = _key_for_shard(topology, 1)
            status, body, headers = _get(
                router, f"/runs/{dead_key}/contributions"
            )
            assert status == 503
            assert headers["Retry-After"] == "7"
            assert "unavailable" in body["error"]
            assert body["retry_after_s"] == 7.0
            live_key = _key_for_shard(topology, 0)
            status, _, _ = _get(router, f"/runs/{live_key}/contributions")
            assert status == 404  # reached the live worker: not registered
        finally:
            router.shutdown()
            router.server_close()

    def test_breaker_opens_and_refuses_without_connecting(self, workers):
        topology = StaticTopology(
            {0: ("127.0.0.1", workers[0].port), 1: ("127.0.0.1", _dead_port())},
            breaker_failures=2,
            breaker_reset_s=60.0,
        )
        router = ClusterRouter(("127.0.0.1", 0), topology)
        router.serve_background()
        try:
            dead_key = _key_for_shard(topology, 1)
            for _ in range(2):
                status, _, _ = _get(router, f"/runs/{dead_key}/contributions")
                assert status == 503
            assert topology.breaker(1).state == CircuitBreaker.OPEN
            # Open breaker: still the typed 503, now without a dial.
            status, body, headers = _get(
                router, f"/runs/{dead_key}/contributions"
            )
            assert status == 503
            assert "circuit breaker open" in body["error"]
            assert "Retry-After" in headers
        finally:
            router.shutdown()
            router.server_close()

    def test_wedged_shard_answers_504(self, workers):
        """A socket that accepts but never answers: the proxy read runs
        out of budget and the router answers 504, not a hang or a 500."""
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        topology = StaticTopology(
            {
                0: ("127.0.0.1", workers[0].port),
                1: ("127.0.0.1", silent.getsockname()[1]),
            }
        )
        router = ClusterRouter(
            ("127.0.0.1", 0), topology, proxy_timeout_s=0.3
        )
        router.serve_background()
        try:
            wedged_key = _key_for_shard(topology, 1)
            status, body, _ = _get(router, f"/runs/{wedged_key}/contributions")
            assert status == 504
            assert body["timeout_s"] == 0.3
        finally:
            router.shutdown()
            router.server_close()
            silent.close()

    def test_no_routing_failure_is_ever_a_bare_500(self, workers):
        """Sweep every router-side failure mode; 500 never escapes."""
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        topology = StaticTopology(
            {
                0: ("127.0.0.1", _dead_port()),
                1: ("127.0.0.1", silent.getsockname()[1]),
            },
            breaker_failures=2,
            breaker_reset_s=60.0,
        )
        router = ClusterRouter(
            ("127.0.0.1", 0), topology, proxy_timeout_s=0.3
        )
        router.serve_background()
        try:
            seen = set()
            for shard in (0, 1):
                key = _key_for_shard(topology, shard)
                for _ in range(4):
                    status, _, _ = _get(router, f"/runs/{key}/contributions")
                    seen.add(status)
            # Fan-out endpoints degrade, never error.
            status, health, _ = _get(router, "/healthz")
            assert status == 200 and health["status"] == "degraded"
            assert set(health["down"]) <= {"0", "1"}
            status, _, _ = _get(router, "/runs")
            assert status == 200
            status, _, _ = _get(router, "/metricz")
            assert status == 200
            assert seen <= {503, 504}
        finally:
            router.shutdown()
            router.server_close()
            silent.close()


# ------------------------------------------------------------- aggregation


class TestAggregation:
    def test_healthz_merges_worker_reports(self, cluster):
        router, _, workers = cluster
        status, body, _ = _get(router, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 2 and body["down"] == []
        assert all(
            body["shards"][str(i)]["status"] == "ok" for i in range(2)
        )
        workers[1].shutdown()
        workers[1].server_close()
        status, body, _ = _get(router, "/healthz")
        assert status == 200
        assert body["status"] == "degraded"
        assert body["down"] == ["1"]
        assert body["shards"]["1"]["status"] == "down"

    def test_metricz_json_carries_router_and_worker_sections(self, cluster):
        router, _, _ = cluster
        _get(router, "/healthz")  # ensure some router latency exists
        status, body, _ = _get(router, "/metricz")
        assert status == 200
        assert set(body["workers"]) == {"0", "1"}
        assert body["router"]["latency"]["http"]["count"] >= 1
        assert "cache" in body["workers"]["0"]

    def test_merged_prometheus_passes_the_round_trip_parser(
        self, cluster, vfl_log_path
    ):
        router, _, _ = cluster
        _post(router, "/runs", {"kind": "vfl", "log_path": vfl_log_path,
                                "run_id": "vfl-prom"})
        _get(router, "/runs/vfl-prom/contributions")
        with urllib.request.urlopen(
            f"http://127.0.0.1:{router.port}/metricz?format=prometheus",
            timeout=30,
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        parsed = parse_prometheus(text)
        latency = parsed["repro_http_request_latency_seconds"]["samples"]
        workers_seen = {
            dict(labels).get("worker")
            for (name, labels) in latency
            if name == "repro_http_request_latency_seconds_count"
        }
        assert workers_seen == {"0", "1"}  # per-worker series, merged
        router_latency = parsed["repro_router_request_latency_seconds"]["samples"]
        assert any(
            dict(labels).get("worker") == "router"
            for _, labels in router_latency
        )
        assert parsed["repro_cluster_shards"]["samples"][
            ("repro_cluster_shards", ())
        ] == 2.0
        assert parsed["repro_cluster_shards_down"]["samples"][
            ("repro_cluster_shards_down", ())
        ] == 0.0

    def test_bad_metricz_format_is_400(self, cluster):
        router, _, _ = cluster
        status, body, _ = _get(router, "/metricz?format=yaml")
        assert status == 400 and "format" in body["error"]


# ----------------------------------------------------- collision-safe minting


class TestAutoIdSeeding:
    def test_minting_resumes_past_ids_already_on_the_shards(
        self, cluster, vfl_log_path
    ):
        """A restarted router must not re-mint ids a previous router
        handed out: the first mint seeds from the shards' registries."""
        router, topology, workers = cluster
        owner = topology.ring.shard_for("vfl-c7")
        conn = http.client.HTTPConnection(
            "127.0.0.1", workers[owner].port, timeout=30
        )
        conn.request(
            "POST",
            "/runs",
            body=json.dumps(
                {"kind": "vfl", "log_path": vfl_log_path, "run_id": "vfl-c7"}
            ),
            headers={"Content-Type": "application/json"},
        )
        assert conn.getresponse().status == 201
        conn.close()

        status, body, _ = _post(
            router, "/runs", {"kind": "vfl", "log_path": vfl_log_path}
        )
        assert status == 201
        assert body["run_id"] == "vfl-c8"

    def test_collision_with_an_unseen_id_remints_instead_of_400(
        self, cluster, vfl_log_path
    ):
        """A run registered behind the router's back after seeding: the
        mint collides, the worker answers 'already registered', and the
        router retries with the next id rather than relaying the 400."""
        router, topology, workers = cluster
        # Pretend seeding already happened on an empty cluster...
        router._auto_seeded = True
        router._auto_ids = itertools.count(1)
        # ...then an out-of-band registration takes vfl-c1.
        owner = topology.ring.shard_for("vfl-c1")
        conn = http.client.HTTPConnection(
            "127.0.0.1", workers[owner].port, timeout=30
        )
        conn.request(
            "POST",
            "/runs",
            body=json.dumps(
                {"kind": "vfl", "log_path": vfl_log_path, "run_id": "vfl-c1"}
            ),
            headers={"Content-Type": "application/json"},
        )
        assert conn.getresponse().status == 201
        conn.close()

        status, body, _ = _post(
            router, "/runs", {"kind": "vfl", "log_path": vfl_log_path}
        )
        assert status == 201
        assert body["run_id"] == "vfl-c2"

    def test_explicit_duplicate_run_id_still_relays_the_400(
        self, cluster, vfl_log_path
    ):
        router, _, _ = cluster
        spec = {"kind": "vfl", "log_path": vfl_log_path, "run_id": "vfl-dup"}
        status, _, _ = _post(router, "/runs", spec)
        assert status == 201
        status, body, _ = _post(router, "/runs", spec)
        assert status == 400
        assert "already registered" in body["error"]


# ------------------------------------------------------------ graceful drain


class TestGracefulDrain:
    def test_drain_sheds_new_work_and_finishes_in_flight(
        self, cluster, vfl_log_path, monkeypatch
    ):
        router, topology, workers = cluster
        run_id = "vfl-drain"
        status, _, _ = _post(
            router, "/runs", {"kind": "vfl", "log_path": vfl_log_path,
                              "run_id": run_id}
        )
        assert status == 201
        owner = workers[topology.ring.shard_for(run_id)]

        # Hold the owner's query open until released, so one request is
        # reliably in flight when the drain begins.
        release = threading.Event()
        real_query = owner.service.query

        def slow_query(method, *args, **kwargs):
            release.wait(30)
            return real_query(method, *args, **kwargs)

        monkeypatch.setattr(owner.service, "query", slow_query)
        results = {}

        def fetch():
            results["status"], results["body"], _ = _get(
                router, f"/runs/{run_id}/contributions"
            )

        in_flight = threading.Thread(target=fetch, daemon=True)
        in_flight.start()
        deadline = time.monotonic() + 10
        while router.in_flight.value < 1:
            assert time.monotonic() < deadline, "request never admitted"
            time.sleep(0.01)

        router.begin_drain()
        assert router.draining
        # New work: typed 503 with the drain's Retry-After hint.
        status, body, headers = _get(router, f"/runs/{run_id}/contributions")
        assert status == 503
        assert "draining" in body["error"]
        assert headers["Retry-After"] == "5"
        status, _, _ = _post(
            router, "/runs", {"kind": "vfl", "log_path": vfl_log_path}
        )
        assert status == 503
        # Health checks still answer: orchestrators see a drain, not an
        # outage.
        status, _, _ = _get(router, "/healthz")
        assert status == 200
        # The slow request is still running, so the drain isn't done...
        assert not router.await_drained(0.2)
        # ...until it finishes, successfully, despite the drain.
        release.set()
        in_flight.join(timeout=30)
        assert not in_flight.is_alive()
        assert results["status"] == 200
        assert "totals" in results["body"]
        assert router.await_drained(10)
        assert router.in_flight.value == 0


# ------------------------------------------------------------------ tracing


class TestTracePropagation:
    def test_one_request_is_one_trace_across_the_hop(self, vfl_log_path):
        """Router and worker are separate tracers; the propagated headers
        must stitch the worker's request span under the router's."""
        worker = EvaluationHTTPServer(
            ("127.0.0.1", 0),
            EvaluationService(obs=Observability(trace=True)),
        )
        worker.serve_background()
        topology = StaticTopology({0: ("127.0.0.1", worker.port)})
        router = ClusterRouter(
            ("127.0.0.1", 0), topology, obs=Observability(trace=True)
        )
        router.serve_background()
        try:
            _post(router, "/runs", {"kind": "vfl", "log_path": vfl_log_path,
                                    "run_id": "vfl-trace"})
            status, _, _ = _get(router, "/runs/vfl-trace/contributions")
            assert status == 200
            router_span = next(
                span
                for span in router.obs.tracer.spans()
                if span.name == "router.request"
                and span.attributes.get("path") == "/runs/vfl-trace/contributions"
            )
            worker_span = next(
                span
                for span in worker.service.obs.tracer.spans()
                if span.name == "http.request"
                and span.attributes.get("path") == "/runs/vfl-trace/contributions"
            )
            assert worker_span.trace_id == router_span.trace_id
            assert worker_span.parent_id == router_span.span_id
        finally:
            router.shutdown()
            router.server_close()
            worker.shutdown()
            worker.server_close()
            worker.service.close()
