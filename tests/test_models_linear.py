"""Tests for the analytic linear/logistic models vs autodiff and finite diffs."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    binary_cross_entropy_with_logits,
    grad,
    mse_loss,
)
from repro.models import LinearRegressionModel, LogisticRegressionModel, make_vfl_model

RNG = np.random.default_rng(31337)


@pytest.fixture(scope="module")
def regression_data():
    X = RNG.normal(size=(40, 6))
    theta_true = RNG.normal(size=6)
    y = X @ theta_true + 0.1 * RNG.normal(size=40)
    return X, y


@pytest.fixture(scope="module")
def classification_data():
    X = RNG.normal(size=(50, 5))
    theta_true = RNG.normal(size=5)
    y = (X @ theta_true + 0.3 * RNG.normal(size=50) > 0).astype(float)
    return X, y


class TestLinearRegression:
    def test_loss_matches_autodiff(self, regression_data):
        X, y = regression_data
        theta = RNG.normal(size=6)
        model = LinearRegressionModel()
        ref = mse_loss(Tensor(X) @ Tensor(theta), y).item()
        assert model.loss(theta, X, y) == pytest.approx(ref, abs=1e-12)

    def test_gradient_matches_autodiff(self, regression_data):
        X, y = regression_data
        theta = RNG.normal(size=6)
        t = Tensor(theta, requires_grad=True)
        (g_ref,) = grad(mse_loss(Tensor(X) @ t, y), [t])
        g = LinearRegressionModel().gradient(theta, X, y)
        np.testing.assert_allclose(g, g_ref.data, atol=1e-12)

    def test_hessian_is_data_gram(self, regression_data):
        X, y = regression_data
        H = LinearRegressionModel().hessian(np.zeros(6), X, y)
        np.testing.assert_allclose(H, 2 * X.T @ X / len(X), atol=1e-12)

    def test_hessian_psd(self, regression_data):
        X, y = regression_data
        H = LinearRegressionModel().hessian(np.zeros(6), X, y)
        eigvals = np.linalg.eigvalsh(H)
        assert eigvals.min() >= -1e-10

    def test_hvp_matches_hessian(self, regression_data):
        X, y = regression_data
        model = LinearRegressionModel()
        theta = RNG.normal(size=6)
        v = RNG.normal(size=6)
        H = model.hessian(theta, X, y)
        np.testing.assert_allclose(model.hvp(theta, X, y, v), H @ v, atol=1e-12)

    def test_residual(self, regression_data):
        X, y = regression_data
        theta = RNG.normal(size=6)
        np.testing.assert_allclose(
            LinearRegressionModel().residual(theta, X, y), X @ theta - y
        )

    def test_gradient_descent_converges(self, regression_data):
        X, y = regression_data
        model = LinearRegressionModel()
        theta = np.zeros(6)
        for _ in range(500):
            theta -= 0.05 * model.gradient(theta, X, y)
        assert model.score(theta, X, y) > 0.95

    def test_score_of_mean_predictor_is_zero(self):
        y = RNG.normal(size=30)
        X = np.zeros((30, 2))
        assert LinearRegressionModel().score(np.zeros(2), X, y - y.mean()) == pytest.approx(
            0.0, abs=1e-9
        )


class TestLogisticRegression:
    def test_loss_matches_autodiff(self, classification_data):
        X, y = classification_data
        theta = RNG.normal(size=5)
        ref = binary_cross_entropy_with_logits(Tensor(X) @ Tensor(theta), y).item()
        assert LogisticRegressionModel().loss(theta, X, y) == pytest.approx(ref, abs=1e-12)

    def test_gradient_matches_autodiff(self, classification_data):
        X, y = classification_data
        theta = RNG.normal(size=5)
        t = Tensor(theta, requires_grad=True)
        (g_ref,) = grad(binary_cross_entropy_with_logits(Tensor(X) @ t, y), [t])
        g = LogisticRegressionModel().gradient(theta, X, y)
        np.testing.assert_allclose(g, g_ref.data, atol=1e-12)

    def test_hessian_matches_finite_difference(self, classification_data):
        X, y = classification_data
        model = LogisticRegressionModel()
        theta = RNG.normal(size=5) * 0.5
        H = model.hessian(theta, X, y)
        eps = 1e-6
        for k in range(5):
            e = np.zeros(5)
            e[k] = eps
            col = (model.gradient(theta + e, X, y) - model.gradient(theta - e, X, y)) / (
                2 * eps
            )
            np.testing.assert_allclose(H[:, k], col, atol=1e-6)

    def test_hvp_matches_hessian(self, classification_data):
        X, y = classification_data
        model = LogisticRegressionModel()
        theta = RNG.normal(size=5)
        v = RNG.normal(size=5)
        np.testing.assert_allclose(
            model.hvp(theta, X, y, v), model.hessian(theta, X, y) @ v, atol=1e-12
        )

    def test_hessian_psd(self, classification_data):
        X, y = classification_data
        H = LogisticRegressionModel().hessian(RNG.normal(size=5), X, y)
        assert np.linalg.eigvalsh(H).min() >= -1e-10

    def test_sigmoid_extremes(self):
        model = LogisticRegressionModel()
        out = model._sigmoid(np.array([-1e4, 0.0, 1e4]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_training_improves_accuracy(self, classification_data):
        X, y = classification_data
        model = LogisticRegressionModel()
        theta = np.zeros(5)
        for _ in range(300):
            theta -= 0.5 * model.gradient(theta, X, y)
        assert model.score(theta, X, y) > 0.85

    def test_predict_labels(self, classification_data):
        X, y = classification_data
        preds = LogisticRegressionModel().predict(np.zeros(5), X)
        assert set(np.unique(preds)) <= {0, 1}


class TestFactory:
    def test_regression(self):
        assert isinstance(make_vfl_model("regression"), LinearRegressionModel)

    def test_binary(self):
        assert isinstance(make_vfl_model("binary"), LogisticRegressionModel)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_vfl_model("multiclass")
