"""Crash-safe checkpointing and bit-for-bit resume.

The acceptance criterion of the robustness PR: kill a checkpointed run
mid-training, resume it, and get the *identical* training log — same
``θ_t``, same ``δ_{t,i}``, same DIG-FL scores — as a run that never
crashed.  Plus the failure modes: corrupt checkpoints are refused loudly,
mismatched coalitions are refused, a missing checkpoint resumes from
scratch.
"""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, estimate_vfl_first_order
from repro.data import boston_like, build_hfl_federation, build_vfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule
from repro.robust import (
    CheckpointError,
    CheckpointManager,
    RobustConfig,
    ScreenConfig,
    UpdateScreener,
)
from repro.vfl import VFLTrainer

from tests.conftest import small_model_factory


class _Killed(RuntimeError):
    """The simulated crash."""


class KillingCheckpoint(CheckpointManager):
    """Checkpoint manager that crashes the run after saving round ``kill_after``."""

    def __init__(self, directory, *, kind="hfl", kill_after=3):
        super().__init__(directory, kind=kind)
        self.kill_after = kill_after

    def save(self, log):
        super().save(log)
        if log.n_epochs >= self.kill_after:
            raise _Killed(f"killed after round {log.n_epochs}")


@pytest.fixture(scope="module")
def federation():
    return build_hfl_federation(mnist_like(300, seed=0), 3, n_mislabeled=1, seed=0)


def _trainer(epochs=6):
    return HFLTrainer(
        small_model_factory, epochs=epochs, lr_schedule=LRSchedule(0.5)
    )


def assert_logs_identical(log_a, log_b):
    assert log_a.n_epochs == log_b.n_epochs
    for a, b in zip(log_a.records, log_b.records):
        np.testing.assert_array_equal(a.theta_before, b.theta_before)
        np.testing.assert_array_equal(a.local_updates, b.local_updates)
        np.testing.assert_array_equal(a.weights, b.weights)


class TestHFLKillAndResume:
    def test_resumed_log_bit_for_bit(self, federation, tmp_path):
        reference = _trainer().train(
            federation.locals, federation.validation, track_validation=True
        )
        killer = KillingCheckpoint(tmp_path, kill_after=3)
        with pytest.raises(_Killed):
            _trainer().train(
                federation.locals, federation.validation,
                track_validation=True, checkpoint=killer,
            )
        # The file on disk holds exactly the complete rounds.
        ckpt = CheckpointManager(tmp_path)
        assert ckpt.resume().n_epochs == 3
        resumed = _trainer().train(
            federation.locals, federation.validation,
            track_validation=True, checkpoint=ckpt, resume=True,
        )
        assert_logs_identical(reference.log, resumed.log)
        np.testing.assert_array_equal(
            reference.final_theta, resumed.final_theta
        )

    def test_digfl_scores_identical_after_resume(self, federation, tmp_path):
        reference = _trainer().train(
            federation.locals, federation.validation, track_validation=True
        )
        killer = KillingCheckpoint(tmp_path, kill_after=2)
        with pytest.raises(_Killed):
            _trainer().train(
                federation.locals, federation.validation,
                track_validation=True, checkpoint=killer,
            )
        resumed = _trainer().train(
            federation.locals, federation.validation, track_validation=True,
            checkpoint=CheckpointManager(tmp_path), resume=True,
        )
        ref_report = estimate_hfl_resource_saving(
            reference.log, federation.validation, small_model_factory
        )
        res_report = estimate_hfl_resource_saving(
            resumed.log, federation.validation, small_model_factory
        )
        np.testing.assert_array_equal(ref_report.totals, res_report.totals)

    def test_resume_with_screener_matches(self, federation, tmp_path):
        """warm_start must leave the resumed screening state identical."""
        reference = _trainer().train(
            federation.locals, federation.validation,
            screener=UpdateScreener(ScreenConfig()),
        )
        killer = KillingCheckpoint(tmp_path, kill_after=3)
        with pytest.raises(_Killed):
            _trainer().train(
                federation.locals, federation.validation,
                screener=UpdateScreener(ScreenConfig()), checkpoint=killer,
            )
        resumed = _trainer().train(
            federation.locals, federation.validation,
            screener=UpdateScreener(ScreenConfig()),
            checkpoint=CheckpointManager(tmp_path), resume=True,
        )
        assert_logs_identical(reference.log, resumed.log)

    def test_fresh_resume_trains_from_scratch(self, federation, tmp_path):
        """resume=True with no checkpoint on disk is a cold start."""
        ckpt = CheckpointManager(tmp_path / "empty")
        result = _trainer(epochs=2).train(
            federation.locals, checkpoint=ckpt, resume=True
        )
        assert result.log.n_epochs == 2
        assert ckpt.exists()

    def test_completed_run_resumes_to_noop(self, federation, tmp_path):
        ckpt = CheckpointManager(tmp_path)
        first = _trainer(epochs=3).train(
            federation.locals, checkpoint=ckpt, resume=True
        )
        again = _trainer(epochs=3).train(
            federation.locals, checkpoint=ckpt, resume=True
        )
        assert_logs_identical(first.log, again.log)

    def test_resume_requires_checkpoint(self, federation):
        with pytest.raises(ValueError, match="resume"):
            _trainer().train(federation.locals, resume=True)

    def test_coalition_mismatch_rejected(self, federation, tmp_path):
        ckpt = CheckpointManager(tmp_path)
        _trainer(epochs=2).train(federation.locals, checkpoint=ckpt)
        with pytest.raises(ValueError, match="cannot resume"):
            _trainer(epochs=2).train(
                federation.locals, participants=[0, 1],
                checkpoint=ckpt, resume=True,
            )


class TestVFLKillAndResume:
    @pytest.fixture(scope="class")
    def split(self):
        return build_vfl_federation(
            boston_like(seed=0).standardized(), 4, max_rows=150, seed=1
        )

    def _trainer(self, split, epochs=8):
        return VFLTrainer(
            "regression", split.feature_blocks, epochs, LRSchedule(0.1)
        )

    def test_resumed_log_bit_for_bit(self, split, tmp_path):
        reference = self._trainer(split).train(
            split.train, split.validation, track_losses=True
        )
        killer = KillingCheckpoint(tmp_path, kind="vfl", kill_after=4)
        with pytest.raises(_Killed):
            self._trainer(split).train(
                split.train, split.validation, track_losses=True,
                checkpoint=killer,
            )
        resumed = self._trainer(split).train(
            split.train, split.validation, track_losses=True,
            checkpoint=CheckpointManager(tmp_path, kind="vfl"), resume=True,
        )
        assert resumed.log.n_epochs == reference.log.n_epochs
        for a, b in zip(reference.log.records, resumed.log.records):
            np.testing.assert_array_equal(a.theta_before, b.theta_before)
            np.testing.assert_array_equal(a.train_gradient, b.train_gradient)
        np.testing.assert_array_equal(reference.theta, resumed.theta)
        np.testing.assert_array_equal(
            estimate_vfl_first_order(reference.log).totals,
            estimate_vfl_first_order(resumed.log).totals,
        )

    def test_party_mismatch_rejected(self, split, tmp_path):
        ckpt = CheckpointManager(tmp_path, kind="vfl")
        self._trainer(split, epochs=2).train(
            split.train, split.validation, checkpoint=ckpt
        )
        with pytest.raises(ValueError, match="cannot resume"):
            self._trainer(split, epochs=2).train(
                split.train, split.validation, parties=[0, 1],
                checkpoint=ckpt, resume=True,
            )


class TestCheckpointIntegrity:
    def test_truncated_checkpoint_refused(self, federation, tmp_path):
        ckpt = CheckpointManager(tmp_path)
        _trainer(epochs=2).train(federation.locals, checkpoint=ckpt)
        raw = ckpt.path.read_bytes()
        ckpt.path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="integrity"):
            ckpt.resume()

    def test_wrong_kind_refused(self, federation, tmp_path):
        ckpt = CheckpointManager(tmp_path)
        _trainer(epochs=2).train(federation.locals, checkpoint=ckpt)
        with pytest.raises(CheckpointError, match="not a VFL"):
            CheckpointManager(tmp_path, kind="vfl").resume()

    def test_bad_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            CheckpointManager(tmp_path, kind="xfl")

    def test_clear_removes_file(self, federation, tmp_path):
        ckpt = CheckpointManager(tmp_path)
        _trainer(epochs=1).train(federation.locals, checkpoint=ckpt)
        assert ckpt.exists()
        ckpt.clear()
        assert not ckpt.exists()
        assert ckpt.resume() is None
        ckpt.clear()  # idempotent

    def test_no_tmp_litter_after_save(self, federation, tmp_path):
        ckpt = CheckpointManager(tmp_path)
        _trainer(epochs=2).train(federation.locals, checkpoint=ckpt)
        assert [p.name for p in tmp_path.iterdir()] == [ckpt.FILENAME]


class TestRobustConfig:
    def test_default_is_seed_regime(self):
        config = RobustConfig()
        assert config.is_default()
        assert config.make_aggregator() is None
        assert config.make_screener() is None
        assert config.make_checkpoint("hfl") is None

    def test_resume_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            RobustConfig(resume=True)

    def test_factories_round_trip_the_flags(self, tmp_path):
        config = RobustConfig(
            aggregator="trimmed", trim_ratio=0.3, screen=True,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert not config.is_default()
        agg = config.make_aggregator()
        assert agg.name == "trimmed" and agg.trim_ratio == 0.3
        assert config.make_screener() is not None
        ckpt = config.make_checkpoint("vfl")
        assert ckpt.kind == "vfl" and ckpt.directory == tmp_path
