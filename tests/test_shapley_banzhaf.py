"""Tests for Banzhaf values and their relationship to Shapley values."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import pearson_correlation
from repro.shapley import (
    CallableUtility,
    exact_banzhaf,
    exact_banzhaf_values,
    exact_shapley_values,
    mc_banzhaf,
    mc_banzhaf_values,
)


def additive_utility(values):
    values = np.asarray(values, dtype=np.float64)
    return CallableUtility(len(values), lambda s: float(sum(values[i] for i in s)))


def random_game(n, seed):
    """Monotone-ish game: value grows with size plus bounded noise.

    (Pure-noise utilities have no player structure at all, so the two
    indices would only correlate by chance there.)
    """
    rng = np.random.default_rng(seed)
    table = {frozenset(): 0.0}

    def fn(coalition):
        key = frozenset(coalition)
        if key not in table:
            table[key] = len(key) + 0.5 * float(rng.normal())
        return table[key]

    return CallableUtility(n, fn)


class TestExactBanzhaf:
    def test_additive_game_equals_values(self):
        values = np.array([2.0, -1.0, 0.5])
        np.testing.assert_allclose(
            exact_banzhaf_values(additive_utility(values)), values, atol=1e-12
        )

    def test_additive_game_equals_shapley(self):
        """For additive games both indices return the item values."""
        util = additive_utility([1.0, 4.0, -2.0, 0.3])
        np.testing.assert_allclose(
            exact_banzhaf_values(util), exact_shapley_values(util), atol=1e-12
        )

    def test_glove_game_differs_from_shapley(self):
        """Banzhaf of the glove game: β = (1/4, 1/4, 3/4) ≠ Shapley."""

        def fn(coalition):
            return float(min(len(coalition & {0, 1}), len(coalition & {2})))

        util = CallableUtility(3, fn)
        banzhaf = exact_banzhaf_values(util)
        np.testing.assert_allclose(banzhaf, [0.25, 0.25, 0.75], atol=1e-12)
        shapley = exact_shapley_values(util)
        assert not np.allclose(banzhaf, shapley)

    def test_banzhaf_not_efficient(self):
        """Σβ generally ≠ V(N) — the axiom Banzhaf gives up."""

        def fn(coalition):
            return float(min(len(coalition & {0, 1}), len(coalition & {2})))

        util = CallableUtility(3, fn)
        banzhaf = exact_banzhaf_values(util)
        assert banzhaf.sum() != pytest.approx(util(frozenset({0, 1, 2})))

    def test_null_player_zero(self):
        def fn(coalition):
            return float(len(coalition & {1, 2}))

        values = exact_banzhaf_values(CallableUtility(3, fn))
        assert values[0] == pytest.approx(0.0, abs=1e-12)

    @given(seed=st.integers(0, 5000))
    def test_symmetry(self, seed):
        """Interchangeable players get equal Banzhaf values."""
        rng = np.random.default_rng(seed)
        base: dict[frozenset, float] = {frozenset(): 0.0}

        def fn(coalition):
            # Value depends only on |S| and whether 2 ∈ S → players 0, 1
            # are symmetric by construction.
            key = (len(coalition), 2 in coalition)
            if key not in base:
                base[key] = float(rng.normal())
            return base[key]

        values = exact_banzhaf_values(CallableUtility(3, fn))
        assert values[0] == pytest.approx(values[1], abs=1e-12)

    def test_strong_correlation_with_shapley_on_heterogeneous_games(self):
        """With genuine per-player structure (additive base + bounded
        interaction noise) the two indices rank players almost identically."""
        rng = np.random.default_rng(3)
        weights = np.array([3.0, 1.0, -0.5, 2.0, 0.2])
        table: dict[frozenset, float] = {}

        def fn(coalition):
            key = frozenset(coalition)
            if key not in table:
                base = float(sum(weights[i] for i in key))
                table[key] = base + 0.2 * float(rng.normal()) if key else 0.0
            return table[key]

        util = CallableUtility(5, fn)
        banzhaf = exact_banzhaf_values(util)
        shapley = exact_shapley_values(util)
        assert pearson_correlation(banzhaf, shapley) > 0.95


class TestMCBanzhaf:
    def test_converges_to_exact(self):
        util = random_game(4, seed=7)
        exact = exact_banzhaf_values(util)
        estimate = mc_banzhaf_values(util, n_samples=800, seed=8)
        np.testing.assert_allclose(estimate, exact, atol=0.25)
        assert pearson_correlation(estimate, exact) > 0.9

    def test_exact_on_additive(self):
        values = np.array([1.5, -0.5])
        estimate = mc_banzhaf_values(additive_utility(values), n_samples=10, seed=0)
        np.testing.assert_allclose(estimate, values, atol=1e-12)

    def test_deterministic_given_seed(self):
        util = additive_utility([1.0, 2.0, 3.0])
        a = mc_banzhaf_values(util, n_samples=20, seed=5)
        b = mc_banzhaf_values(util, n_samples=20, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_bad_samples(self):
        with pytest.raises(ValueError):
            mc_banzhaf_values(additive_utility([1.0]), n_samples=0)


class TestReports:
    def test_exact_report(self):
        report = exact_banzhaf(additive_utility([1.0, 2.0]))
        assert report.method == "banzhaf"
        assert report.extra["coalition_evaluations"] == 4

    def test_mc_report(self):
        report = mc_banzhaf(additive_utility([1.0, 2.0]), n_samples=10, seed=0)
        assert report.method == "banzhaf-mc"


class TestBanzhafOnFL:
    def test_agrees_with_shapley_on_federation(self, hfl_result, hfl_federation):
        """On the real FL utility the two indices rank participants the
        same way — supporting DIG-FL's additive-model reading where they
        coincide exactly."""
        from repro.shapley import HFLRetrainUtility

        from tests.conftest import small_model_factory, small_model_factory as f

        trainer_factory = small_model_factory
        del f
        from repro.hfl import HFLTrainer
        from repro.nn import LRSchedule

        trainer = HFLTrainer(trainer_factory, 4, LRSchedule(0.5))
        utility = HFLRetrainUtility(
            trainer,
            hfl_federation.locals,
            hfl_federation.validation,
            init_theta=hfl_result.log.initial_theta,
        )
        banzhaf = exact_banzhaf_values(utility)
        shapley = exact_shapley_values(utility)
        assert pearson_correlation(banzhaf, shapley) > 0.95
