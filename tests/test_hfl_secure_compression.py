"""Tests for secure aggregation (and its DIG-FL incompatibility) and
update compression."""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving
from repro.hfl import (
    AdversarialHFLTrainer,
    SecureAggregationSession,
    quantize,
    random_sparsify,
    topk_sparsify,
)
from repro.metrics import pearson_correlation
from repro.nn import LRSchedule

from tests.conftest import small_model_factory

RNG = np.random.default_rng(99)


class TestSecureAggregation:
    def test_masks_cancel_in_sum(self):
        session = SecureAggregationSession(5, 20, seed=0)
        updates = RNG.normal(size=(5, 20))
        masked = session.mask_all(updates, round_index=1)
        np.testing.assert_allclose(
            session.aggregate(masked), updates.sum(axis=0), atol=1e-9
        )

    def test_individual_uploads_hidden(self):
        """A masked upload must not resemble the true update."""
        session = SecureAggregationSession(4, 50, seed=1)
        updates = 0.01 * RNG.normal(size=(4, 50))
        masked = session.mask_all(updates, round_index=2)
        for i in range(4):
            # Mask magnitude dwarfs the update: correlation ~ 0.
            assert abs(pearson_correlation(masked[i], updates[i])) < 0.5
            assert np.linalg.norm(masked[i] - updates[i]) > 10 * np.linalg.norm(
                updates[i]
            )

    def test_masks_fresh_per_round(self):
        session = SecureAggregationSession(3, 10, seed=2)
        update = np.zeros(10)
        a = session.mask_update(0, update, round_index=1)
        b = session.mask_update(0, update, round_index=2)
        assert not np.allclose(a, b)

    def test_deterministic(self):
        a = SecureAggregationSession(3, 10, seed=3).mask_update(1, np.ones(10), 1)
        b = SecureAggregationSession(3, 10, seed=3).mask_update(1, np.ones(10), 1)
        np.testing.assert_array_equal(a, b)

    def test_single_party_no_masks(self):
        session = SecureAggregationSession(1, 5, seed=0)
        update = RNG.normal(size=5)
        np.testing.assert_array_equal(session.mask_update(0, update, 1), update)

    def test_shape_validation(self):
        session = SecureAggregationSession(3, 10, seed=0)
        with pytest.raises(ValueError, match="shape"):
            session.mask_update(0, np.zeros(5), 1)
        with pytest.raises(ValueError, match="unknown participant"):
            session.mask_update(9, np.zeros(10), 1)
        with pytest.raises(ValueError, match="expected"):
            session.aggregate(np.zeros((2, 10)))

    def test_digfl_incompatible_with_masked_logs(self, hfl_result, hfl_federation):
        """The documented boundary: masking per-party uploads destroys the
        contribution signal while the aggregate — hence training — is
        unchanged."""
        log = hfl_result.log
        p = log.initial_theta.size
        session = SecureAggregationSession(5, p, seed=4)

        clear_report = estimate_hfl_resource_saving(
            log, hfl_federation.validation, small_model_factory
        )

        # Build a masked copy of the log (what the server would see).
        from repro.hfl import EpochRecord, TrainingLog

        masked_log = TrainingLog(participant_ids=log.participant_ids)
        for record in log.records:
            masked_updates = session.mask_all(record.local_updates, record.epoch)
            # Aggregate (mean) is preserved exactly...
            np.testing.assert_allclose(
                masked_updates.mean(axis=0),
                record.local_updates.mean(axis=0),
                atol=1e-9,
            )
            masked_log.records.append(
                EpochRecord(
                    epoch=record.epoch,
                    lr=record.lr,
                    theta_before=record.theta_before,
                    local_updates=masked_updates,
                    weights=record.weights,
                )
            )
        masked_report = estimate_hfl_resource_saving(
            masked_log, hfl_federation.validation, small_model_factory
        )
        # ...but the per-participant signal is gone.
        assert (
            abs(pearson_correlation(masked_report.totals, clear_report.totals)) < 0.9
        )
        # The *sum* of contributions is preserved (it only depends on the
        # aggregate) — a nice sanity identity.
        assert masked_report.totals.sum() == pytest.approx(
            clear_report.totals.sum(), rel=1e-6
        )


class TestCompressionTransforms:
    def test_topk_keeps_largest(self):
        update = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        out = topk_sparsify(0.4)(update, 1)
        np.testing.assert_allclose(out, [0.0, -5.0, 0.0, 3.0, 0.0])

    def test_topk_at_least_one(self):
        out = topk_sparsify(0.01)(np.array([1.0, 2.0, 3.0]), 1)
        assert np.count_nonzero(out) == 1

    def test_random_sparsify_unbiased(self):
        update = np.ones(20_000)
        transform = random_sparsify(0.25, seed=0)
        out = transform(update, 1)
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        kept = np.count_nonzero(out) / out.size
        assert kept == pytest.approx(0.25, abs=0.02)

    def test_random_sparsify_seeded_per_epoch(self):
        transform = random_sparsify(0.5, seed=1)
        a = transform(np.ones(100), 1)
        b = transform(np.ones(100), 2)
        assert not np.array_equal(a, b)
        np.testing.assert_array_equal(a, random_sparsify(0.5, seed=1)(np.ones(100), 1))

    def test_quantize_reduces_levels(self):
        update = RNG.normal(size=1000)
        out = quantize(3)(update, 1)
        assert len(np.unique(out)) <= 2**3
        # Low distortion at 8 bits.
        out8 = quantize(8)(update, 1)
        assert np.abs(out8 - update).max() < np.abs(update).max() / 100

    def test_quantize_zero_vector(self):
        np.testing.assert_array_equal(quantize(4)(np.zeros(5), 1), np.zeros(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            topk_sparsify(0.0)
        with pytest.raises(ValueError):
            random_sparsify(1.0)
        with pytest.raises(ValueError):
            quantize(0)


class TestDIGFLUnderCompression:
    def test_contribution_ranking_survives_topk(self, hfl_federation):
        """With 10% top-k sparsification on every participant, DIG-FL must
        still put the mislabeled participant at the bottom."""
        transforms = {i: topk_sparsify(0.1) for i in range(5)}
        trainer = AdversarialHFLTrainer(
            small_model_factory, 8, LRSchedule(0.5), attacks=transforms
        )
        result = trainer.train(hfl_federation.locals, hfl_federation.validation)
        report = estimate_hfl_resource_saving(
            result.log, hfl_federation.validation, small_model_factory
        )
        worst = int(np.argmin(report.totals))
        assert hfl_federation.qualities[worst] in ("mislabeled", "noniid")
