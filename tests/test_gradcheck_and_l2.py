"""Tests for the public gradcheck utilities and GLM L2 regularisation."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradcheck, hvpcheck, numeric_gradient, tanh, tsum
from repro.models import LinearRegressionModel, LogisticRegressionModel, make_vfl_model

RNG = np.random.default_rng(515)


class TestGradcheck:
    def test_passes_on_correct_gradient(self):
        def fn(ts):
            (x,) = ts
            return tsum(tanh(x) * tanh(x))

        assert gradcheck(fn, [RNG.normal(size=(3, 4))])

    def test_two_inputs(self):
        def fn(ts):
            a, b = ts
            return tsum(a * b) + tsum(a * a)

        assert gradcheck(fn, [RNG.normal(size=5), RNG.normal(size=5)])

    def test_fails_on_wrong_gradient(self):
        """A deliberately broken op must be caught."""
        from repro.autodiff.tensor import _make, as_tensor

        def broken_double(a):
            a = as_tensor(a)

            def build(_out):
                def vjp(g):
                    return (g,)  # WRONG: should be 2g

                return vjp

            return _make(2.0 * a.data, (a,), build, "broken")

        def fn(ts):
            return tsum(broken_double(ts[0]))

        with pytest.raises(AssertionError, match="gradcheck failed"):
            gradcheck(fn, [RNG.normal(size=4)])

    def test_numeric_gradient_shapes(self):
        def fn(ts):
            return tsum(ts[0] ** 2.0)

        (g,) = numeric_gradient(fn, [np.ones((2, 3))])
        np.testing.assert_allclose(g, 2.0, atol=1e-5)


class TestHvpcheck:
    def test_passes_on_smooth_loss(self):
        X = Tensor(RNG.normal(size=(10, 4)))

        def fn(ts):
            (w,) = ts
            return tsum(tanh(X @ ts[0]) ** 2.0)

        assert hvpcheck(fn, [RNG.normal(size=4)], [RNG.normal(size=4)])


class TestL2Regularisation:
    def test_linear_l2_gradient_matches_finite_difference(self):
        model = LinearRegressionModel(l2=0.3)
        X = RNG.normal(size=(30, 5))
        y = RNG.normal(size=30)
        theta = RNG.normal(size=5)
        g = model.gradient(theta, X, y)
        eps = 1e-6
        for k in range(5):
            e = np.zeros(5)
            e[k] = eps
            numeric = (model.loss(theta + e, X, y) - model.loss(theta - e, X, y)) / (
                2 * eps
            )
            assert g[k] == pytest.approx(numeric, abs=1e-5)

    def test_logistic_l2_gradient_matches_finite_difference(self):
        model = LogisticRegressionModel(l2=0.1)
        X = RNG.normal(size=(40, 4))
        y = (RNG.random(40) > 0.5).astype(float)
        theta = RNG.normal(size=4)
        g = model.gradient(theta, X, y)
        eps = 1e-6
        for k in range(4):
            e = np.zeros(4)
            e[k] = eps
            numeric = (model.loss(theta + e, X, y) - model.loss(theta - e, X, y)) / (
                2 * eps
            )
            assert g[k] == pytest.approx(numeric, abs=1e-5)

    def test_l2_hvp_consistent_with_hessian(self):
        model = LinearRegressionModel(l2=0.5)
        X = RNG.normal(size=(20, 3))
        y = RNG.normal(size=20)
        theta = RNG.normal(size=3)
        v = RNG.normal(size=3)
        np.testing.assert_allclose(
            model.hvp(theta, X, y, v), model.hessian(theta, X, y) @ v, atol=1e-12
        )

    def test_l2_shrinks_solution(self):
        X = RNG.normal(size=(100, 4))
        y = X @ np.array([2.0, -1.0, 0.5, 3.0]) + 0.1 * RNG.normal(size=100)

        def solve(l2):
            model = LinearRegressionModel(l2=l2)
            theta = np.zeros(4)
            for _ in range(500):
                theta -= 0.05 * model.gradient(theta, X, y)
            return theta

        assert np.linalg.norm(solve(1.0)) < np.linalg.norm(solve(0.0))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressionModel(l2=-0.1)
        with pytest.raises(ValueError):
            LogisticRegressionModel(l2=-0.1)

    def test_factory_passes_l2(self):
        model = make_vfl_model("regression", l2=0.25)
        assert model.l2 == 0.25

    def test_factory_rejects_softmax_l2(self):
        with pytest.raises(ValueError, match="softmax"):
            make_vfl_model("multiclass", n_classes=3, l2=0.1)

    def test_default_is_unregularised(self):
        """l2=0 must reproduce the original paper formulation exactly."""
        X = RNG.normal(size=(20, 3))
        y = RNG.normal(size=20)
        theta = RNG.normal(size=3)
        plain = LinearRegressionModel()
        residual = X @ theta - y
        assert plain.loss(theta, X, y) == pytest.approx(float(np.mean(residual**2)))
