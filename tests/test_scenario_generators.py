"""Tests for the adverse-federation generators of the robustness suite."""

import numpy as np
import pytest

from repro.scenario import (
    AdverseRun,
    DirichletLabelSkew,
    FreeRiders,
    LabelNoise,
    VFLModalityDropout,
    cell_seed,
    get_scenario,
    scenario_grid,
    scenario_names,
)


class TestGrid:
    def test_default_grid_covers_the_issue_conditions(self):
        names = scenario_names()
        assert "dirichlet_a0.1" in names
        assert "dirichlet_a1" in names
        assert "label_noise_symmetric" in names
        assert "label_noise_pairwise" in names
        assert "free_rider" in names
        assert "vfl_modality_dropout" in names

    def test_get_scenario_roundtrip(self):
        for scenario in scenario_grid():
            assert get_scenario(scenario.name).name == scenario.name

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("meteor_strike")

    def test_cell_seed_stable_and_distinct(self):
        assert cell_seed(0, "free_rider", "digfl") == cell_seed(
            0, "free_rider", "digfl"
        )
        assert cell_seed(0, "free_rider", "digfl") != cell_seed(
            0, "free_rider", "dpvs"
        )
        assert cell_seed(0, "free_rider") != cell_seed(1, "free_rider")


class TestDirichlet:
    @pytest.fixture(scope="class")
    def run(self):
        return DirichletLabelSkew(alpha=0.1, epochs=3, n_samples=400).generate(7)

    def test_run_shape(self, run):
        assert isinstance(run, AdverseRun)
        assert run.kind == "hfl"
        assert run.log.n_epochs == 3
        assert len(run.bad_parties) == 1

    def test_histograms_in_metadata(self, run):
        histograms = run.metadata["class_histograms"]
        assert len(histograms) == run.n_parties
        # Histogram totals account for every training sample of each party.
        assert all(sum(h) > 0 for h in histograms)
        # alpha=0.1 skew: some party is missing some class entirely.
        assert any(0 in h for h in histograms)

    def test_bad_party_recorded(self, run):
        assert run.metadata["mislabeled_party"] == run.bad_parties[0]
        assert run.metadata["n_flipped"] > 0

    def test_deterministic(self):
        scenario = DirichletLabelSkew(alpha=0.1, epochs=3, n_samples=400)
        a, b = scenario.generate(3), scenario.generate(3)
        np.testing.assert_array_equal(
            a.log.records[-1].theta_after, b.log.records[-1].theta_after
        )
        assert a.bad_parties == b.bad_parties

    def test_seed_changes_bad_party_eventually(self):
        scenario = DirichletLabelSkew(alpha=0.1, epochs=1, n_samples=400)
        picks = {scenario.generate(s).bad_parties[0] for s in range(8)}
        assert len(picks) > 1


class TestLabelNoise:
    def test_rates_drive_bad_parties(self):
        scenario = LabelNoise(rates=(0.8, 0.4, 0.0), epochs=2, n_samples=300)
        run = scenario.generate(0)
        assert run.bad_parties == (0,)
        assert run.metadata["n_flipped"][0] > run.metadata["n_flipped"][1]
        assert run.metadata["n_flipped"][2] == 0

    def test_pairwise_noise_kind(self):
        run = LabelNoise(
            noise="pairwise", rates=(0.8, 0.0), epochs=2, n_samples=300
        ).generate(0)
        assert run.metadata["noise"] == "pairwise"

    def test_unknown_noise_refused(self):
        with pytest.raises(ValueError, match="symmetric.*pairwise"):
            LabelNoise(noise="salt_and_pepper")


class TestFreeRiders:
    def test_stale_rider_widens_k_but_is_not_asserted(self):
        scenario = FreeRiders(
            riders={0: "zero", 1: "noise_echo", 2: "stale"},
            epochs=2,
            n_samples=360,
        )
        run = scenario.generate(0)
        assert run.bad_parties == (0, 1)  # stale excluded
        assert run.bottom_k == 3  # but allowed in the bottom

    def test_unknown_rider_kind(self):
        with pytest.raises(ValueError, match="unknown rider kind"):
            FreeRiders(riders={0: "sloth"})

    def test_rider_outside_federation(self):
        with pytest.raises(ValueError, match="outside the federation"):
            FreeRiders(riders={9: "zero"}, n_parties=4)

    def test_all_riders_refused(self):
        with pytest.raises(ValueError, match="honest party"):
            FreeRiders(riders={0: "zero", 1: "zero"}, n_parties=2)

    def test_zero_rider_ships_zero_updates(self):
        run = FreeRiders(
            riders={0: "zero"}, n_parties=4, epochs=2, n_samples=320
        ).generate(1)
        for record in run.log.records:
            np.testing.assert_array_equal(
                record.local_updates[0], np.zeros_like(record.local_updates[0])
            )


class TestVFLModalityDropout:
    @pytest.fixture(scope="class")
    def run(self):
        return VFLModalityDropout(epochs=8, max_rows=200).generate(0)

    def test_participation_holes_after_dark_from(self, run):
        dark = run.metadata["dark_party"]
        dark_from = run.metadata["dark_from"]
        masks = np.stack([r.participation_mask() for r in run.log.records])
        # 1-indexed rounds: record i is round i+1.
        for i in range(run.log.n_epochs):
            assert masks[i, dark] == (i + 1 < dark_from)
        others = [p for p in range(run.n_parties) if p != dark]
        assert masks[:, others].all()

    def test_dark_rounds_counted(self, run):
        assert run.metadata["dark_rounds"] == 8 - (run.metadata["dark_from"] - 1)

    def test_auto_picks_clean_weakest(self, run):
        clean = run.metadata["clean_totals"]
        assert run.metadata["dark_party"] == int(np.argmin(clean))

    def test_no_exact_reference(self, run):
        assert run.exact_fn is None

    def test_deterministic(self):
        scenario = VFLModalityDropout(epochs=6, max_rows=200)
        a, b = scenario.generate(4), scenario.generate(4)
        assert a.bad_parties == b.bad_parties
        for ra, rb in zip(a.log.records, b.log.records):
            np.testing.assert_array_equal(ra.participation_mask(),
                                          rb.participation_mask())

    def test_explicit_dark_party_honoured(self):
        run = VFLModalityDropout(
            dark_party=2, dark_from=3, epochs=6, max_rows=200
        ).generate(0)
        assert run.bad_parties == (2,)
        assert run.metadata["dark_from"] == 3

    def test_dark_from_validated(self):
        with pytest.raises(ValueError, match="outside rounds"):
            VFLModalityDropout(dark_from=99, epochs=6)
        with pytest.raises(ValueError, match="outside the"):
            VFLModalityDropout(dark_party=9, n_parties=4)
