"""Shared fixtures: small federations and trained logs reused across tests.

Session-scoped fixtures cache the expensive artifacts (trained FedSGD logs,
exact Shapley values) so the suite exercises realistic end-to-end state
without retraining in every test.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.data import (
    boston_like,
    build_hfl_federation,
    build_vfl_federation,
    mnist_like,
)
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_mlp_classifier
from repro.vfl import VFLTrainer

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


# --- HFL world --------------------------------------------------------------


def small_model_factory():
    """Tiny MNIST-like classifier shared by the HFL fixtures."""
    return make_mlp_classifier(100, 10, hidden=(16,), seed=0)


@pytest.fixture(scope="session")
def hfl_federation():
    """5 participants over MNIST-like data: 1 mislabeled, 1 non-IID."""
    dataset = mnist_like(1000, seed=0)
    return build_hfl_federation(
        dataset, 5, n_mislabeled=1, n_noniid=1, mislabel_fraction=0.5, seed=7
    )


@pytest.fixture(scope="session")
def hfl_trainer():
    return HFLTrainer(small_model_factory, epochs=8, lr_schedule=LRSchedule(0.5))


@pytest.fixture(scope="session")
def hfl_result(hfl_federation, hfl_trainer):
    """One full FedSGD run with validation tracking."""
    return hfl_trainer.train(
        hfl_federation.locals, hfl_federation.validation, track_validation=True
    )


# --- VFL world --------------------------------------------------------------


@pytest.fixture(scope="session")
def vfl_split():
    """Boston-like regression split vertically across 5 parties."""
    dataset = boston_like(seed=0).standardized()
    return build_vfl_federation(dataset, 5, max_rows=200, seed=3)


@pytest.fixture(scope="session")
def vfl_trainer(vfl_split):
    return VFLTrainer(
        "regression", vfl_split.feature_blocks, epochs=25, lr_schedule=LRSchedule(0.1)
    )


@pytest.fixture(scope="session")
def vfl_result(vfl_split, vfl_trainer):
    return vfl_trainer.train(vfl_split.train, vfl_split.validation, track_losses=True)
