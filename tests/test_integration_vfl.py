"""End-to-end VFL integration: DIG-FL vs exact Shapley, as in Table III."""

import numpy as np
import pytest

from repro.core import estimate_vfl_first_order, estimate_vfl_second_order
from repro.data import build_vfl_federation, iris_like, wine_quality_like
from repro.metrics import pearson_correlation, relative_error
from repro.nn import LRSchedule
from repro.shapley import VFLRetrainUtility, exact_shapley, gt_shapley, tmc_shapley
from repro.vfl import VFLTrainer


@pytest.fixture(scope="module")
def linreg_pipeline():
    dataset = wine_quality_like(seed=0).standardized()
    split = build_vfl_federation(dataset, 6, max_rows=400, seed=0)
    trainer = VFLTrainer("regression", split.feature_blocks, 30, LRSchedule(0.1))
    result = trainer.train(split.train, split.validation, track_losses=True)
    utility = VFLRetrainUtility(trainer, split.train, split.validation)
    exact = exact_shapley(utility)
    return split, trainer, result, utility, exact


@pytest.fixture(scope="module")
def logreg_pipeline():
    dataset = iris_like(seed=0).standardized()
    split = build_vfl_federation(dataset, 4, seed=0)
    trainer = VFLTrainer("binary", split.feature_blocks, 40, LRSchedule(0.5))
    result = trainer.train(split.train, split.validation, track_losses=True)
    utility = VFLRetrainUtility(trainer, split.train, split.validation)
    exact = exact_shapley(utility)
    return split, trainer, result, utility, exact


class TestLinReg:
    def test_pcc_high(self, linreg_pipeline):
        _, _, result, _, exact = linreg_pipeline
        report = estimate_vfl_first_order(result.log)
        assert pearson_correlation(report.totals, exact.totals) > 0.9

    def test_second_order_error_small(self, linreg_pipeline):
        """Table II row: |φ−φ̂|/φ within a few percent."""
        split, trainer, result, _, _ = linreg_pipeline
        fo = estimate_vfl_first_order(result.log)
        so = estimate_vfl_second_order(result.log, trainer.model, split.train)
        assert relative_error(float(so.totals.sum()), float(fo.totals.sum())) < 0.15

    def test_digfl_cheaper_than_exact(self, linreg_pipeline):
        _, _, result, utility, _ = linreg_pipeline
        report = estimate_vfl_first_order(result.log)
        assert utility.ledger.compute_seconds > 5 * report.ledger.compute_seconds

    def test_exact_retrains_2_to_n(self, linreg_pipeline):
        _, _, _, utility, _ = linreg_pipeline
        assert utility.evaluations == 2**6


class TestLogReg:
    def test_pcc_high(self, logreg_pipeline):
        _, _, result, _, exact = logreg_pipeline
        report = estimate_vfl_first_order(result.log)
        assert pearson_correlation(report.totals, exact.totals) > 0.8

    def test_model_actually_learned(self, logreg_pipeline):
        split, trainer, result, _, _ = logreg_pipeline
        acc = trainer.model.score(result.theta, split.validation.X, split.validation.y)
        assert acc > 0.6


class TestVFLBaselines:
    """Fig. 5 / Table V at small scale."""

    def test_tmc_and_gt_work_on_vfl(self, linreg_pipeline):
        _, trainer, _, _, exact = linreg_pipeline
        split = linreg_pipeline[0]
        fresh = VFLRetrainUtility(trainer, split.train, split.validation)
        tmc = tmc_shapley(fresh, n_permutations=10, seed=0)
        gt = gt_shapley(fresh, n_tests=60, seed=0)
        assert pearson_correlation(tmc.totals, exact.totals) > 0.7
        assert pearson_correlation(gt.totals, exact.totals) > 0.5

    def test_digfl_no_retraining(self, linreg_pipeline):
        """DIG-FL's cost comes only from the log pass, not retraining."""
        _, _, result, _, _ = linreg_pipeline
        report = estimate_vfl_first_order(result.log)
        # No coalition evaluations recorded — the estimator never trains.
        assert "coalition_evaluations" not in report.extra


class TestShapleyPartyRanking:
    def test_high_signal_parties_rank_high(self, linreg_pipeline):
        """Parties owning high-coefficient features must rank above parties
        owning noise features, in both exact and DIG-FL rankings."""
        split, _, result, _, exact = linreg_pipeline
        report = estimate_vfl_first_order(result.log)
        # Best party by exact Shapley should be in DIG-FL's top 2.
        best = int(np.argmax(exact.totals))
        digfl_rank = list(np.argsort(report.totals)[::-1])
        assert digfl_rank.index(best) <= 1
