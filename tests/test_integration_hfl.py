"""End-to-end HFL integration: DIG-FL vs exact Shapley, as in Fig. 3.

These tests run the full experimental pipeline at small scale: build a
federation with corrupted participants, train FedSGD, estimate contributions
with DIG-FL and the baselines, retrain 2^n coalitions for the exact Shapley
value, and check the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro.core import estimate_hfl_interactive, estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.metrics import pearson_correlation, spearman_correlation
from repro.nn import LRSchedule, make_mlp_classifier
from repro.shapley import (
    HFLRetrainUtility,
    exact_shapley,
    gt_shapley,
    im_scores,
    mr_shapley,
    tmc_shapley,
)


def factory():
    return make_mlp_classifier(100, 10, hidden=(16,), seed=0)


@pytest.fixture(scope="module")
def pipeline():
    """Shared training run + exact Shapley ground truth (n=5, 32 retrains)."""
    fed = build_hfl_federation(
        mnist_like(1200, seed=4), 5, n_mislabeled=1, n_noniid=1, seed=4
    )
    trainer = HFLTrainer(factory, epochs=10, lr_schedule=LRSchedule(0.5))
    result = trainer.train(fed.locals, fed.validation, track_validation=True)
    utility = HFLRetrainUtility(
        trainer, fed.locals, fed.validation, init_theta=result.log.initial_theta
    )
    exact = exact_shapley(utility)
    return fed, trainer, result, utility, exact


class TestDIGFLvsExact:
    def test_resource_saving_pcc(self, pipeline):
        fed, _, result, _, exact = pipeline
        report = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        assert pearson_correlation(report.totals, exact.totals) > 0.85

    def test_interactive_pcc(self, pipeline):
        fed, _, result, _, exact = pipeline
        report = estimate_hfl_interactive(
            result.log, fed.validation, factory, fed.locals
        )
        assert pearson_correlation(report.totals, exact.totals) > 0.85

    def test_rank_agreement(self, pipeline):
        fed, _, result, _, exact = pipeline
        report = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        assert spearman_correlation(report.totals, exact.totals) > 0.7

    def test_digfl_orders_of_magnitude_cheaper(self, pipeline):
        """Fig. 3(c): exact needs 2^n retrainings, DIG-FL none."""
        fed, _, result, utility, _ = pipeline
        report = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        assert utility.ledger.compute_seconds > 10 * report.ledger.compute_seconds

    def test_no_communication_overhead(self, pipeline):
        """Fig. 3(d): Algorithm 2 adds zero communication."""
        fed, _, result, _, _ = pipeline
        report = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        assert report.ledger.total_comm_bytes == 0

    def test_corrupted_participants_have_low_exact_shapley(self, pipeline):
        fed, _, _, _, exact = pipeline
        clean_vals = [t for t, q in zip(exact.totals, fed.qualities) if q == "clean"]
        bad_vals = [t for t, q in zip(exact.totals, fed.qualities) if q != "clean"]
        assert np.mean(bad_vals) < np.mean(clean_vals)


class TestBaselineComparison:
    """Fig. 4 / Table IV at small scale: DIG-FL ≥ baselines in PCC."""

    def test_all_methods_positive_correlation(self, pipeline):
        fed, trainer, result, utility, exact = pipeline
        digfl = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        tmc = tmc_shapley(utility, n_permutations=8, seed=0)
        # With n=5 all 32 coalitions are already cached from the exact run,
        # so a generous GT test budget costs nothing extra here.
        gt = gt_shapley(utility, n_tests=2000, seed=0)
        mr = mr_shapley(result.log, fed.validation, factory)

        for report in (digfl, tmc, mr):
            assert pearson_correlation(report.totals, exact.totals) > 0.5, report.method
        assert pearson_correlation(gt.totals, exact.totals) > 0.3

    def test_digfl_beats_im(self, pipeline):
        fed, _, result, _, exact = pipeline
        digfl = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        im = im_scores(result.log)
        pcc_digfl = pearson_correlation(digfl.totals, exact.totals)
        pcc_im = pearson_correlation(im.totals, exact.totals)
        assert pcc_digfl >= pcc_im - 0.05  # IM is the weakest baseline in Table IV

    def test_sampling_baselines_cost_more_retraining(self, pipeline):
        """TMC/GT retrain the model; DIG-FL does not."""
        fed, trainer, result, _, _ = pipeline
        fresh_utility = HFLRetrainUtility(
            trainer, fed.locals, fed.validation, init_theta=result.log.initial_theta
        )
        tmc_shapley(fresh_utility, n_permutations=5, seed=1)
        assert fresh_utility.evaluations > 5


@pytest.mark.parametrize("dataset", ["mnist", "cifar10", "motor", "real"])
class TestAllFourDatasets:
    """Fig. 3 coverage: the pipeline holds on every paper HFL dataset."""

    def test_digfl_tracks_exact(self, dataset):
        from repro.scenario import HFLScenario

        result = HFLScenario(
            dataset=dataset,
            n_parties=5,
            n_mislabeled=1,
            n_noniid=1,
            epochs=8,
            compute_exact=True,
            seed=11,
        ).run()
        assert result.pcc > 0.6, f"{dataset}: PCC {result.pcc:.3f}"
        # Corrupted participants sit below the clean mean in the exact values.
        clean = [
            t for t, q in zip(result.exact.totals, result.qualities) if q == "clean"
        ]
        bad = [
            t for t, q in zip(result.exact.totals, result.qualities) if q != "clean"
        ]
        assert np.mean(bad) < np.mean(clean)
