"""Zero-downtime shard rebalancing: online grow/shrink and mid-move chaos.

The first test holds ``POST /cluster/resize`` to the full protocol on a
live cluster: the move set is exactly ``HashRing.plan_resize``'s, every
read during the resize answers 200 (no downtime, not even a 503), the
ring epoch bumps and fences stale-stamped writes with a typed 409, the
aggregated ``/runs`` view never shows a migrated run twice, and every
run's contributions stay ``np.array_equal`` to the batch estimate
through a grow *and* the shrink back.

The second test SIGKILLs the destination worker mid-migration and
expects the resize to complete anyway: ``_migrate_run`` re-scans the
source WAL file and re-ships through ``/control/adopt`` (idempotent, so
a partially-adopted run is free to re-deliver) while the monitor thread
respawns the victim.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import estimate_vfl_first_order
from repro.io import save_vfl_training_log
from repro.serve import ClusterRouter, ClusterSupervisor, HashRing

pytestmark = pytest.mark.timeout(300)


@pytest.fixture(scope="module")
def vfl_log(vfl_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster_rebalance") / "vfl_run.npz"
    save_vfl_training_log(vfl_result.log, path)
    return {"path": str(path), "log": vfl_result.log}


def _get(port, path, timeout=30):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return json.loads(response.read())


def _post(port, path, payload, timeout=120, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


class _ReadPoller(threading.Thread):
    """Round-robins contribution reads across runs, recording statuses."""

    def __init__(self, port, run_ids):
        super().__init__(daemon=True)
        self.port = port
        self.run_ids = run_ids
        self.statuses = []
        self._halt = threading.Event()

    def run(self):
        index = 0
        while not self._halt.is_set():
            run_id = self.run_ids[index % len(self.run_ids)]
            index += 1
            url = (
                f"http://127.0.0.1:{self.port}/runs/{run_id}/contributions"
            )
            try:
                with urllib.request.urlopen(url, timeout=10) as response:
                    self.statuses.append(response.status)
                    response.read()
            except urllib.error.HTTPError as exc:
                self.statuses.append(exc.code)
                exc.read()
            except (urllib.error.URLError, ConnectionError, OSError):
                self.statuses.append(-1)
            time.sleep(0.03)

    def stop(self):
        self._halt.set()
        self.join(timeout=10)


def _cluster(tmp_path, n_shards, **kwargs):
    supervisor = ClusterSupervisor(
        n_shards,
        wal_root=tmp_path / "wals",
        probe_interval_s=0.2,
        probe_reset_s=1.0,
        **kwargs,
    )
    supervisor.start()
    router = ClusterRouter(("127.0.0.1", 0), supervisor)
    router.serve_background()
    return supervisor, router


def _teardown(supervisor, router):
    router.shutdown()
    router.server_close()
    supervisor.stop()


def test_online_grow_and_shrink_is_zero_downtime_and_bit_identical(
    vfl_log, tmp_path
):
    supervisor, router = _cluster(tmp_path, 2)
    run_ids = [f"vfl-mv-{i}" for i in range(6)]
    want = estimate_vfl_first_order(vfl_log["log"]).totals
    try:
        for run_id in run_ids:
            status, _, _ = _post(
                router.port,
                "/runs",
                {"kind": "vfl", "log_path": vfl_log["path"], "run_id": run_id},
            )
            assert status == 201
        grow_plan = HashRing(range(2)).plan_resize(range(3), run_ids)

        poller = _ReadPoller(router.port, run_ids)
        poller.start()

        status, body, _ = _post(
            router.port, "/cluster/resize", {"shards": 3}, timeout=180
        )
        assert status == 200
        assert body["from"] == 2 and body["to"] == 3
        assert body["ring_epoch"] == 1
        assert body["moved"] == len(grow_plan.moves)
        assert body["runs_moved"] == sorted(grow_plan.moves)

        info = _get(router.port, "/cluster")
        assert info["ring_epoch"] == 1
        assert sorted(info["shards"]) == ["0", "1", "2"]

        # A write stamped with the pre-resize epoch is fenced with a
        # typed 409 naming the worker's current fence.
        spec = supervisor.specs[0]
        status, body, headers = _post(
            spec.port,
            "/runs",
            {"kind": "vfl", "log_path": vfl_log["path"], "run_id": "vfl-late"},
            headers={"X-Repro-Ring-Epoch": "0"},
        )
        assert status == 409
        assert "stale ring epoch" in body["error"]
        assert headers["X-Repro-Ring-Epoch"] == "1"

        # The aggregated registry shows each migrated run exactly once
        # (the stale copy in its old owner's registry is shadowed).
        listed = [run["run_id"] for run in _get(router.port, "/runs")["runs"]]
        assert sorted(listed) == run_ids

        for run_id in run_ids:
            served = _get(router.port, f"/runs/{run_id}/contributions")
            assert np.array_equal(np.asarray(served["totals"]), want)

        # And back down: the shrink path (retiring shards) holds the
        # same properties, at the next epoch.
        status, body, _ = _post(
            router.port, "/cluster/resize", {"shards": 2}, timeout=180
        )
        assert status == 200
        assert body["ring_epoch"] == 2
        shrink_plan = HashRing(range(3)).plan_resize(range(2), run_ids)
        assert body["moved"] == len(shrink_plan.moves)

        poller.stop()
        # Zero downtime means zero: every read during both resizes
        # answered 200, not "only typed errors".
        assert poller.statuses, "poller never sampled"
        assert set(poller.statuses) == {200}

        info = _get(router.port, "/cluster")
        assert sorted(info["shards"]) == ["0", "1"]
        listed = [run["run_id"] for run in _get(router.port, "/runs")["runs"]]
        assert sorted(listed) == run_ids
        for run_id in run_ids:
            served = _get(router.port, f"/runs/{run_id}/contributions")
            assert np.array_equal(np.asarray(served["totals"]), want)
    finally:
        _teardown(supervisor, router)


def test_resize_validation_and_concurrency_guard(vfl_log, tmp_path):
    supervisor, router = _cluster(tmp_path, 1)
    try:
        for bad in (0, -1, "three", True, None):
            status, body, _ = _post(
                router.port, "/cluster/resize", {"shards": bad}
            )
            assert status == 400, bad
            assert "positive integer" in body["error"]
        # Resizing to the current size is a cheap no-op at the same epoch.
        status, body, _ = _post(router.port, "/cluster/resize", {"shards": 1})
        assert status == 200
        assert body["moved"] == 0 and body["ring_epoch"] == 0
    finally:
        _teardown(supervisor, router)


def test_sigkill_of_the_destination_mid_migration_still_lands_every_run(
    vfl_log, tmp_path
):
    # Pick ids whose 1->2 shard resize moves at least two runs onto the
    # newcomer (the shard we will kill) and keeps at least one in place.
    target_ring = HashRing(range(2))
    candidates = [f"vfl-mv-{i}" for i in range(60)]
    movers = [c for c in candidates if target_ring.shard_for(c) == 1][:2]
    stayer = next(c for c in candidates if target_ring.shard_for(c) == 0)
    run_ids = sorted(movers + [stayer])
    assert len(run_ids) == 3

    # chaos_ingest_ms slows every applied record — including adoption on
    # the destination — holding the migration window open long enough to
    # land a SIGKILL inside it deterministically.
    supervisor, router = _cluster(tmp_path, 1, chaos_ingest_ms=60.0)
    want = estimate_vfl_first_order(vfl_log["log"]).totals
    try:
        for run_id in run_ids:
            status, _, _ = _post(
                router.port,
                "/runs",
                {"kind": "vfl", "log_path": vfl_log["path"], "run_id": run_id},
                timeout=180,
            )
            assert status == 201

        poller = _ReadPoller(router.port, run_ids)
        poller.start()

        outcome = {}

        def _resize():
            try:
                outcome["result"] = supervisor.resize(2)
            except Exception as exc:  # surfaced by the main thread
                outcome["error"] = exc

        resizer = threading.Thread(target=_resize, daemon=True)
        resizer.start()

        # Wait for the migration phase, then kill the adopting worker.
        deadline = time.monotonic() + 120
        while True:
            assert time.monotonic() < deadline, "migration never started"
            rebalance = supervisor.describe().get("rebalance")
            if rebalance is not None and rebalance["phase"] == "migrating":
                break
            time.sleep(0.01)
        victim_pid = supervisor.describe()["shards"]["1"]["pid"]
        os.kill(victim_pid, signal.SIGKILL)

        resizer.join(timeout=180)
        assert not resizer.is_alive(), "resize never finished"
        assert "error" not in outcome, outcome.get("error")
        result = outcome["result"]
        assert result["ring_epoch"] == 1
        assert sorted(result["runs_moved"]) == sorted(movers)

        poller.stop()
        assert poller.statuses, "poller never sampled"
        # The victim's death may surface as typed unavailability on
        # reads that raced the respawn — but never as a bare 500.
        assert set(poller.statuses) <= {200, 503, 504}

        info = _get(router.port, "/cluster")
        assert info["shards"]["1"]["respawns"] >= 1

        listed = [run["run_id"] for run in _get(router.port, "/runs")["runs"]]
        assert sorted(listed) == run_ids
        for run_id in run_ids:
            served = _get(router.port, f"/runs/{run_id}/contributions")
            assert np.array_equal(np.asarray(served["totals"]), want)
    finally:
        _teardown(supervisor, router)
