"""Tests for exact Shapley values: axioms on closed-form games."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.shapley import CallableUtility, exact_shapley, exact_shapley_values


def additive_game(values):
    """V(S) = Σ_{i∈S} v_i — Shapley values are exactly v."""
    values = np.asarray(values, dtype=np.float64)

    def fn(coalition):
        return float(sum(values[i] for i in coalition))

    return CallableUtility(len(values), fn)


def glove_game():
    """Classic: players 0,1 hold left gloves, player 2 the right glove."""

    def fn(coalition):
        lefts = len(coalition & {0, 1})
        rights = len(coalition & {2})
        return float(min(lefts, rights))

    return CallableUtility(3, fn)


def majority_game(n, quota):
    def fn(coalition):
        return 1.0 if len(coalition) >= quota else 0.0

    return CallableUtility(n, fn)


class TestClosedFormGames:
    def test_additive_game(self):
        values = np.array([3.0, -1.0, 0.5, 2.0])
        np.testing.assert_allclose(
            exact_shapley_values(additive_game(values)), values, atol=1e-12
        )

    def test_glove_game(self):
        """Known solution: (1/6, 1/6, 4/6)."""
        np.testing.assert_allclose(
            exact_shapley_values(glove_game()), [1 / 6, 1 / 6, 4 / 6], atol=1e-12
        )

    def test_majority_game_symmetric(self):
        values = exact_shapley_values(majority_game(5, 3))
        np.testing.assert_allclose(values, 0.2, atol=1e-12)

    def test_unanimity_game(self):
        """V(S)=1 iff S contains both 0 and 1; player 2 is a null player."""

        def fn(coalition):
            return 1.0 if {0, 1} <= coalition else 0.0

        values = exact_shapley_values(CallableUtility(3, fn))
        np.testing.assert_allclose(values, [0.5, 0.5, 0.0], atol=1e-12)

    def test_single_player(self):
        util = additive_game([7.0])
        np.testing.assert_allclose(exact_shapley_values(util), [7.0])


class TestAxiomsOnRandomGames:
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 5))
    def test_efficiency(self, seed, n):
        """Σφ_i = V(N) for any game."""
        rng = np.random.default_rng(seed)
        table = {frozenset(): 0.0}
        values = exact_shapley_values(_random_game(rng, n, table))
        assert values.sum() == pytest.approx(table[frozenset(range(n))], abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    def test_symmetry(self, seed):
        """Two players interchangeable in V get equal Shapley values."""
        rng = np.random.default_rng(seed)
        base = {
            frozenset(): 0.0,
            frozenset({2}): float(rng.normal()),
            frozenset({0, 1}): float(rng.normal()),
            frozenset({0, 2}): float(rng.normal()),
            frozenset({0, 1, 2}): float(rng.normal()),
        }
        solo = float(rng.normal())
        base[frozenset({0})] = solo
        base[frozenset({1})] = solo
        base[frozenset({1, 2})] = base[frozenset({0, 2})]

        util = CallableUtility(3, lambda s: base[s])
        values = exact_shapley_values(util)
        assert values[0] == pytest.approx(values[1], abs=1e-9)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 4))
    def test_null_player(self, seed, n):
        """A player that never changes any utility gets zero."""
        rng = np.random.default_rng(seed)
        table: dict[frozenset, float] = {}

        def fn(coalition):
            reduced = frozenset(coalition) - {0}  # player 0 is null
            if reduced not in table:
                table[reduced] = float(rng.normal()) if reduced else 0.0
            return table[reduced]

        values = exact_shapley_values(CallableUtility(n, fn))
        assert values[0] == pytest.approx(0.0, abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    def test_linearity(self, seed):
        """Shapley(V + W) = Shapley(V) + Shapley(W)."""
        rng = np.random.default_rng(seed)
        table_v: dict[frozenset, float] = {frozenset(): 0.0}
        table_w: dict[frozenset, float] = {frozenset(): 0.0}
        util_v = _random_game(rng, 3, table_v)
        util_w = _random_game(rng, 3, table_w)
        phi_v = exact_shapley_values(util_v)
        phi_w = exact_shapley_values(util_w)

        util_sum = CallableUtility(3, lambda s: table_v.get(s, 0.0) + table_w.get(s, 0.0))
        # Ensure tables fully populated by the prior runs.
        phi_sum = exact_shapley_values(util_sum)
        np.testing.assert_allclose(phi_sum, phi_v + phi_w, atol=1e-9)


def _random_game(rng, n, table):
    def fn(coalition):
        key = frozenset(coalition)
        if key not in table:
            table[key] = float(rng.normal()) if key else 0.0
        return table[key]

    return CallableUtility(n, fn)


class TestUtilityMechanics:
    def test_empty_coalition_zero(self):
        util = additive_game([1.0, 2.0])
        assert util(frozenset()) == 0.0

    def test_caching(self):
        util = additive_game([1.0, 2.0, 3.0])
        exact_shapley_values(util)
        assert util.evaluations == 2**3  # every coalition exactly once

    def test_unknown_player_rejected(self):
        with pytest.raises(ValueError, match="unknown players"):
            additive_game([1.0])(frozenset({5}))

    def test_report_wrapper(self):
        report = exact_shapley(additive_game([1.0, -2.0]))
        assert report.method == "exact"
        assert report.extra["coalition_evaluations"] == 4
        np.testing.assert_allclose(report.totals, [1.0, -2.0])

    def test_ranking(self):
        report = exact_shapley(additive_game([1.0, 5.0, 3.0]))
        assert report.ranking() == [1, 2, 0]
