"""Tests for FedAvg data-size weighting and logged-weight estimation."""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule

from tests.conftest import small_model_factory


@pytest.fixture(scope="module")
def skewed_federation():
    """Federation with very different local dataset sizes."""
    dataset = mnist_like(1200, seed=30)
    fed = build_hfl_federation(dataset, 4, seed=30)
    # Shrink two parties to a quarter of their data.
    locals_ = list(fed.locals)
    for i in (0, 1):
        keep = np.arange(len(locals_[i]) // 4)
        locals_[i] = locals_[i].subset(keep)
    return locals_, fed.validation


class TestWeightBySamples:
    def test_weights_proportional_to_sizes(self, skewed_federation):
        locals_, validation = skewed_federation
        trainer = HFLTrainer(small_model_factory, 2, LRSchedule(0.3))
        result = trainer.train(locals_, validation, weight_by_samples=True)
        sizes = np.array([len(d) for d in locals_], dtype=float)
        expected = sizes / sizes.sum()
        np.testing.assert_allclose(result.log.records[0].weights, expected)

    def test_uniform_by_default(self, skewed_federation):
        locals_, validation = skewed_federation
        trainer = HFLTrainer(small_model_factory, 1, LRSchedule(0.3))
        result = trainer.train(locals_, validation)
        np.testing.assert_allclose(result.log.records[0].weights, 0.25)

    def test_equal_sizes_match_uniform(self):
        fed = build_hfl_federation(mnist_like(800, seed=31), 4, seed=31)
        assert len({len(d) for d in fed.locals}) == 1  # equal IID shares
        trainer = HFLTrainer(small_model_factory, 2, LRSchedule(0.3))
        uniform = trainer.train(fed.locals, fed.validation)
        weighted = trainer.train(fed.locals, fed.validation, weight_by_samples=True)
        np.testing.assert_allclose(
            uniform.model.get_flat(), weighted.model.get_flat(), atol=1e-12
        )

    def test_changes_trajectory_when_skewed(self, skewed_federation):
        locals_, validation = skewed_federation
        trainer = HFLTrainer(small_model_factory, 3, LRSchedule(0.3))
        uniform = trainer.train(locals_, validation)
        weighted = trainer.train(locals_, validation, weight_by_samples=True)
        assert not np.allclose(uniform.model.get_flat(), weighted.model.get_flat())


class TestLoggedWeightEstimation:
    def test_matches_paper_form_on_uniform_logs(self, hfl_result, hfl_federation):
        default = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        logged = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory,
            use_logged_weights=True,
        )
        np.testing.assert_allclose(logged.totals, default.totals, atol=1e-12)

    def test_uses_recorded_weights_on_weighted_logs(self, skewed_federation):
        locals_, validation = skewed_federation
        trainer = HFLTrainer(small_model_factory, 3, LRSchedule(0.3))
        result = trainer.train(locals_, validation, weight_by_samples=True)
        logged = estimate_hfl_resource_saving(
            result.log, validation, small_model_factory, use_logged_weights=True
        )
        record = result.log.records[0]
        model = small_model_factory()
        from repro.hfl import validation_gradient

        v = validation_gradient(model, record.theta_before, validation)
        for i in range(4):
            expected = record.weights[i] * (record.local_updates[i] @ v)
            assert logged.per_epoch[0, i] == pytest.approx(expected, abs=1e-12)

    def test_big_parties_weighted_up(self, skewed_federation):
        """With size weights, a big clean party's contribution estimate
        exceeds a small clean party's (same per-sample quality)."""
        locals_, validation = skewed_federation
        trainer = HFLTrainer(small_model_factory, 5, LRSchedule(0.3))
        result = trainer.train(locals_, validation, weight_by_samples=True)
        logged = estimate_hfl_resource_saving(
            result.log, validation, small_model_factory, use_logged_weights=True
        )
        small_parties = logged.totals[[0, 1]].mean()
        big_parties = logged.totals[[2, 3]].mean()
        assert big_parties > small_parties