"""Tests for the crypto substrate: primes, Paillier, masking."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import (
    MaskGenerator,
    add_vectors,
    decrypt_vector,
    encrypt_vector,
    generate_keypair,
    generate_prime,
    generate_prime_pair,
    is_probable_prime,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(256, seed=1234)


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 7919, 104729):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for c in (1, 4, 100, 7917, 104730, 561, 1105):  # incl. Carmichael numbers
            assert not is_probable_prime(c)

    def test_large_known_prime(self):
        assert is_probable_prime(2**61 - 1)  # Mersenne prime

    def test_generate_prime_bit_length(self):
        rng = random.Random(0)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_generate_prime_pair_distinct(self):
        p, q = generate_prime_pair(32, random.Random(0))
        assert p != q

    def test_too_small_bits(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_negative_not_prime(self):
        assert not is_probable_prime(-7)


class TestPaillierRoundtrip:
    def test_floats(self, keypair):
        pk, sk = keypair
        for value in (0.0, 1.0, -1.0, 3.14159, -2.71828, 1e-6, 12345.678):
            assert sk.decrypt(pk.encrypt(value)) == pytest.approx(value, abs=1e-8)

    def test_vector_roundtrip(self, keypair):
        pk, sk = keypair
        xs = np.array([0.5, -0.25, 100.0, -3e-5])
        out = decrypt_vector(sk, encrypt_vector(pk, xs, random.Random(0)))
        np.testing.assert_allclose(out, xs, atol=1e-8)

    def test_randomised_ciphertexts(self, keypair):
        pk, _ = keypair
        rng = random.Random(0)
        a = pk.encrypt(5.0, rng=rng)
        b = pk.encrypt(5.0, rng=rng)
        assert a.ciphertext != b.ciphertext  # semantic security

    def test_overflow_detected(self, keypair):
        pk, _ = keypair
        with pytest.raises(OverflowError):
            pk.encrypt(float(pk.n))


class TestHomomorphism:
    def test_cipher_plus_cipher(self, keypair):
        pk, sk = keypair
        c = pk.encrypt(2.5) + pk.encrypt(-1.25)
        assert sk.decrypt(c) == pytest.approx(1.25, abs=1e-8)

    def test_cipher_plus_plain(self, keypair):
        pk, sk = keypair
        assert sk.decrypt(pk.encrypt(2.0) + 3.5) == pytest.approx(5.5, abs=1e-8)

    def test_cipher_minus_cipher(self, keypair):
        pk, sk = keypair
        c = pk.encrypt(2.0) - pk.encrypt(5.0)
        assert sk.decrypt(c) == pytest.approx(-3.0, abs=1e-8)

    def test_scalar_mul_int(self, keypair):
        pk, sk = keypair
        assert sk.decrypt(pk.encrypt(1.5) * 4) == pytest.approx(6.0, abs=1e-8)

    def test_scalar_mul_float_changes_exponent(self, keypair):
        pk, sk = keypair
        c = pk.encrypt(2.0)
        d = c * 0.125
        assert d.exponent < c.exponent
        assert sk.decrypt(d) == pytest.approx(0.25, abs=1e-8)

    def test_exponent_alignment_in_add(self, keypair):
        pk, sk = keypair
        c = pk.encrypt(1.0) * 0.5 + pk.encrypt(2.0)
        assert sk.decrypt(c) == pytest.approx(2.5, abs=1e-8)

    def test_cipher_times_cipher_rejected(self, keypair):
        pk, _ = keypair
        with pytest.raises(TypeError, match="additively"):
            pk.encrypt(1.0) * pk.encrypt(2.0)

    def test_cross_key_addition_rejected(self, keypair):
        pk, _ = keypair
        pk2, _ = generate_keypair(256, seed=999)
        with pytest.raises(ValueError, match="different keys"):
            pk.encrypt(1.0) + pk2.encrypt(1.0)

    def test_cross_key_decrypt_rejected(self, keypair):
        pk, _ = keypair
        _, sk2 = generate_keypair(256, seed=999)
        with pytest.raises(ValueError, match="different key"):
            sk2.decrypt(pk.encrypt(1.0))

    def test_add_vectors(self, keypair):
        pk, sk = keypair
        a = encrypt_vector(pk, [1.0, 2.0])
        b = encrypt_vector(pk, [10.0, 20.0])
        out = decrypt_vector(sk, add_vectors(a, b))
        np.testing.assert_allclose(out, [11.0, 22.0], atol=1e-8)

    def test_add_vectors_length_mismatch(self, keypair):
        pk, _ = keypair
        with pytest.raises(ValueError):
            add_vectors(encrypt_vector(pk, [1.0]), encrypt_vector(pk, [1.0, 2.0]))

    @given(
        a=st.floats(-1e4, 1e4),
        b=st.floats(-1e4, 1e4),
        s=st.floats(-50, 50),
    )
    def test_property_affine_homomorphism(self, keypair, a, b, s):
        """decrypt(enc(a)*s + enc(b)) == a*s + b for bounded floats."""
        pk, sk = keypair
        c = pk.encrypt(a) * s + pk.encrypt(b)
        assert sk.decrypt(c) == pytest.approx(a * s + b, abs=1e-4)


class TestEncryptedNumberMisc:
    def test_nbytes(self, keypair):
        pk, _ = keypair
        c = pk.encrypt(1.0)
        assert c.nbytes == (2 * pk.key_bits + 7) // 8

    def test_rescale_to_coarser_rejected(self, keypair):
        pk, _ = keypair
        c = pk.encrypt(1.0)
        with pytest.raises(ValueError, match="finer"):
            c._scaled_to(c.exponent + 1)


class TestCRTDecryption:
    def test_matches_textbook_path(self, keypair):
        from repro.crypto.paillier import PrivateKey

        pk, sk = keypair
        textbook = PrivateKey(pk, sk.lam, sk.mu)  # no factors stored
        rng = random.Random(7)
        for _ in range(20):
            c = pk.encrypt(rng.uniform(-1e4, 1e4), rng=rng)
            assert sk.raw_decrypt(c.ciphertext) == textbook.raw_decrypt(c.ciphertext)

    def test_wrong_factors_rejected(self, keypair):
        from repro.crypto.paillier import PrivateKey

        pk, sk = keypair
        with pytest.raises(ValueError, match="public modulus"):
            PrivateKey(pk, sk.lam, sk.mu, p=3, q=5)

    def test_crt_faster_than_textbook(self):
        """The CRT path must beat full-modulus decryption on a larger key."""
        import time

        from repro.crypto.paillier import PrivateKey, generate_keypair

        pk, sk = generate_keypair(512, seed=3)
        textbook = PrivateKey(pk, sk.lam, sk.mu)
        cipher = pk.encrypt(42.0).ciphertext

        def best_of(fn, repeats=30):
            times = []
            for _ in range(3):
                start = time.perf_counter()
                for _ in range(repeats):
                    fn(cipher)
                times.append(time.perf_counter() - start)
            return min(times)

        assert best_of(sk.raw_decrypt) < best_of(textbook.raw_decrypt)


class TestMaskGenerator:
    def test_mask_unmask_roundtrip(self):
        gen = MaskGenerator(scale=5.0, seed=0)
        data = np.array([1.0, -2.0, 3.0])
        masked = data + gen.mask_for(1, "grad", 3)
        np.testing.assert_allclose(gen.unmask(1, "grad", masked), data, atol=1e-12)

    def test_same_key_same_mask(self):
        gen = MaskGenerator(seed=0)
        np.testing.assert_array_equal(gen.mask_for(1, "a", 4), gen.mask_for(1, "a", 4))

    def test_different_rounds_different_masks(self):
        gen = MaskGenerator(seed=0)
        assert not np.allclose(gen.mask_for(1, "a", 8), gen.mask_for(2, "a", 8))

    def test_unmask_unknown_key(self):
        with pytest.raises(KeyError):
            MaskGenerator(seed=0).unmask(1, "nope", np.zeros(2))

    def test_size_mismatch(self):
        gen = MaskGenerator(seed=0)
        gen.mask_for(1, "a", 4)
        with pytest.raises(ValueError):
            gen.mask_for(1, "a", 5)

    def test_discard(self):
        gen = MaskGenerator(seed=0)
        gen.mask_for(1, "a", 2)
        gen.discard(1, "a")
        with pytest.raises(KeyError):
            gen.unmask(1, "a", np.zeros(2))

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            MaskGenerator(scale=0.0)
