"""DIG-FL estimators on partial-participation training logs.

The estimators' contract under runtime faults: a party absent from round
``t`` shipped nothing, so its per-epoch contribution for that round is
exactly zero, and the uniform divisor becomes the number of updates the
server actually aggregated.  These tests pin that arithmetic against
hand-written loops on hand-built logs (no training, no runtime), then
cover the interactive/second-order variants and the ``.npz`` round-trip
of participation masks.
"""

import json

import numpy as np
import pytest

from repro.core import (
    estimate_hfl_interactive,
    estimate_hfl_resource_saving,
    estimate_vfl_first_order,
    estimate_vfl_second_order,
)
from repro.data import build_hfl_federation, mnist_like
from repro.experiments.workloads import build_vfl_workload
from repro.hfl import HFLTrainer
from repro.hfl.log import EpochRecord, TrainingLog
from repro.hfl.trainer import flat_gradient
from repro.io import (
    load_training_log,
    load_vfl_training_log,
    save_training_log,
    save_vfl_training_log,
)
from repro.nn import LRSchedule, make_hfl_model
from repro.runtime import FaultPlan, FederatedRuntime, RuntimeConfig
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog

K = 3  # participants in the hand-built HFL logs


def _factory():
    return make_hfl_model("mnist", seed=0)


# Round 1: everyone; round 2: party 1 out; round 3: only party 2; round 4:
# nobody (the deadline discarded the whole round).
MASKS = [
    None,
    np.array([True, False, True]),
    np.array([False, False, True]),
    np.array([False, False, False]),
]


def _build_hfl_log() -> TrainingLog:
    """A hand-built 4-round log with the participation patterns above."""
    rng = np.random.default_rng(42)
    p = _factory().num_parameters()
    log = TrainingLog(participant_ids=[0, 1, 2])
    for t, mask in enumerate(MASKS, start=1):
        updates = rng.normal(scale=0.01, size=(K, p))
        if mask is None:
            weights = np.full(K, 1.0 / K)
        else:
            updates[~mask] = 0.0  # absent parties shipped nothing
            arrived = int(mask.sum())
            weights = (
                mask / arrived if arrived else np.zeros(K, dtype=np.float64)
            )
        log.records.append(
            EpochRecord(
                epoch=t,
                lr=0.5,
                theta_before=rng.normal(scale=0.1, size=p),
                local_updates=updates,
                weights=weights,
                participation=mask,
            )
        )
    return log


@pytest.fixture(scope="module")
def hfl_log():
    return _build_hfl_log()


@pytest.fixture(scope="module")
def validation():
    return mnist_like(40, seed=1)


def _hand_computed_uniform(log, validation):
    """φ̂_{t,i} = ⟨∇loss^v(θ_{t-1}), δ_{t,i}⟩ / m_t, written out longhand."""
    model = _factory()
    expected = np.zeros((log.n_epochs, K))
    for t, record in enumerate(log.records):
        model.set_flat(record.theta_before)
        g = flat_gradient(model, validation.X, validation.y)
        mask = record.participation_mask()
        arrived = int(mask.sum())
        for i in range(K):
            if mask[i] and arrived:
                expected[t, i] = float(record.local_updates[i] @ g) / arrived
    return expected


class TestResourceSavingPartial:
    def test_matches_hand_computed_sums(self, hfl_log, validation):
        report = estimate_hfl_resource_saving(hfl_log, validation, _factory)
        expected = _hand_computed_uniform(hfl_log, validation)
        np.testing.assert_allclose(report.per_epoch, expected, rtol=1e-12)
        np.testing.assert_allclose(
            report.totals, expected.sum(axis=0), rtol=1e-12
        )

    def test_absent_rounds_contribute_exactly_zero(self, hfl_log, validation):
        report = estimate_hfl_resource_saving(hfl_log, validation, _factory)
        for t, mask in enumerate(MASKS):
            if mask is None:
                continue
            assert (report.per_epoch[t, ~mask] == 0.0).all()
        # Round 4 discarded everyone: the whole row is zero.
        assert (report.per_epoch[3] == 0.0).all()

    def test_divisor_is_arrived_count_not_n(self, hfl_log, validation):
        """Round 3 has one arrival: its value is the full dot product."""
        report = estimate_hfl_resource_saving(hfl_log, validation, _factory)
        record = hfl_log.records[2]
        model = _factory()
        model.set_flat(record.theta_before)
        g = flat_gradient(model, validation.X, validation.y)
        assert report.per_epoch[2, 2] == pytest.approx(
            float(record.local_updates[2] @ g), rel=1e-12
        )

    def test_logged_weights_path_zeroes_absent(self, hfl_log, validation):
        report = estimate_hfl_resource_saving(
            hfl_log, validation, _factory, use_logged_weights=True
        )
        model = _factory()
        for t, record in enumerate(hfl_log.records):
            model.set_flat(record.theta_before)
            g = flat_gradient(model, validation.X, validation.y)
            expected = record.weights * (record.local_updates @ g)
            np.testing.assert_allclose(report.per_epoch[t], expected, rtol=1e-12)
            mask = record.participation_mask()
            assert (report.per_epoch[t][~mask] == 0.0).all()

    def test_log_helpers_report_attendance(self, hfl_log):
        matrix = hfl_log.participation_matrix()
        expected = np.array(
            [[True] * 3, [True, False, True], [False, False, True], [False] * 3]
        )
        np.testing.assert_array_equal(matrix, expected)
        assert hfl_log.rounds_attended(0) == 2
        assert hfl_log.rounds_attended(1) == 1
        assert hfl_log.rounds_attended(2) == 3
        assert hfl_log.records[1].n_arrived == 2


class TestInteractivePartial:
    @pytest.fixture(scope="class")
    def faulty_run(self):
        federation = build_hfl_federation(
            mnist_like(240, seed=0), n_parties=4, n_mislabeled=1, seed=0
        )
        trainer = HFLTrainer(
            _factory, epochs=4, lr_schedule=LRSchedule(0.5)
        )
        runtime = FederatedRuntime(
            RuntimeConfig(faults=FaultPlan(dropout_rate=0.4, seed=1))
        )
        result = runtime.run_hfl(trainer, federation.locals, federation.validation)
        return federation, result

    def test_absent_rounds_are_zero(self, faulty_run):
        federation, result = faulty_run
        matrix = result.log.participation_matrix()
        assert not matrix.all(), "seed chosen so some party misses some round"
        report = estimate_hfl_interactive(
            result.log, federation.validation, _factory, federation.locals
        )
        np.testing.assert_array_equal(report.per_epoch[~matrix], 0.0)

    def test_first_round_agrees_with_resource_saving(self, faulty_run):
        """At t=1 there is no trajectory drift yet, so Algorithm 1 reduces
        to Algorithm 2 exactly — masked divisor included."""
        federation, result = faulty_run
        interactive = estimate_hfl_interactive(
            result.log, federation.validation, _factory, federation.locals
        )
        first_order = estimate_hfl_resource_saving(
            result.log, federation.validation, _factory
        )
        np.testing.assert_allclose(
            interactive.per_epoch[0], first_order.per_epoch[0], rtol=1e-10
        )


# VFL: 3 parties owning two coefficients each.
VFL_BLOCKS = [np.array([0, 1]), np.array([2, 3]), np.array([4, 5])]
VFL_MASKS = [None, np.array([True, False, True]), np.array([False, True, True])]


def _build_vfl_log() -> VFLTrainingLog:
    rng = np.random.default_rng(7)
    d = 6
    log = VFLTrainingLog(
        feature_blocks=VFL_BLOCKS, active_parties=[0, 1, 2]
    )
    for t, mask in enumerate(VFL_MASKS, start=1):
        weights = np.ones(3)
        if mask is not None:
            weights = np.where(mask, weights, 0.0)
        log.records.append(
            VFLEpochRecord(
                epoch=t,
                lr=0.1,
                theta_before=rng.normal(size=d),
                train_gradient=rng.normal(size=d),
                val_gradient=rng.normal(size=d),
                weights=weights,
                participation=mask,
            )
        )
    return log


class TestVFLPartial:
    def test_first_order_matches_hand_computed_sums(self):
        log = _build_vfl_log()
        report = estimate_vfl_first_order(log)
        expected = np.zeros((3, 3))
        for t, record in enumerate(log.records):
            for party in (0, 1, 2):
                if record.participated(party):
                    block = VFL_BLOCKS[party]
                    expected[t, party] = record.lr * float(
                        record.val_gradient[block] @ record.train_gradient[block]
                    )
        np.testing.assert_allclose(report.per_epoch, expected, rtol=1e-12)
        np.testing.assert_allclose(report.totals, expected.sum(axis=0), rtol=1e-12)
        assert report.per_epoch[1, 1] == 0.0
        assert report.per_epoch[2, 0] == 0.0

    def test_second_order_zero_at_missed_rounds(self):
        workload = build_vfl_workload(
            "iris",
            epochs=12,
            seed=0,
            runtime=RuntimeConfig(faults=FaultPlan(dropout_rate=0.3, seed=1)),
        )
        log = workload.result.log
        missed = [
            (t, party)
            for t, r in enumerate(log.records)
            for party in log.active_parties
            if not r.participated(party)
        ]
        assert missed, "seed chosen so some party misses some round"
        report = estimate_vfl_second_order(
            log, workload.trainer.model, workload.split.train
        )
        for t, party in missed:
            col = log.active_parties.index(party)
            assert report.per_epoch[t, col] == 0.0


class TestParticipationRoundTrip:
    def test_hfl_masks_survive_npz(self, hfl_log, tmp_path):
        path = tmp_path / "log.npz"
        save_training_log(hfl_log, path)
        loaded = load_training_log(path)
        assert loaded.records[0].participation is None  # full round collapses
        for original, reread in zip(hfl_log.records, loaded.records):
            np.testing.assert_array_equal(
                original.participation_mask(), reread.participation_mask()
            )
        np.testing.assert_array_equal(
            loaded.participation_matrix(), hfl_log.participation_matrix()
        )

    def test_vfl_masks_survive_npz(self, tmp_path):
        log = _build_vfl_log()
        path = tmp_path / "vfl_log.npz"
        save_vfl_training_log(log, path)
        loaded = load_vfl_training_log(path)
        assert loaded.records[0].participation is None
        for original, reread in zip(log.records, loaded.records):
            np.testing.assert_array_equal(
                original.participation_mask(), reread.participation_mask()
            )

    def test_pre_runtime_files_load_as_full_attendance(self, hfl_log, tmp_path):
        """Logs written before the participation field existed still load."""
        path = tmp_path / "log.npz"
        save_training_log(hfl_log, path)
        with np.load(path, allow_pickle=False) as data:
            stripped = {
                key: data[key] for key in data.files if key != "participation"
            }
        # A file that predates the participation field also predates content
        # checksums — drop it from the meta to simulate the real artifact.
        meta = json.loads(str(stripped["meta"]))
        del meta["checksum"]
        stripped["meta"] = json.dumps(meta)
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **stripped)
        with pytest.warns(UserWarning, match="no embedded checksum"):
            loaded = load_training_log(legacy)
        assert all(r.participation is None for r in loaded.records)
        assert loaded.participation_matrix().all()
