"""The HTTP JSON API end to end, over a real socket.

Boots :class:`EvaluationHTTPServer` on an ephemeral port, registers runs
by POSTing saved ``.npz`` logs (the HFL one re-deriving its validation
set and model from the dataset spec, exactly as the CLI workload builder
does), and exercises every endpoint plus the error paths — all with
stdlib ``urllib`` clients, matching how the CI smoke job drives it.
"""

import http.client
import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving
from repro.experiments.workloads import build_hfl_workload
from repro.io import save_training_log, save_vfl_training_log
from repro.serve import EvaluationHTTPServer, EvaluationService
from repro.serve.http import hfl_validation_and_model

# Inert without the pytest-timeout plugin (CI installs it); a hung socket
# test then fails instead of wedging the suite.
pytestmark = pytest.mark.timeout(120)

EPOCHS = 3
SEED = 0
N_SAMPLES = 300


@pytest.fixture(scope="module")
def workload():
    return build_hfl_workload(
        "mnist", n_parties=3, epochs=EPOCHS, n_samples=N_SAMPLES, seed=SEED
    )


@pytest.fixture(scope="module")
def log_paths(workload, vfl_result, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve_http")
    hfl_path = root / "hfl_run.npz"
    vfl_path = root / "vfl_run.npz"
    save_training_log(workload.result.log, hfl_path)
    save_vfl_training_log(vfl_result.log, vfl_path)
    return {"hfl": str(hfl_path), "vfl": str(vfl_path)}


@pytest.fixture()
def server():
    httpd = EvaluationHTTPServer(("127.0.0.1", 0), EvaluationService())
    httpd.serve_background()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    httpd.service.close()


def _get(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=30
    ) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _register_hfl(server, log_paths, **extra):
    spec = {
        "kind": "hfl",
        "log_path": log_paths["hfl"],
        "dataset": "mnist",
        "seed": SEED,
        "n_samples": N_SAMPLES,
        **extra,
    }
    return _post(server, "/runs", spec)


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body == {"status": "ok", "runs": 0, "degraded_runs": []}

    def test_register_and_query_hfl_run(self, server, log_paths, workload):
        status, created = _register_hfl(server, log_paths, run_id="audit")
        assert status == 201
        assert created == {
            "run_id": "audit",
            "kind": "hfl",
            "estimator": "digfl",
            "epochs": EPOCHS,
        }

        status, contributions = _get(server, "/runs/audit/contributions")
        assert status == 200
        batch = estimate_hfl_resource_saving(
            workload.result.log,
            workload.federation.validation,
            workload.model_factory,
        )
        # The server re-derived validation + model from (dataset, seed):
        # its totals are bit-for-bit the local batch estimate.
        assert contributions["totals"] == [float(v) for v in batch.totals]
        assert contributions["epochs"] == EPOCHS

        status, leaderboard = _get(server, "/runs/audit/leaderboard?top=2")
        assert status == 200
        rows = leaderboard["leaderboard"]
        assert [row["rank"] for row in rows] == [1, 2]
        assert rows[0]["contribution"] >= rows[1]["contribution"]

        status, weights = _get(server, "/runs/audit/weights")
        assert status == 200
        assert weights["scheme"] == "rectified"
        assert sum(weights["weights"]) == pytest.approx(1.0)

        status, runs = _get(server, "/runs")
        assert status == 200
        assert [run["run_id"] for run in runs["runs"]] == ["audit"]

    def test_register_and_query_vfl_run(self, server, log_paths, vfl_result):
        status, created = _post(
            server, "/runs", {"kind": "vfl", "log_path": log_paths["vfl"]}
        )
        assert status == 201
        assert created["kind"] == "vfl"
        run_id = created["run_id"]
        status, contributions = _get(server, f"/runs/{run_id}/contributions")
        assert status == 200
        assert contributions["method"] == "digfl-vfl"
        assert len(contributions["totals"]) == len(vfl_result.log.active_parties)

    def test_metricz_counts_requests(self, server, log_paths):
        _register_hfl(server, log_paths)
        _get(server, "/runs/hfl-1/leaderboard")
        _get(server, "/runs/hfl-1/leaderboard")
        # The request latency is recorded *after* the response bytes go
        # out (the measurement includes the write), so the handler thread
        # can still be about to record when the client moves on — poll
        # instead of asserting the first scrape.
        deadline = time.monotonic() + 5.0
        while True:
            status, metrics = _get(server, "/metricz")
            assert status == 200
            if (
                metrics["latency"]["http"]["count"] >= 3
                or time.monotonic() > deadline
            ):
                break
            time.sleep(0.02)
        cache = metrics["cache"]
        assert cache["lookups"] == cache["hits"] + cache["misses"]
        assert cache["hits"] > 0  # the repeated leaderboard query
        assert metrics["latency"]["http"]["count"] >= 3
        assert metrics["latency"]["query"]["count"] >= 2


class TestErrorPaths:
    def _status(self, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_unknown_run_is_404(self, server):
        code, body = self._status(lambda: _get(server, "/runs/ghost/leaderboard"))
        assert code == 404
        assert "ghost" in body["error"]

    def test_unknown_path_is_404(self, server):
        code, _ = self._status(lambda: _get(server, "/bogus"))
        assert code == 404

    def test_missing_log_path_is_400(self, server):
        code, body = self._status(lambda: _post(server, "/runs", {"kind": "hfl"}))
        assert code == 400
        assert "log_path" in body["error"]

    def test_bad_kind_is_400(self, server):
        code, body = self._status(
            lambda: _post(server, "/runs", {"kind": "diagonal", "log_path": "x"})
        )
        assert code == 400
        assert "kind" in body["error"]

    def test_nonexistent_log_file_is_400(self, server):
        code, body = self._status(
            lambda: _post(
                server, "/runs", {"kind": "vfl", "log_path": "/no/such.npz"}
            )
        )
        assert code == 400
        assert "/no/such.npz" in body["error"]

    def test_malformed_json_is_400(self, server):
        def call():
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/runs",
                data=b"{not json",
                method="POST",
            )
            urllib.request.urlopen(request, timeout=30)

        code, body = self._status(call)
        assert code == 400
        assert "not JSON" in body["error"]

    def test_bad_weight_scheme_is_400(self, server, log_paths):
        _register_hfl(server, log_paths)
        code, body = self._status(
            lambda: _get(server, "/runs/hfl-1/weights?scheme=banana")
        )
        assert code == 400
        assert "scheme" in body["error"]

    def test_bad_dataset_is_400(self, server, log_paths):
        code, body = self._status(
            lambda: _register_hfl(server, log_paths, dataset="imagenet")
        )
        assert code == 400
        assert "imagenet" in body["error"]

    def _raw(self, server, method, path, *, headers=(), body=None):
        """A request urllib refuses to make (bad lengths, odd methods)."""
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.putrequest(method, path, skip_accept_encoding=True)
            for name, value in headers:
                conn.putheader(name, value)
            conn.endheaders(body)
            response = conn.getresponse()
            return response, json.loads(response.read())
        finally:
            conn.close()

    def test_post_without_content_length_is_411(self, server):
        response, body = self._raw(server, "POST", "/runs")
        assert response.status == 411
        assert "Content-Length" in body["error"]

    def test_oversized_content_length_is_413(self, server):
        response, body = self._raw(
            server, "POST", "/runs",
            headers=[("Content-Length", str(32 * 1024 * 1024))],
        )
        assert response.status == 413
        assert "exceeds" in body["error"]

    def test_garbled_content_length_is_400(self, server):
        response, body = self._raw(
            server, "POST", "/runs", headers=[("Content-Length", "banana")],
        )
        assert response.status == 400
        assert "Content-Length" in body["error"]

    def test_wrong_method_is_405_with_allow(self, server):
        response, body = self._raw(server, "DELETE", "/runs")
        assert response.status == 405
        assert response.headers["Allow"] == "GET, POST"
        assert "DELETE" in body["error"]

    def test_post_to_get_only_path_is_405(self, server):
        response, _ = self._raw(
            server, "POST", "/healthz", headers=[("Content-Length", "0")],
        )
        assert response.status == 405
        assert response.headers["Allow"] == "GET"

    def test_put_to_unknown_path_is_404(self, server):
        response, _ = self._raw(server, "PUT", "/bogus")
        assert response.status == 404


class TestResilienceStatuses:
    """The typed-error HTTP mappings: 503 on closed, 429 + Retry-After."""

    def _status(self, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        return excinfo.value

    def test_closed_service_is_503(self, server):
        server.service.close()
        error = self._status(lambda: _get(server, "/runs"))
        assert error.code == 503
        assert "closed" in json.loads(error.read())["error"]

    def test_shed_request_is_429_with_retry_after(self, log_paths, vfl_result):
        import threading

        from repro.serve import ChaosPolicy, inject_chaos

        release = threading.Event()
        service = EvaluationService(max_workers=1, admission_limit=1)
        httpd = EvaluationHTTPServer(("127.0.0.1", 0), service)
        httpd.serve_background()
        try:
            run_id = service.register_vfl(
                vfl_result.log.feature_blocks, vfl_result.log.active_parties
            )
            service.ingest(run_id, vfl_result.log.records[0])
            # Wedge the only worker: the compute blocks until released.
            inject_chaos(
                service, run_id,
                ChaosPolicy(
                    latency_prob=1.0, latency_ms=1.0,
                    sleep=lambda _s: release.wait(timeout=60),
                ),
            )
            blocked = threading.Thread(
                target=lambda: _get(httpd, f"/runs/{run_id}/contributions")
            )
            blocked.start()
            try:
                for _ in range(2000):
                    if service.admission.depth.value >= 1:
                        break
                    threading.Event().wait(0.005)
                error = self._status(
                    lambda: _get(httpd, f"/runs/{run_id}/leaderboard")
                )
                assert error.code == 429
                assert int(error.headers["Retry-After"]) >= 1
                assert service.admission.shed >= 1
            finally:
                release.set()
                blocked.join(timeout=60)
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()


class TestValidationReconstruction:
    def test_spec_rederives_the_workload_validation_and_model(self, workload):
        """(dataset, seed, n_samples) alone reproduce the exact arrays."""
        validation, model_factory = hfl_validation_and_model(
            "mnist", SEED, N_SAMPLES
        )
        assert np.array_equal(validation.X, workload.federation.validation.X)
        assert np.array_equal(validation.y, workload.federation.validation.y)
        assert np.array_equal(
            model_factory().get_flat(), workload.model_factory().get_flat()
        )
