"""Tests for the stratified and KernelSHAP estimators."""

import numpy as np
import pytest

from repro.metrics import pearson_correlation
from repro.shapley import (
    CallableUtility,
    exact_shapley_values,
    kernel_shapley,
    kernel_shapley_values,
    stratified_shapley,
    stratified_shapley_values,
)
from repro.shapley.kernel import exact_kernel_weights


def additive_utility(values):
    values = np.asarray(values, dtype=np.float64)
    return CallableUtility(len(values), lambda s: float(sum(values[i] for i in s)))


def random_game(n, seed):
    rng = np.random.default_rng(seed)
    table = {frozenset(): 0.0}

    def fn(coalition):
        key = frozenset(coalition)
        if key not in table:
            table[key] = len(key) + 0.5 * float(rng.normal())
        return table[key]

    return CallableUtility(n, fn)


class TestStratified:
    def test_exact_on_additive(self):
        values = np.array([2.0, -1.0, 0.5])
        est, se = stratified_shapley_values(
            additive_utility(values), samples_per_stratum=2, seed=0
        )
        np.testing.assert_allclose(est, values, atol=1e-12)
        np.testing.assert_allclose(se, 0.0, atol=1e-12)

    def test_converges_on_random_game(self):
        util = random_game(5, seed=1)
        exact = exact_shapley_values(util)
        est, _ = stratified_shapley_values(util, samples_per_stratum=40, seed=2)
        assert pearson_correlation(est, exact) > 0.9

    def test_standard_errors_shrink_with_budget(self):
        _, se_small = stratified_shapley_values(
            random_game(4, seed=3), samples_per_stratum=5, seed=4
        )
        _, se_large = stratified_shapley_values(
            random_game(4, seed=3), samples_per_stratum=60, seed=4
        )
        assert se_large.mean() < se_small.mean()

    def test_neyman_allocation_runs(self):
        util = random_game(4, seed=5)
        est, se = stratified_shapley_values(
            util, samples_per_stratum=10, allocation="neyman", seed=6
        )
        assert est.shape == (4,)
        assert np.all(se >= 0)

    def test_bad_allocation(self):
        with pytest.raises(ValueError, match="allocation"):
            stratified_shapley_values(
                additive_utility([1.0, 2.0]), allocation="magic"
            )

    def test_report_carries_std_errors(self):
        report = stratified_shapley(
            additive_utility([1.0, 2.0]), samples_per_stratum=3, seed=0
        )
        assert report.method == "stratified-uniform"
        assert len(report.extra["std_errors"]) == 2


class TestKernelShap:
    def test_exact_on_additive(self):
        """An additive game IS the surrogate model: exact for any samples."""
        values = np.array([3.0, -2.0, 1.0, 0.5])
        est = kernel_shapley_values(additive_utility(values), n_samples=60, seed=0)
        np.testing.assert_allclose(est, values, atol=1e-8)

    def test_efficiency_by_construction(self):
        util = random_game(5, seed=7)
        est = kernel_shapley_values(util, n_samples=100, seed=8)
        v_full = util(util.grand_coalition)
        assert est.sum() == pytest.approx(v_full, abs=1e-8)

    def test_converges_on_random_game(self):
        util = random_game(5, seed=9)
        exact = exact_shapley_values(util)
        est = kernel_shapley_values(util, n_samples=600, seed=10)
        assert pearson_correlation(est, exact) > 0.85

    def test_single_player(self):
        np.testing.assert_allclose(
            kernel_shapley_values(additive_utility([4.0])), [4.0]
        )

    def test_bad_samples(self):
        with pytest.raises(ValueError):
            kernel_shapley_values(additive_utility([1.0, 2.0]), n_samples=0)

    def test_report(self):
        report = kernel_shapley(additive_utility([1.0, 2.0]), n_samples=30, seed=0)
        assert report.method == "kernel-shap"

    def test_kernel_weights_symmetric(self):
        weights = exact_kernel_weights(6)
        assert weights[1] == pytest.approx(weights[5])
        assert weights[2] == pytest.approx(weights[4])

    def test_kernel_weights_favor_extremes(self):
        weights = exact_kernel_weights(8)
        assert weights[1] > weights[4]
