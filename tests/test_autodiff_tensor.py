"""Gradient checks for every autodiff primitive against finite differences."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    absolute,
    amax,
    broadcast_to,
    concatenate,
    exp,
    grad,
    log,
    matmul,
    maximum_const,
    mul,
    no_grad,
    power,
    put,
    relu,
    reshape,
    sigmoid,
    sqrt,
    take,
    tanh,
    tmean,
    transpose,
    tsum,
)

RNG = np.random.default_rng(20240701)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    out = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    grad_flat = out.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(Tensor(x)).item()
        flat[i] = orig - eps
        down = fn(Tensor(x)).item()
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return out


def check_grad(fn, x: np.ndarray, atol: float = 1e-6) -> None:
    """Assert autodiff gradient of scalar fn matches finite differences."""
    leaf = Tensor(x.copy(), requires_grad=True)
    (g,) = grad(fn(leaf), [leaf])
    expected = numeric_grad(fn, x.copy())
    np.testing.assert_allclose(g.data, expected, atol=atol, rtol=1e-4)


class TestArithmetic:
    def test_add(self):
        y = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda x: tsum(x + y), RNG.normal(size=(3, 4)))

    def test_add_scalar(self):
        check_grad(lambda x: tsum(x + 3.5), RNG.normal(size=(5,)))

    def test_radd(self):
        check_grad(lambda x: tsum(2.0 + x), RNG.normal(size=(5,)))

    def test_sub(self):
        y = Tensor(RNG.normal(size=(3,)))
        check_grad(lambda x: tsum(x - y), RNG.normal(size=(3,)))

    def test_rsub(self):
        check_grad(lambda x: tsum(1.0 - x), RNG.normal(size=(3,)))

    def test_mul(self):
        y = Tensor(RNG.normal(size=(2, 3)))
        check_grad(lambda x: tsum(mul(x, y)), RNG.normal(size=(2, 3)))

    def test_mul_both_sides_same_tensor(self):
        check_grad(lambda x: tsum(mul(x, x)), RNG.normal(size=(4,)))

    def test_div(self):
        y = Tensor(RNG.normal(size=(3,)) + 3.0)
        check_grad(lambda x: tsum(x / y), RNG.normal(size=(3,)))

    def test_div_denominator_grad(self):
        y = Tensor(RNG.normal(size=(3,)))
        check_grad(lambda x: tsum(y / x), RNG.normal(size=(3,)) + 2.5)

    def test_neg(self):
        check_grad(lambda x: tsum(-x), RNG.normal(size=(3,)))

    def test_pow(self):
        check_grad(lambda x: tsum(power(x, 3.0)), RNG.normal(size=(4,)))

    def test_pow_fractional(self):
        check_grad(lambda x: tsum(power(x, 0.5)), RNG.random(4) + 0.5)

    def test_sqrt(self):
        check_grad(lambda x: tsum(sqrt(x)), RNG.random(4) + 0.5)


class TestElementwise:
    def test_exp(self):
        check_grad(lambda x: tsum(exp(x)), RNG.normal(size=(3, 2)))

    def test_log(self):
        check_grad(lambda x: tsum(log(x)), RNG.random((3,)) + 0.5)

    def test_tanh(self):
        check_grad(lambda x: tsum(tanh(x)), RNG.normal(size=(6,)))

    def test_sigmoid(self):
        check_grad(lambda x: tsum(sigmoid(x)), RNG.normal(size=(6,)))

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(Tensor(np.array([-800.0, 800.0])))
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_relu(self):
        # Keep values away from the kink for finite differences.
        x = RNG.normal(size=(8,))
        x[np.abs(x) < 0.1] = 0.5
        check_grad(lambda t: tsum(relu(t)), x)

    def test_abs(self):
        x = RNG.normal(size=(8,))
        x[np.abs(x) < 0.1] = 0.5
        check_grad(lambda t: tsum(absolute(t)), x)

    def test_maximum_const(self):
        x = RNG.normal(size=(8,))
        x[np.abs(x - 0.3) < 0.1] = 1.0
        check_grad(lambda t: tsum(maximum_const(t, 0.3)), x)


class TestReductionsAndShapes:
    def test_sum_all(self):
        check_grad(lambda x: tsum(x), RNG.normal(size=(3, 4)))

    def test_sum_axis(self):
        check_grad(lambda x: tsum(tsum(x, axis=0) * 2.0), RNG.normal(size=(3, 4)))

    def test_sum_axis_keepdims(self):
        check_grad(
            lambda x: tsum(mul(tsum(x, axis=1, keepdims=True), x)),
            RNG.normal(size=(3, 4)),
        )

    def test_sum_tuple_axis(self):
        check_grad(
            lambda x: tsum(tsum(x, axis=(1, 3)) ** 2.0), RNG.normal(size=(2, 3, 2, 3))
        )

    def test_mean(self):
        check_grad(lambda x: tmean(x) * 7.0, RNG.normal(size=(4, 5)))

    def test_mean_axis(self):
        check_grad(lambda x: tsum(tmean(x, axis=1) ** 2.0), RNG.normal(size=(3, 4)))

    def test_reshape(self):
        check_grad(
            lambda x: tsum(reshape(x, (6,)) * Tensor(np.arange(6.0))),
            RNG.normal(size=(2, 3)),
        )

    def test_transpose_default(self):
        y = Tensor(RNG.normal(size=(4, 3)))
        check_grad(lambda x: tsum(mul(transpose(x), y)), RNG.normal(size=(3, 4)))

    def test_transpose_axes(self):
        check_grad(
            lambda x: tsum(transpose(x, (2, 0, 1)) ** 2.0),
            RNG.normal(size=(2, 3, 4)),
        )

    def test_broadcast_to(self):
        y = Tensor(RNG.normal(size=(4, 3)))
        check_grad(
            lambda x: tsum(mul(broadcast_to(x, (4, 3)), y)), RNG.normal(size=(1, 3))
        )

    def test_broadcasting_in_add(self):
        y = Tensor(RNG.normal(size=(4, 3)))
        check_grad(lambda x: tsum(mul(x + y, x + y)), RNG.normal(size=(3,)))

    def test_amax(self):
        x = RNG.normal(size=(4, 5)) * 3  # distinct values with high probability
        check_grad(lambda t: tsum(amax(t, axis=1) ** 2.0), x)

    def test_amax_keepdims_shape(self):
        out = amax(Tensor(RNG.normal(size=(2, 3))), axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_amax_ties_split_gradient(self):
        x = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        (g,) = grad(tsum(amax(x, axis=1)), [x])
        np.testing.assert_allclose(g.data, [[0.5, 0.5, 0.0]])


class TestMatmul:
    def test_2d(self):
        y = Tensor(RNG.normal(size=(4, 2)))
        check_grad(lambda x: tsum(matmul(x, y)), RNG.normal(size=(3, 4)))

    def test_right_operand(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda y: tsum(matmul(x, y) ** 2.0), RNG.normal(size=(4, 2)))

    def test_vector_vector(self):
        y = Tensor(RNG.normal(size=(5,)))
        check_grad(lambda x: matmul(x, y), RNG.normal(size=(5,)))

    def test_vector_matrix(self):
        m = Tensor(RNG.normal(size=(5, 3)))
        check_grad(lambda x: tsum(matmul(x, m)), RNG.normal(size=(5,)))

    def test_matrix_vector(self):
        m = Tensor(RNG.normal(size=(3, 5)))
        check_grad(lambda x: tsum(matmul(m, x)), RNG.normal(size=(5,)))

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="matmul"):
            matmul(Tensor(np.zeros((2, 2, 2))), Tensor(np.zeros((2, 2, 2))))


class TestIndexing:
    def test_take_basic_slice(self):
        check_grad(lambda x: tsum(x[1:3] ** 2.0), RNG.normal(size=(5,)))

    def test_take_fancy(self):
        idx = np.array([0, 2, 2, 1])
        check_grad(lambda x: tsum(take(x, idx) ** 2.0), RNG.normal(size=(4,)))

    def test_take_pair_index(self):
        rows = np.array([0, 1])
        cols = np.array([2, 0])
        check_grad(
            lambda x: tsum(take(x, (rows, cols)) * 3.0), RNG.normal(size=(2, 3))
        )

    def test_put_scatter_adds_duplicates(self):
        g = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        out = put(g, np.array([0, 0, 1]), (3,))
        np.testing.assert_allclose(out.data, [3.0, 3.0, 0.0])

    def test_put_gradient_is_gather(self):
        idx = np.array([0, 0, 1])
        check_grad(lambda g: tsum(put(g, idx, (3,)) ** 2.0), RNG.normal(size=(3,)))

    def test_concatenate(self):
        y = Tensor(RNG.normal(size=(2, 3)))
        check_grad(
            lambda x: tsum(concatenate([x, y], axis=0) ** 2.0),
            RNG.normal(size=(2, 3)),
        )

    def test_concatenate_axis1(self):
        y = Tensor(RNG.normal(size=(2, 2)))
        check_grad(
            lambda x: tsum(concatenate([y, x], axis=1) ** 2.0),
            RNG.normal(size=(2, 3)),
        )


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_comparison_returns_numpy(self):
        x = Tensor(np.array([1.0, -1.0]))
        assert isinstance(x > 0, np.ndarray)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))
