"""The SLO engine: classification, burn-rate windows, error budgets.

Every test drives :class:`SloTracker` through an injectable fake clock —
hours of simulated traffic march through the multi-window burn-rate math
without a single ``sleep``.  The scenarios mirror the SRE-workbook
properties the engine exists to provide: a sustained error rate fires
both windows, a short blip fires neither (the long window vetoes it),
sheds burn the shed budget and never availability, and budgets exhaust
exactly when the bad fraction crosses the objective's complement.
"""

import json

import pytest

from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    SLO,
    BurnWindow,
    SloTracker,
    default_slos,
    shed_from_response,
)


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def tracker(slos=None, *, bin_s: float = 5.0):
    clock = FakeClock()
    return SloTracker(slos, clock=clock, bin_s=bin_s), clock


def drive(trk, clock, *, seconds, rate_s=1.0, status=200, latency_s=0.001,
          shed=False, bad_every=None, bad_status=500):
    """``seconds`` of traffic at ``rate_s`` req/s; every ``bad_every``-th
    request answers ``bad_status`` instead."""
    n = int(seconds * rate_s)
    for i in range(n):
        clock.advance(1.0 / rate_s)
        if bad_every and i % bad_every == bad_every - 1:
            trk.observe(status=bad_status, latency_s=latency_s, shed=False)
        else:
            trk.observe(status=status, latency_s=latency_s, shed=shed)


# ------------------------------------------------------------- declarations


class TestDeclarations:
    def test_burn_window_validates_ordering(self):
        with pytest.raises(ValueError, match="short_s < long_s"):
            BurnWindow(short_s=600.0, long_s=300.0, max_burn=14.4)
        with pytest.raises(ValueError, match="max_burn"):
            BurnWindow(short_s=300.0, long_s=3600.0, max_burn=0.0)

    def test_slo_validates_kind_objective_threshold(self):
        with pytest.raises(ValueError, match="kind"):
            SLO("x", kind="vibes")
        with pytest.raises(ValueError, match="objective"):
            SLO("x", objective=1.0)
        with pytest.raises(ValueError, match="threshold_s"):
            SLO("x", kind="latency", objective=0.99)

    def test_budget_is_the_objective_complement(self):
        assert SLO("x", objective=0.999).budget == pytest.approx(0.001)

    def test_default_slos_are_unique_and_cover_the_three_kinds(self):
        slos = default_slos()
        assert sorted(slo.kind for slo in slos) == [
            "availability", "latency", "shed",
        ]
        assert len({slo.name for slo in slos}) == len(slos)

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SloTracker((SLO("a"), SLO("a", objective=0.95)))


class TestClassification:
    def test_shed_detection_follows_the_failure_ladder(self):
        assert shed_from_response(429, retry_after=False)
        assert shed_from_response(429, retry_after=True)
        assert shed_from_response(503, retry_after=True)
        assert not shed_from_response(503, retry_after=False)
        assert not shed_from_response(500, retry_after=True)
        assert not shed_from_response(200, retry_after=False)

    def test_availability_excludes_sheds(self):
        slo = SLO("avail", kind="availability")
        assert slo.classify(status=200, latency_s=0.0, shed=False) is True
        assert slo.classify(status=500, latency_s=0.0, shed=False) is False
        assert slo.classify(status=503, latency_s=0.0, shed=True) is None

    def test_latency_judges_only_successes(self):
        slo = SLO("lat", kind="latency", objective=0.99, threshold_s=0.25)
        assert slo.classify(status=200, latency_s=0.1, shed=False) is True
        assert slo.classify(status=200, latency_s=0.3, shed=False) is False
        assert slo.classify(status=404, latency_s=0.3, shed=False) is None
        assert slo.classify(status=429, latency_s=0.3, shed=True) is None

    def test_shed_slo_counts_sheds_as_bad(self):
        slo = SLO("shed", kind="shed", objective=0.99)
        assert slo.classify(status=200, latency_s=0.0, shed=False) is True
        assert slo.classify(status=429, latency_s=0.0, shed=True) is False


# ---------------------------------------------------------------- burn rates


class TestBurnRates:
    def test_clean_traffic_never_burns(self):
        trk, clock = tracker()
        drive(trk, clock, seconds=3600)
        report = trk.evaluate()
        assert not report.burning
        avail = report.result("availability")
        assert avail["budget_remaining"] == pytest.approx(1.0)
        assert not avail["budget_exhausted"]

    def test_sustained_error_rate_fires_both_windows(self):
        # 2% bad for an hour: burn = 0.02/0.001 = 20x in the 5m *and* 1h
        # windows, over the fast pair's 14.4x threshold.
        trk, clock = tracker()
        drive(trk, clock, seconds=3600, bad_every=50)
        report = trk.evaluate()
        avail = report.result("availability")
        assert avail["burning"]
        fast = avail["windows"][0]
        assert fast["firing"]
        assert fast["short_burn"] == pytest.approx(20.0, rel=0.2)
        assert fast["long_burn"] == pytest.approx(20.0, rel=0.2)
        assert report.burning

    def test_short_blip_is_vetoed_by_the_long_window(self):
        # Six clean hours, then 30 seconds of 100% errors: the 5m window
        # burns far past threshold, but each pair's long window holds
        # under its own — the multi-window scheme must NOT page.
        trk, clock = tracker()
        drive(trk, clock, seconds=6 * 3600)
        drive(trk, clock, seconds=30, status=500)
        report = trk.evaluate()
        avail = report.result("availability")
        fast = avail["windows"][0]
        assert fast["short_burn"] > fast["max_burn"]
        assert fast["long_burn"] < fast["max_burn"]
        assert not fast["firing"]
        assert not avail["burning"]

    def test_recovery_stops_the_burn(self):
        # An hour of 5% errors fires; ten clean minutes later the fast
        # window has rolled clean and the alert clears.
        trk, clock = tracker()
        drive(trk, clock, seconds=3600, bad_every=20)
        assert trk.evaluate().result("availability")["burning"]
        drive(trk, clock, seconds=600)
        report = trk.evaluate()
        fast = report.result("availability")["windows"][0]
        assert fast["short_burn"] == pytest.approx(0.0)
        assert not fast["firing"]

    def test_empty_windows_do_not_fire(self):
        trk, _ = tracker()
        report = trk.evaluate()
        assert not report.burning
        for result in report.results:
            assert result["budget_remaining"] == pytest.approx(1.0)

    def test_sheds_burn_the_shed_budget_not_availability(self):
        trk, clock = tracker()
        # 20% of traffic shed for an hour (20x the 1% shed budget, over
        # the fast pair's 14.4x): availability must stay clean — sheds
        # are excluded from it — while the shed objective burns.
        n = 3600
        for i in range(n):
            clock.advance(1.0)
            if i % 5 == 4:
                trk.observe(status=429, latency_s=0.0, shed=True)
            else:
                trk.observe(status=200, latency_s=0.001)
        report = trk.evaluate()
        assert not report.result("availability")["burning"]
        assert report.result("shed")["burning"]
        counts = report.counts
        assert counts["shed"] == n // 5
        assert counts["errors"] == 0

    def test_latency_slo_burns_on_slow_successes(self):
        trk, clock = tracker()
        # 10% of successful answers over the 250ms threshold for an
        # hour: 10x the 1% budget — over the slow pair's 6x and within
        # the fast pair's 14.4x, so exactly one window pair fires.
        for i in range(3600):
            clock.advance(1.0)
            slow = i % 10 == 9
            trk.observe(status=200, latency_s=0.4 if slow else 0.001)
        report = trk.evaluate()
        latency = report.result("latency")
        assert latency["burning"]
        assert not report.result("availability")["burning"]


class TestBudgets:
    def test_budget_exhaustion_at_the_objective_complement(self):
        # 0.2% bad over the 6h budget window against a 0.1% budget:
        # consumed 2x, exhausted, remaining negative.
        trk, clock = tracker()
        drive(trk, clock, seconds=21600, bad_every=500)
        avail = trk.evaluate().result("availability")
        assert avail["budget_consumed"] == pytest.approx(2.0, rel=0.1)
        assert avail["budget_exhausted"]
        assert avail["budget_remaining"] < 0.0

    def test_old_events_age_out_of_the_budget_window(self):
        trk, clock = tracker()
        drive(trk, clock, seconds=600, status=500)  # 10 bad minutes
        assert trk.evaluate().result("availability")["budget_exhausted"]
        # Seven hours later the bad bins are outside every window (and
        # pruned from memory by the next recorded bin).
        clock.advance(7 * 3600.0)
        drive(trk, clock, seconds=60)
        avail = trk.evaluate().result("availability")
        assert avail["budget_remaining"] == pytest.approx(1.0)

    def test_bin_memory_is_bounded_by_retention(self):
        trk, clock = tracker(bin_s=5.0)
        drive(trk, clock, seconds=8 * 3600, rate_s=1.0)
        # Retention is the longest window (6h); at 5s bins that is 4320
        # bins plus the pruning slack — never the full 8h of traffic.
        retention_bins = int(21600 / 5.0) + 2
        for bins in trk._bins.values():
            assert len(bins) <= retention_bins


class TestReport:
    def test_to_dict_is_json_clean_and_carries_counts(self):
        trk, clock = tracker()
        drive(trk, clock, seconds=600, bad_every=100)
        payload = trk.evaluate().to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["counts"]["requests"] == 600
        assert {entry["name"] for entry in round_tripped["slos"]} == {
            "availability", "latency", "shed",
        }
        assert isinstance(round_tripped["burning"], bool)

    def test_table_renders_one_row_per_slo(self):
        trk, clock = tracker()
        drive(trk, clock, seconds=60)
        table = trk.evaluate().table()
        lines = table.splitlines()
        assert len(lines) == 1 + len(default_slos())
        assert "availability" in table
        assert "ok" in table

    def test_result_raises_on_unknown_name(self):
        trk, _ = tracker()
        with pytest.raises(KeyError, match="nope"):
            trk.evaluate().result("nope")

    def test_burn_windows_default_pairs_match_the_workbook(self):
        assert DEFAULT_BURN_WINDOWS[0].short_s == 300.0
        assert DEFAULT_BURN_WINDOWS[0].long_s == 3600.0
        assert DEFAULT_BURN_WINDOWS[1].max_burn == 6.0
