"""Cross-feature tests: reweighting + multiclass VFL, renders, CLI bars."""

import numpy as np
import pytest

from repro.core import VFLDIGFLReweighter, estimate_vfl_first_order
from repro.data import make_tabular_multiclass, vertical_partition
from repro.models import expand_feature_blocks
from repro.nn import LRSchedule
from repro.render import contribution_bars, per_epoch_sparklines
from repro.vfl import VFLTrainer


@pytest.fixture(scope="module")
def multiclass_world():
    dataset = make_tabular_multiclass("mc", 300, 8, 3, temperature=0.5, seed=9)
    train, val = dataset.validation_split(0.15, seed=9)
    feature_blocks = vertical_partition(8, 4, seed=9)
    coeff_blocks = expand_feature_blocks(feature_blocks, 3)
    return train, val, coeff_blocks


class TestMulticlassReweighting:
    def test_reweighted_training_converges(self, multiclass_world):
        train, val, blocks = multiclass_world
        trainer = VFLTrainer(
            "multiclass", blocks, 30, LRSchedule(0.5), n_classes=3
        )
        result = trainer.train(
            train,
            val,
            reweighter=VFLDIGFLReweighter(blocks),
            track_losses=True,
        )
        curve = result.log.val_loss_curve()
        assert curve[-1] < curve[0]

    def test_weights_positive_and_scaled(self, multiclass_world):
        train, val, blocks = multiclass_world
        reweighter = VFLDIGFLReweighter(blocks)
        trainer = VFLTrainer(
            "multiclass", blocks, 5, LRSchedule(0.5), n_classes=3
        )
        result = trainer.train(train, val, reweighter=reweighter)
        for record in result.log.records:
            assert (record.weights >= 0).all()
            # Eq. 31 scaling: weights sum to n when any φ is positive.
            assert record.weights.sum() == pytest.approx(4.0, abs=1e-9) or (
                np.allclose(record.weights, 1.0)
            )

    def test_estimator_reads_reweighted_log(self, multiclass_world):
        train, val, blocks = multiclass_world
        trainer = VFLTrainer(
            "multiclass", blocks, 10, LRSchedule(0.5), n_classes=3
        )
        result = trainer.train(
            train, val, reweighter=VFLDIGFLReweighter(blocks)
        )
        report = estimate_vfl_first_order(result.log)
        assert report.totals.shape == (4,)
        assert np.isfinite(report.totals).all()


class TestRenderOnRealReports:
    def test_bars_render_vfl_report(self, multiclass_world):
        train, val, blocks = multiclass_world
        trainer = VFLTrainer(
            "multiclass", blocks, 8, LRSchedule(0.5), n_classes=3
        )
        result = trainer.train(train, val)
        report = estimate_vfl_first_order(result.log)
        out = contribution_bars(report)
        assert out.count("\n") == 3  # four parties
        spark = per_epoch_sparklines(report)
        assert spark.count("\n") == 3
