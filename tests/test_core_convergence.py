"""Tests for the Lemma 4/5 verification helpers."""

import numpy as np
import pytest

from repro.core import (
    DIGFLReweighter,
    fit_inverse_power_rate,
    is_monotone_decreasing,
    running_min,
    validation_gradient_norms,
    violation_fraction,
)
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer, TrainingLog
from repro.nn import LRSchedule, make_mlp_classifier

from tests.conftest import small_model_factory


class TestCurveHelpers:
    def test_running_min(self):
        np.testing.assert_array_equal(
            running_min(np.array([3.0, 5.0, 2.0, 4.0])), [3.0, 3.0, 2.0, 2.0]
        )

    def test_monotone_true(self):
        assert is_monotone_decreasing(np.array([3.0, 2.0, 2.0, 1.5]))

    def test_monotone_false(self):
        assert not is_monotone_decreasing(np.array([3.0, 2.0, 2.5]))

    def test_monotone_needs_curve(self):
        with pytest.raises(ValueError):
            is_monotone_decreasing(np.array([1.0]))

    def test_violation_fraction(self):
        assert violation_fraction(np.array([3.0, 2.0, 2.5, 2.0])) == pytest.approx(1 / 3)

    def test_violation_fraction_short(self):
        assert violation_fraction(np.array([1.0])) == 0.0


class TestRateFit:
    def test_recovers_known_power_law(self):
        taus = np.arange(1, 40)
        curve = 2.5 / np.sqrt(taus)
        fit = fit_inverse_power_rate(curve)
        assert fit.xi == pytest.approx(2.5, rel=1e-6)
        assert fit.rho == pytest.approx(0.5, abs=1e-6)
        assert fit.r2 > 0.999

    def test_bound_at(self):
        taus = np.arange(1, 20)
        fit = fit_inverse_power_rate(3.0 / taus)
        assert fit.bound_at(9) == pytest.approx(3.0 / 9.0, rel=1e-5)

    def test_constant_curve_rho_zero(self):
        fit = fit_inverse_power_rate(np.full(20, 0.7))
        assert fit.rho == pytest.approx(0.0, abs=1e-9)

    def test_too_short(self):
        with pytest.raises(ValueError):
            fit_inverse_power_rate(np.array([1.0, 0.5]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_inverse_power_rate(np.array([1.0, 0.0, 0.5]))


class TestGradientNorms:
    def test_shape(self, hfl_result, hfl_federation):
        norms = validation_gradient_norms(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        assert norms.shape == (hfl_result.log.n_epochs,)
        assert np.all(norms > 0)

    def test_empty_log(self, hfl_federation):
        with pytest.raises(ValueError):
            validation_gradient_norms(
                TrainingLog(participant_ids=[0]),
                hfl_federation.validation,
                small_model_factory,
            )


class TestLemma4Empirically:
    """Reweighted FedSGD at small lr: monotone loss + shrinking min-grad."""

    @pytest.fixture(scope="class")
    def reweighted_run(self):
        fed = build_hfl_federation(
            mnist_like(900, seed=6), 4, n_mislabeled=2, seed=6
        )

        def factory():
            return make_mlp_classifier(100, 10, hidden=(8,), seed=0)

        trainer = HFLTrainer(factory, epochs=25, lr_schedule=LRSchedule(0.1))
        result = trainer.train(
            fed.locals,
            fed.validation,
            reweighter=DIGFLReweighter(fed.validation),
            track_validation=True,
        )
        return fed, factory, result

    def test_monotone_validation_loss(self, reweighted_run):
        _, _, result = reweighted_run
        assert is_monotone_decreasing(result.log.val_loss_curve(), tolerance=1e-6)

    def test_min_grad_norm_decays(self, reweighted_run):
        fed, factory, result = reweighted_run
        norms = validation_gradient_norms(result.log, fed.validation, factory)
        mins = running_min(norms)
        fit = fit_inverse_power_rate(mins)
        # Lemma 4 bounds min‖∇‖ by ξ/√τ; the small-lr trajectory decays
        # slowly but genuinely (ρ > 0, strictly below its start).  The
        # precise 1/√τ envelope needs far longer horizons than a unit test.
        assert fit.rho > 0.03
        assert fit.r2 > 0.5  # the power law describes the curve
        assert mins[-1] < 0.9 * mins[0]
