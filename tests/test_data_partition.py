"""Tests for partitioners and data-quality corruption (plus properties)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import (
    build_dirichlet_federation,
    build_hfl_federation,
    build_vfl_federation,
    boston_like,
    class_histogram,
    iid_partition,
    mislabel,
    mnist_like,
    noniid_class_partition,
    pairwise_mislabel,
    vertical_partition,
)


class TestIIDPartition:
    def test_disjoint_and_complete(self):
        parts = iid_partition(100, 4, seed=0)
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(100))

    def test_near_equal_sizes(self):
        parts = iid_partition(103, 4, seed=0)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        a = iid_partition(50, 3, seed=2)
        b = iid_partition(50, 3, seed=2)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_more_parties_than_samples(self):
        with pytest.raises(ValueError):
            iid_partition(3, 5)


class TestNonIIDPartition:
    def _labels(self, n=1000, classes=10, seed=0):
        return np.random.default_rng(seed).integers(0, classes, size=n)

    def test_tags_count(self):
        labels = self._labels()
        _, qualities = noniid_class_partition(labels, 5, 2, num_classes=10, seed=0)
        assert qualities.count("noniid") == 2
        assert qualities.count("clean") == 3

    def test_noniid_parties_have_few_classes(self):
        labels = self._labels()
        parts, qualities = noniid_class_partition(
            labels, 5, 2, num_classes=10, max_classes=3, seed=1
        )
        for part, quality in zip(parts, qualities):
            classes = len(np.unique(labels[part]))
            if quality == "noniid":
                assert classes <= 3

    def test_clean_parties_cover_most_classes(self):
        labels = self._labels(2000)
        parts, qualities = noniid_class_partition(
            labels, 4, 1, num_classes=10, seed=2
        )
        for part, quality in zip(parts, qualities):
            if quality == "clean":
                assert len(np.unique(labels[part])) >= 8

    def test_parts_disjoint(self):
        labels = self._labels()
        parts, _ = noniid_class_partition(labels, 6, 3, num_classes=10, seed=3)
        merged = np.concatenate(parts)
        assert len(np.unique(merged)) == len(merged)

    def test_all_parties_nonempty(self):
        labels = self._labels(400)
        parts, _ = noniid_class_partition(labels, 8, 7, num_classes=10, seed=4)
        assert all(len(p) > 0 for p in parts)

    def test_bad_args(self):
        labels = self._labels()
        with pytest.raises(ValueError):
            noniid_class_partition(labels, 3, 4, num_classes=10)
        with pytest.raises(ValueError):
            noniid_class_partition(labels, 3, 1, num_classes=10, min_classes=0)
        with pytest.raises(ValueError):
            noniid_class_partition(labels, 3, 1, num_classes=10, max_classes=10)


class TestMislabel:
    def test_fraction_applied(self):
        y = np.zeros(100, dtype=int)
        corrupted, mask = mislabel(y, 0.3, 10, seed=0)
        assert mask.sum() == 30
        assert (corrupted[mask] != 0).all()

    def test_corrupted_labels_always_differ(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 5, size=200)
        corrupted, mask = mislabel(y, 0.5, 5, seed=2)
        assert (corrupted[mask] != y[mask]).all()

    def test_untouched_labels_identical(self):
        y = np.arange(50) % 7
        corrupted, mask = mislabel(y, 0.2, 7, seed=3)
        np.testing.assert_array_equal(corrupted[~mask], y[~mask])

    def test_zero_fraction(self):
        y = np.arange(10) % 3
        corrupted, mask = mislabel(y, 0.0, 3, seed=0)
        np.testing.assert_array_equal(corrupted, y)
        assert not mask.any()

    def test_labels_stay_in_range(self):
        y = np.arange(100) % 4
        corrupted, _ = mislabel(y, 1.0, 4, seed=0)
        assert corrupted.min() >= 0 and corrupted.max() < 4

    def test_input_not_mutated(self):
        y = np.zeros(20, dtype=int)
        mislabel(y, 0.5, 3, seed=0)
        assert (y == 0).all()

    @given(
        fraction=st.floats(0.0, 1.0),
        classes=st.integers(2, 12),
        seed=st.integers(0, 1000),
    )
    def test_property_corruption_count(self, fraction, classes, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, classes, size=60)
        corrupted, mask = mislabel(y, fraction, classes, seed=seed)
        assert mask.sum() == int(round(fraction * 60))
        assert (corrupted[mask] != y[mask]).all()
        np.testing.assert_array_equal(corrupted[~mask], y[~mask])


class TestPairwiseMislabel:
    def test_flip_is_next_class(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 5, size=200)
        corrupted, mask = pairwise_mislabel(y, 0.4, 5, seed=1)
        np.testing.assert_array_equal(corrupted[mask], (y[mask] + 1) % 5)
        np.testing.assert_array_equal(corrupted[~mask], y[~mask])

    def test_fraction_applied(self):
        y = np.arange(100) % 3
        _, mask = pairwise_mislabel(y, 0.3, 3, seed=0)
        assert mask.sum() == 30

    def test_zero_fraction(self):
        y = np.arange(30) % 4
        corrupted, mask = pairwise_mislabel(y, 0.0, 4, seed=0)
        np.testing.assert_array_equal(corrupted, y)
        assert not mask.any()

    def test_input_not_mutated(self):
        y = np.zeros(20, dtype=int)
        pairwise_mislabel(y, 0.5, 3, seed=0)
        assert (y == 0).all()

    @given(fraction=st.floats(0.0, 1.0), seed=st.integers(0, 200))
    def test_property_structured_flip(self, fraction, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 6, size=50)
        corrupted, mask = pairwise_mislabel(y, fraction, 6, seed=seed)
        assert mask.sum() == int(round(fraction * 50))
        np.testing.assert_array_equal(corrupted[mask], (y[mask] + 1) % 6)


class TestClassHistogram:
    def test_counts(self):
        hist = class_histogram(np.array([0, 0, 2, 1, 2, 2]), 4)
        assert hist == [2, 1, 3, 0]

    def test_empty(self):
        assert class_histogram(np.array([], dtype=int), 3) == [0, 0, 0]


class TestBuildDirichletFederation:
    def test_metadata_histograms_account_for_every_sample(self):
        fed = build_dirichlet_federation(
            mnist_like(600, seed=0), 5, alpha=0.5, seed=0
        )
        histograms = fed.metadata["class_histograms"]
        assert len(histograms) == 5
        assert sum(sum(h) for h in histograms) == sum(len(l) for l in fed.locals)
        for local, hist in zip(fed.locals, histograms):
            assert class_histogram(local.y, 10) == hist

    def test_metadata_records_partition(self):
        fed = build_dirichlet_federation(
            mnist_like(400, seed=0), 4, alpha=0.1, seed=1
        )
        assert fed.metadata["partition"] == "dirichlet"
        assert fed.metadata["alpha"] == 0.1
        assert all(q == "noniid" for q in fed.qualities)

    def test_low_alpha_is_skewed_high_alpha_is_not(self):
        def imbalance(alpha):
            fed = build_dirichlet_federation(
                mnist_like(2000, seed=0), 5, alpha=alpha, seed=0
            )
            hists = np.array(fed.metadata["class_histograms"], dtype=float)
            shares = hists / np.maximum(hists.sum(axis=0), 1.0)
            return shares.max(axis=0).mean()  # 0.2 = perfectly even

        assert imbalance(0.1) > imbalance(100.0) + 0.1

    def test_deterministic(self):
        a = build_dirichlet_federation(mnist_like(400, seed=0), 4, alpha=0.3, seed=7)
        b = build_dirichlet_federation(mnist_like(400, seed=0), 4, alpha=0.3, seed=7)
        for la, lb in zip(a.locals, b.locals):
            np.testing.assert_array_equal(la.X, lb.X)
            np.testing.assert_array_equal(la.y, lb.y)

    def test_validation_held_out(self):
        fed = build_dirichlet_federation(mnist_like(500, seed=0), 4, seed=0, alpha=1.0)
        assert len(fed.validation) == 50
        assert sum(len(l) for l in fed.locals) + 50 <= 500

    def test_split_metadata_defaults_empty(self):
        fed = build_hfl_federation(mnist_like(300, seed=0), 3, seed=0)
        assert fed.metadata == {}


class TestVerticalPartition:
    def test_disjoint_and_complete(self):
        blocks = vertical_partition(13, 4, seed=0)
        merged = np.sort(np.concatenate(blocks))
        np.testing.assert_array_equal(merged, np.arange(13))

    def test_every_party_nonempty(self):
        blocks = vertical_partition(5, 5, seed=1)
        assert all(len(b) == 1 for b in blocks)

    def test_too_many_parties(self):
        with pytest.raises(ValueError):
            vertical_partition(3, 4)

    @given(d=st.integers(2, 30), seed=st.integers(0, 100))
    def test_property_partition(self, d, seed):
        n_parties = max(2, d // 3)
        blocks = vertical_partition(d, n_parties, seed=seed)
        merged = np.sort(np.concatenate(blocks))
        np.testing.assert_array_equal(merged, np.arange(d))
        assert all(len(b) >= 1 for b in blocks)


class TestBuildHFLFederation:
    def test_quality_counts(self):
        fed = build_hfl_federation(
            mnist_like(800, seed=0), 5, n_mislabeled=2, n_noniid=1, seed=0
        )
        assert fed.qualities.count("mislabeled") == 2
        assert fed.qualities.count("noniid") == 1
        assert fed.qualities.count("clean") == 2

    def test_validation_held_out(self):
        fed = build_hfl_federation(mnist_like(500, seed=0), 4, seed=0)
        total_local = sum(len(l) for l in fed.locals)
        assert total_local + len(fed.validation) <= 500
        assert len(fed.validation) == 50

    def test_too_many_corrupted(self):
        with pytest.raises(ValueError, match="exceeds"):
            build_hfl_federation(mnist_like(300, seed=0), 3, n_mislabeled=2, n_noniid=2)

    def test_regression_rejected(self):
        with pytest.raises(ValueError, match="classification"):
            build_hfl_federation(boston_like(seed=0), 3)

    def test_deterministic(self):
        a = build_hfl_federation(mnist_like(400, seed=0), 4, n_noniid=1, seed=5)
        b = build_hfl_federation(mnist_like(400, seed=0), 4, n_noniid=1, seed=5)
        assert a.qualities == b.qualities
        for la, lb in zip(a.locals, b.locals):
            np.testing.assert_array_equal(la.y, lb.y)


class TestBuildVFLFederation:
    def test_blocks_partition_features(self):
        split = build_vfl_federation(boston_like(seed=0), 4, seed=0)
        merged = np.sort(np.concatenate(split.feature_blocks))
        np.testing.assert_array_equal(merged, np.arange(13))

    def test_max_rows(self):
        split = build_vfl_federation(boston_like(seed=0), 4, max_rows=100, seed=0)
        assert len(split.train) + len(split.validation) == 100

    def test_images_rejected(self):
        with pytest.raises(ValueError, match="tabular"):
            build_vfl_federation(mnist_like(100, seed=0), 3)
