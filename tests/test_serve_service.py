"""The in-process evaluation service: registry, caching, live publishing.

Covers the service-level contracts the HTTP layer and the runtime engine
build on: content-addressed query caching (identical runs share entries,
yet every response carries the *requesting* run's id), idempotent
re-ingestion of growing logs, the ``ContributionPublisher`` →
``contrib_updated`` event loop, and — the acceptance scenario — a
multi-threaded hammer of mixed ingest/query traffic that must end in
deterministic, batch-equal results with internally consistent cache
counters.
"""

import threading

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, estimate_vfl_first_order
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule
from repro.runtime import FaultPlan, FederatedRuntime, RuntimeConfig
from repro.runtime.events import CONTRIB_UPDATED
from repro.serve import ContributionPublisher, EvaluationService
from tests.conftest import small_model_factory

# Inert without the pytest-timeout plugin (CI installs it); a deadlocked
# hammer then fails instead of wedging the suite.
pytestmark = pytest.mark.timeout(180)


@pytest.fixture()
def service():
    with EvaluationService(max_workers=2) as svc:
        yield svc


class TestRegistration:
    def test_auto_ids_and_summaries(self, service, hfl_result, hfl_federation):
        run_id = service.register_hfl_log(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        assert run_id == "hfl-1"
        (summary,) = service.runs()
        assert summary["kind"] == "hfl"
        assert summary["epochs"] == hfl_result.log.n_epochs
        assert summary["participants"] == list(hfl_result.log.participant_ids)

    def test_duplicate_run_id_rejected(self, service, vfl_result):
        service.register_vfl_log(vfl_result.log, run_id="r")
        with pytest.raises(ValueError, match="already registered"):
            service.register_vfl_log(vfl_result.log, run_id="r")

    def test_unknown_run_raises_keyerror(self, service):
        with pytest.raises(KeyError, match="unknown run"):
            service.contributions("nope")

    def test_query_before_any_ingest_raises(self, service, hfl_federation):
        run_id = service.register_hfl(
            [0, 1], hfl_federation.validation, small_model_factory
        )
        with pytest.raises(ValueError, match="no epochs"):
            service.leaderboard(run_id)
        with pytest.raises(ValueError, match="no epochs"):
            service.report(run_id)


class TestIngestion:
    def test_ingest_log_is_idempotent_for_growing_logs(
        self, service, hfl_result, hfl_federation
    ):
        from repro.hfl.log import TrainingLog

        log = hfl_result.log
        prefix = TrainingLog(
            participant_ids=log.participant_ids, records=log.records[:3]
        )
        run_id = service.register_hfl(
            log.participant_ids, hfl_federation.validation, small_model_factory
        )
        assert service.ingest_log(run_id, prefix) == 3
        # Re-pushing the whole log only ingests the unseen tail.
        assert service.ingest_log(run_id, log) == log.n_epochs
        assert service.ingest_log(run_id, log) == log.n_epochs
        batch = estimate_hfl_resource_saving(
            log, hfl_federation.validation, small_model_factory
        )
        assert np.array_equal(service.report(run_id).totals, batch.totals)

    def test_record_by_record_equals_batch(self, service, vfl_result):
        run_id = service.register_vfl(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        for epoch, record in enumerate(vfl_result.log.records, start=1):
            assert service.ingest(run_id, record) == epoch
        batch = estimate_vfl_first_order(vfl_result.log)
        report = service.report(run_id)
        assert np.array_equal(report.totals, batch.totals)
        assert np.array_equal(report.per_epoch, batch.per_epoch)


class TestContentAddressedCaching:
    def test_repeat_query_hits_cache(self, service, vfl_result):
        run_id = service.register_vfl_log(vfl_result.log)
        first = service.contributions(run_id)
        hits_before = service.cache.stats()["hits"]
        second = service.contributions(run_id)
        assert second == first
        assert service.cache.stats()["hits"] > hits_before

    def test_identical_runs_share_entries_but_not_run_ids(
        self, service, vfl_result
    ):
        """Content addressing: run B's first query is a warm hit, yet the
        payload is stamped with B's id, not the computing run's."""
        a = service.register_vfl_log(vfl_result.log, run_id="a")
        b = service.register_vfl_log(vfl_result.log, run_id="b")
        first = service.leaderboard(a, top=3)
        hits_before = service.cache.stats()["hits"]
        second = service.leaderboard(b, top=3)
        assert service.cache.stats()["hits"] > hits_before
        assert first["run_id"] == "a"
        assert second["run_id"] == "b"
        assert second["leaderboard"] == first["leaderboard"]

    def test_query_params_are_part_of_the_key(self, service, vfl_result):
        run_id = service.register_vfl_log(vfl_result.log)
        top3 = service.leaderboard(run_id, top=3)["leaderboard"]
        full = service.leaderboard(run_id)["leaderboard"]
        assert len(top3) == 3
        assert full[:3] == top3
        rectified = service.weights(run_id)
        softmax = service.weights(run_id, scheme="softmax")
        assert rectified["scheme"] == "rectified"
        assert softmax["scheme"] == "softmax"
        assert rectified["weights"] != softmax["weights"]

    def test_ingest_invalidates_by_construction(self, service, vfl_result):
        """New epoch ⇒ new digest ⇒ old cache entries are simply unreachable."""
        log = vfl_result.log
        run_id = service.register_vfl(log.feature_blocks, log.active_parties)
        service.ingest(run_id, log.records[0])
        stale = service.contributions(run_id)
        service.ingest(run_id, log.records[1])
        fresh = service.contributions(run_id)
        assert fresh["epochs"] == 2
        assert fresh["totals"] != stale["totals"]

    def test_valgrad_memo_shared_across_identical_hfl_runs(
        self, service, hfl_result, hfl_federation
    ):
        service.register_hfl_log(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        misses_after_first = service.cache.stats()["misses"]
        service.register_hfl_log(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        stats = service.stats()["cache"]
        # The second run's validation gradients all come from the memo.
        assert stats["hits"] >= hfl_result.log.n_epochs
        assert stats["misses"] == misses_after_first
        assert stats["lookups"] == stats["hits"] + stats["misses"]

    def test_weights_scheme_validated(self, service, vfl_result):
        run_id = service.register_vfl_log(vfl_result.log)
        with pytest.raises(ValueError, match="scheme"):
            service.weights(run_id, scheme="banana")


class TestSubmit:
    def test_futures_resolve_to_sync_payloads(self, service, vfl_result):
        run_id = service.register_vfl_log(vfl_result.log)
        future = service.submit("leaderboard", run_id, top=2)
        assert future.result(timeout=30) == service.leaderboard(run_id, top=2)

    def test_only_query_methods_are_submittable(self, service):
        with pytest.raises(ValueError, match="method must be one of"):
            service.submit("close")


class TestLivePublishing:
    def test_engine_publishes_rounds_and_events(self, hfl_federation):
        trainer = HFLTrainer(
            small_model_factory, epochs=5, lr_schedule=LRSchedule(0.5)
        )
        runtime = FederatedRuntime(
            RuntimeConfig(faults=FaultPlan(dropout_rate=0.3, seed=1))
        )
        with EvaluationService() as svc:
            run_id = svc.register_hfl(
                range(len(hfl_federation.locals)),
                hfl_federation.validation,
                small_model_factory,
            )
            publisher = svc.publisher(run_id)
            assert isinstance(publisher, ContributionPublisher)
            result = runtime.run_hfl(
                trainer,
                hfl_federation.locals,
                hfl_federation.validation,
                publisher=publisher,
            )
            events = runtime.event_log.of_kind(CONTRIB_UPDATED)
            assert len(events) == result.log.n_epochs
            assert runtime.event_log.summary()["contrib_updates"] == 5.0
            for epoch, event in enumerate(events, start=1):
                assert event.detail["run_id"] == run_id
                assert event.detail["epochs"] == epoch
                assert "leader" in event.detail
            # The dropout seed produced partial rounds, and the live-fed
            # estimator still equals a batch estimate of the final log.
            assert not result.log.participation_matrix().all()
            batch = estimate_hfl_resource_saving(
                result.log, hfl_federation.validation, small_model_factory
            )
            assert np.array_equal(svc.report(run_id).totals, batch.totals)
            top = svc.leaderboard(run_id, top=1)["leaderboard"][0]
            assert events[-1].detail["leader"] == top["participant"]


class TestConcurrencyHammer:
    """Satellite (c): N threads of mixed ingest/query traffic."""

    N_CONSUMERS = 6
    QUERIES_PER_CONSUMER = 40

    def test_hammer_is_deterministic_and_counters_consistent(
        self, hfl_result, hfl_federation, vfl_result
    ):
        with EvaluationService(max_workers=4) as svc:
            hfl_id = svc.register_hfl(
                hfl_result.log.participant_ids,
                hfl_federation.validation,
                small_model_factory,
            )
            vfl_id = svc.register_vfl(
                vfl_result.log.feature_blocks, vfl_result.log.active_parties
            )
            errors = []

            def produce(run_id, records):
                try:
                    for record in records:
                        svc.ingest(run_id, record)
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            def consume(seed):
                rng = np.random.default_rng(seed)
                try:
                    for _ in range(self.QUERIES_PER_CONSUMER):
                        run_id = hfl_id if rng.random() < 0.5 else vfl_id
                        kind = rng.integers(3)
                        try:
                            if kind == 0:
                                payload = svc.contributions(run_id)
                            elif kind == 1:
                                payload = svc.leaderboard(run_id, top=2)
                            else:
                                payload = svc.weights(run_id)
                            assert payload["run_id"] == run_id
                            assert payload["epochs"] >= 1
                        except ValueError:
                            pass  # raced ahead of the first ingest
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=produce, args=(hfl_id, hfl_result.log.records)
                ),
                threading.Thread(
                    target=produce, args=(vfl_id, vfl_result.log.records)
                ),
            ] + [
                threading.Thread(target=consume, args=(seed,))
                for seed in range(self.N_CONSUMERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "hammer deadlocked"
            assert not errors, errors

            # Deterministic end state: bit-for-bit the batch estimates.
            hfl_batch = estimate_hfl_resource_saving(
                hfl_result.log, hfl_federation.validation, small_model_factory
            )
            vfl_batch = estimate_vfl_first_order(vfl_result.log)
            assert np.array_equal(svc.report(hfl_id).totals, hfl_batch.totals)
            assert np.array_equal(svc.report(vfl_id).totals, vfl_batch.totals)

            # Counters stayed internally consistent under contention.
            stats = svc.stats()
            cache = stats["cache"]
            assert cache["lookups"] == cache["hits"] + cache["misses"]
            assert cache["bytes"] <= cache["max_bytes"]
            assert cache["hits"] > 0
            total_epochs = hfl_result.log.n_epochs + vfl_result.log.n_epochs
            assert stats["latency"]["ingest"]["count"] == total_epochs
            assert stats["latency"]["query"]["count"] >= 2  # the two reports


class TestStats:
    def test_stats_shape(self, service, vfl_result):
        run_id = service.register_vfl_log(vfl_result.log)
        service.leaderboard(run_id)
        stats = service.stats()
        assert stats["runs"] == 1
        assert stats["uptime_seconds"] > 0
        for histogram in ("ingest", "query"):
            summary = stats["latency"][histogram]
            assert summary["count"] > 0
            # Percentiles are bucket upper bounds, so they may sit above
            # the exact max — but they must be ordered and positive.
            assert 0 < summary["p50_ms"] <= summary["p95_ms"]
            assert summary["max_ms"] > 0
