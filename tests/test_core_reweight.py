"""Tests for the DIG-FL reweight mechanism (Eq. 17-18, Lemmas 4-5)."""

import warnings

import numpy as np
import pytest

from repro.core import DIGFLReweighter, VFLDIGFLReweighter, rectified_weights, softmax_weights
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_mlp_classifier
from repro.vfl import VFLTrainer

from tests.conftest import small_model_factory


class TestRectifiedWeights:
    def test_eq17(self):
        phi = np.array([2.0, -1.0, 3.0])
        np.testing.assert_allclose(rectified_weights(phi), [0.4, 0.0, 0.6])

    def test_sum_to_one(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            w = rectified_weights(rng.normal(size=6))
            assert w.sum() == pytest.approx(1.0)
            assert (w >= 0).all()

    def test_all_negative_falls_back_to_uniform(self):
        np.testing.assert_allclose(rectified_weights(np.array([-1.0, -2.0])), [0.5, 0.5])

    def test_all_zero_falls_back_to_uniform(self):
        np.testing.assert_allclose(rectified_weights(np.zeros(4)), np.full(4, 0.25))

    def test_single_positive_takes_all(self):
        np.testing.assert_allclose(
            rectified_weights(np.array([-5.0, 1.0, -0.1])), [0.0, 1.0, 0.0]
        )

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_contribution_falls_back_to_uniform(self, bad):
        """A poisoned φ̂ must not silently corrupt every party's weight."""
        with pytest.warns(RuntimeWarning, match="non-finite contributions"):
            w = rectified_weights(np.array([0.3, bad, 0.7]))
        np.testing.assert_allclose(w, np.full(3, 1.0 / 3.0))

    def test_finite_contributions_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rectified_weights(np.array([0.3, -0.1, 0.7]))


class TestSoftmaxWeights:
    def test_sum_to_one(self):
        w = softmax_weights(np.array([1.0, 2.0, 3.0]))
        assert w.sum() == pytest.approx(1.0)

    def test_monotone(self):
        w = softmax_weights(np.array([1.0, 2.0, 3.0]))
        assert w[0] < w[1] < w[2]

    def test_never_exactly_zero(self):
        w = softmax_weights(np.array([-100.0, 100.0]))
        assert (w > 0).all()

    def test_temperature_flattens(self):
        sharp = softmax_weights(np.array([0.0, 1.0]), temperature=0.1)
        flat = softmax_weights(np.array([0.0, 1.0]), temperature=10.0)
        assert sharp.max() > flat.max()

    def test_bad_temperature(self):
        with pytest.raises(ValueError):
            softmax_weights(np.ones(2), temperature=0.0)

    def test_nonfinite_contribution_falls_back_to_uniform(self):
        with pytest.warns(RuntimeWarning, match="non-finite contributions"):
            w = softmax_weights(np.array([np.nan, 1.0]))
        np.testing.assert_allclose(w, [0.5, 0.5])


class TestHFLReweighter:
    def test_weights_shape_and_simplex(self, hfl_federation):
        reweighter = DIGFLReweighter(hfl_federation.validation)
        trainer = HFLTrainer(small_model_factory, epochs=3, lr_schedule=LRSchedule(0.5))
        trainer.train(
            hfl_federation.locals, hfl_federation.validation, reweighter=reweighter
        )
        assert len(reweighter.history) == 3
        for contributions in reweighter.history:
            assert contributions.shape == (5,)

    def test_model_restored_after_weighting(self, hfl_federation):
        """The reweighter must not leave the probe θ loaded in the model."""
        reweighter = DIGFLReweighter(hfl_federation.validation)
        model = small_model_factory()
        before = model.get_flat()
        updates = np.zeros((5, model.num_parameters()))
        reweighter.weights(model, before * 0.5, updates, 0.1, 1)
        np.testing.assert_array_equal(model.get_flat(), before)

    def test_bad_scheme(self, hfl_federation):
        with pytest.raises(ValueError):
            DIGFLReweighter(hfl_federation.validation, scheme="magic")

    def test_reweight_recovers_accuracy_under_corruption(self):
        """Fig. 7's core claim at small scale: with a majority of mislabeled
        participants, reweighting beats plain FedSGD."""
        dataset = mnist_like(1500, seed=2)
        fed = build_hfl_federation(
            dataset, 5, n_mislabeled=4, mislabel_fraction=0.5, seed=2
        )
        factory = lambda: make_mlp_classifier(100, 10, hidden=(16,), seed=0)
        trainer = HFLTrainer(factory, epochs=20, lr_schedule=LRSchedule(0.5))

        plain = trainer.train(fed.locals, fed.validation, track_validation=True)
        reweighted = trainer.train(
            fed.locals,
            fed.validation,
            reweighter=DIGFLReweighter(fed.validation),
            track_validation=True,
        )
        acc_plain = plain.log.records[-1].val_accuracy
        acc_reweighted = reweighted.log.records[-1].val_accuracy
        assert acc_reweighted > acc_plain

    def test_monotone_validation_loss(self):
        """Lemma 4: with a small enough learning rate, reweighted FedSGD's
        validation loss decreases monotonically."""
        dataset = mnist_like(800, seed=3)
        fed = build_hfl_federation(dataset, 4, n_mislabeled=2, seed=3)
        factory = lambda: make_mlp_classifier(100, 10, hidden=(8,), seed=1)
        trainer = HFLTrainer(factory, epochs=15, lr_schedule=LRSchedule(0.1))
        result = trainer.train(
            fed.locals,
            fed.validation,
            reweighter=DIGFLReweighter(fed.validation),
            track_validation=True,
        )
        curve = result.log.val_loss_curve()
        assert np.all(np.diff(curve) <= 1e-6)


class TestVFLReweighter:
    def test_weights_cover_all_parties(self, vfl_split):
        reweighter = VFLDIGFLReweighter(vfl_split.feature_blocks)
        trainer = VFLTrainer(
            "regression", vfl_split.feature_blocks, 5, LRSchedule(0.05)
        )
        result = trainer.train(
            vfl_split.train, vfl_split.validation, reweighter=reweighter
        )
        assert len(reweighter.history) == 5
        for record in result.log.records:
            assert record.weights.shape == (5,)
            assert (record.weights >= 0).all()

    def test_inactive_party_zero_weight(self, vfl_split):
        reweighter = VFLDIGFLReweighter(vfl_split.feature_blocks)
        trainer = VFLTrainer(
            "regression", vfl_split.feature_blocks, 3, LRSchedule(0.05)
        )
        result = trainer.train(
            vfl_split.train, vfl_split.validation, parties=[0, 1], reweighter=reweighter
        )
        for record in result.log.records:
            np.testing.assert_allclose(record.weights[2:], 0.0)

    def test_uniform_contributions_reproduce_plain_descent(self, vfl_split):
        """When all parties contribute equally the weights must be ≈1 each,
        so reweighted VFL matches plain VFL."""
        reweighter = VFLDIGFLReweighter(vfl_split.feature_blocks)
        w = reweighter.weights(
            np.zeros(13), np.ones(13), np.ones(13), 0.1, 1, list(range(5))
        )
        blocks = vfl_split.feature_blocks
        sizes = np.array([len(b) for b in blocks], dtype=float)
        expected = sizes / sizes.sum() * 5
        np.testing.assert_allclose(w, expected, atol=1e-12)

    def test_reweighted_vfl_still_converges(self, vfl_split):
        reweighter = VFLDIGFLReweighter(vfl_split.feature_blocks)
        trainer = VFLTrainer(
            "regression", vfl_split.feature_blocks, 25, LRSchedule(0.05)
        )
        result = trainer.train(
            vfl_split.train,
            vfl_split.validation,
            reweighter=reweighter,
            track_losses=True,
        )
        curve = result.log.val_loss_curve()
        assert curve[-1] < curve[0]

    def test_bad_scheme(self, vfl_split):
        with pytest.raises(ValueError):
            VFLDIGFLReweighter(vfl_split.feature_blocks, scheme="magic")
