"""Trace propagation across the serving and runtime thread pools.

The contract under test: one serve request (or one engine run) is ONE
trace, no matter how many thread hops it takes — admission, cache,
estimator and response phases all hang off the request's root span, pool
workers adopt the request context explicitly, and error exits
(:class:`DeadlineExceeded`, :class:`CircuitOpen`) close their spans with
``status="error"`` instead of leaking them open.
"""

import threading

import pytest

from repro.hfl import HFLTrainer
from repro.nn import LRSchedule
from repro.obs import Observability
from repro.runtime import FederatedRuntime, RuntimeConfig
from repro.serve import (
    ChaosPolicy,
    CircuitOpen,
    DeadlineExceeded,
    EvaluationService,
    inject_chaos,
)
from tests.conftest import small_model_factory


def traced_obs() -> Observability:
    counter = iter(range(1, 100_000))
    return Observability(trace=True, id_source=lambda: next(counter))


def by_name(spans) -> dict:
    out = {}
    for span in spans:
        out.setdefault(span.name, []).append(span)
    return out


def assert_single_rooted_trace(spans) -> None:
    """Same trace id everywhere; every parent id resolves; one root."""
    assert spans, "expected a non-empty trace"
    trace_ids = {span.trace_id for span in spans}
    assert len(trace_ids) == 1
    ids = {span.span_id for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    assert len(roots) == 1
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, f"orphaned span {span.name}"


@pytest.fixture()
def traced_service(vfl_result):
    obs = traced_obs()
    with EvaluationService(obs=obs, max_workers=2) as service:
        run_id = service.register_vfl_log(vfl_result.log, run_id="traced")
        yield service, run_id, obs


class TestServeRequestTrace:
    def test_one_request_is_one_trace_with_all_phases(self, traced_service):
        service, run_id, obs = traced_service
        obs.tracer.clear()  # drop registration/ingest traces
        service.query("contributions", run_id)
        (trace,) = [
            spans
            for spans in obs.tracer.traces().values()
            if any(span.name == "serve.query" for span in spans)
        ]
        assert_single_rooted_trace(trace)
        names = by_name(trace)
        # The acceptance contract: admission -> cache -> estimator ->
        # response, all under one serve.query root.
        for phase in (
            "serve.query",
            "serve.admission",
            "serve.compute",
            "serve.cache",
            "serve.estimator",
            "serve.response",
        ):
            assert phase in names, f"missing {phase} span"
        (root,) = names["serve.query"]
        assert root.parent_id is None
        assert names["serve.admission"][0].parent_id == root.span_id
        (compute,) = names["serve.compute"]
        assert compute.parent_id == root.span_id
        # The pool worker runs on a different thread yet stays in-trace.
        assert compute.thread != root.thread
        assert names["serve.cache"][0].parent_id == compute.span_id
        assert names["serve.estimator"][0].parent_id == compute.span_id
        assert names["serve.response"][0].parent_id == root.span_id
        assert all(span.status == "ok" for span in trace)

    def test_warm_hit_trace_skips_the_pool(self, traced_service):
        service, run_id, obs = traced_service
        service.query("leaderboard", run_id, top=2)
        obs.tracer.clear()
        service.query("leaderboard", run_id, top=2)  # warm
        (trace,) = obs.tracer.traces().values()
        names = by_name(trace)
        (root,) = names["serve.query"]
        assert root.attributes.get("cache") == "warm_hit"
        assert "serve.compute" not in names
        assert_single_rooted_trace(trace)

    def test_fanned_out_queries_stay_separate_traces(self, traced_service):
        service, run_id, obs = traced_service
        obs.tracer.clear()
        methods = ("contributions", "leaderboard", "weights")
        threads = [
            threading.Thread(target=service.query, args=(method, run_id))
            for method in methods
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        traces = obs.tracer.traces().values()
        assert len(traces) == 3
        for trace in traces:
            assert_single_rooted_trace(trace)
            roots = [span for span in trace if span.name == "serve.query"]
            assert len(roots) == 1


class TestErrorPathSpans:
    def test_deadline_exceeded_closes_spans_with_error_status(self, vfl_result):
        obs = traced_obs()
        with EvaluationService(
            obs=obs, max_workers=1, query_deadline_ms=30.0
        ) as service:
            run_id = service.register_vfl_log(vfl_result.log)
            inject_chaos(
                service, run_id, ChaosPolicy(latency_prob=1.0, latency_ms=300.0)
            )
            obs.tracer.clear()
            with pytest.raises(DeadlineExceeded):
                service.query("contributions", run_id)
            names = by_name(obs.tracer.spans())
            (root,) = names["serve.query"]
            assert root.status == "error"
            assert "DeadlineExceeded" in root.attributes["error"]
            (response,) = names["serve.response"]
            assert response.status == "error"
            assert response.parent_id == root.span_id

    def test_circuit_open_closes_spans_with_error_status(self, vfl_result):
        obs = traced_obs()
        with EvaluationService(
            obs=obs, max_workers=1, breaker_failures=1
        ) as service:
            run_id = service.register_vfl_log(vfl_result.log)
            inject_chaos(service, run_id, ChaosPolicy(error_prob=1.0))
            with pytest.raises(Exception):  # the breaker-tripping failure
                service.query("contributions", run_id)
            obs.tracer.clear()
            with pytest.raises(CircuitOpen):
                service.query("contributions", run_id)
            names = by_name(obs.tracer.spans())
            (root,) = names["serve.query"]
            assert root.status == "error"
            assert "CircuitOpen" in root.attributes["error"]
            (estimator,) = names["serve.estimator"]
            assert estimator.status == "error"
            # The error propagated through every layer of the one trace.
            assert {span.trace_id for span in obs.tracer.spans()} == {
                root.trace_id
            }


class TestEngineTrace:
    def test_hfl_run_under_a_thread_pool_is_one_trace(self, hfl_federation):
        obs = traced_obs()
        runtime = FederatedRuntime(
            RuntimeConfig(executor="threads", workers=3), obs=obs
        )
        trainer = HFLTrainer(
            small_model_factory, epochs=3, lr_schedule=LRSchedule(0.5)
        )
        runtime.run_hfl(
            trainer, hfl_federation.locals, hfl_federation.validation
        )
        (trace,) = obs.tracer.traces().values()
        assert_single_rooted_trace(trace)
        names = by_name(trace)
        (run_span,) = names["engine.run"]
        assert run_span.parent_id is None
        assert run_span.status == "ok"
        rounds = names["engine.round"]
        assert len(rounds) == 3
        assert all(span.parent_id == run_span.span_id for span in rounds)
        tasks = names["engine.task"]
        n_parties = len(hfl_federation.locals)
        assert len(tasks) == 3 * n_parties
        round_ids = {span.span_id for span in rounds}
        assert all(span.parent_id in round_ids for span in tasks)
        # Tasks genuinely crossed the pool: some ran off the main thread.
        assert any(span.thread != run_span.thread for span in tasks)

    def test_trainer_epoch_spans_join_a_passed_tracer(self, hfl_federation):
        obs = traced_obs()
        trainer = HFLTrainer(
            small_model_factory, epochs=2, lr_schedule=LRSchedule(0.5)
        )
        trainer.train(
            hfl_federation.locals,
            validation=hfl_federation.validation,
            tracer=obs.tracer,
        )
        epochs = [
            span for span in obs.tracer.spans() if span.name == "trainer.epoch"
        ]
        assert [span.attributes["epoch"] for span in epochs] == [1, 2]
        assert all(span.status == "ok" for span in epochs)
