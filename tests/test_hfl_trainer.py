"""Tests for the FedSGD trainer and training log."""

import numpy as np
import pytest

from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer, flat_gradient, validation_gradient
from repro.metrics import CostLedger
from repro.nn import LRSchedule, make_mlp_classifier

from tests.conftest import small_model_factory


class TestTrainingMechanics:
    def test_loss_decreases(self, hfl_result):
        curve = hfl_result.log.val_loss_curve()
        assert curve[-1] < curve[0]

    def test_log_epoch_count(self, hfl_result, hfl_trainer):
        assert hfl_result.log.n_epochs == hfl_trainer.epochs

    def test_epochs_one_indexed(self, hfl_result):
        assert [r.epoch for r in hfl_result.log.records] == list(range(1, 9))

    def test_aggregation_is_weighted_mean(self, hfl_result):
        record = hfl_result.log.records[0]
        np.testing.assert_allclose(
            record.global_update,
            record.local_updates.mean(axis=0),
            atol=1e-12,
        )

    def test_theta_chain_consistent(self, hfl_result):
        """θ_after of epoch t equals θ_before of epoch t+1."""
        records = hfl_result.log.records
        for prev, nxt in zip(records, records[1:]):
            np.testing.assert_allclose(prev.theta_after, nxt.theta_before, atol=1e-12)

    def test_final_theta_matches_model(self, hfl_result):
        np.testing.assert_allclose(
            hfl_result.log.final_theta, hfl_result.model.get_flat(), atol=1e-12
        )

    def test_local_update_is_lr_times_gradient(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=1, lr_schedule=LRSchedule(0.25))
        result = trainer.train(hfl_federation.locals, hfl_federation.validation)
        record = result.log.records[0]
        model = small_model_factory()
        model.set_flat(record.theta_before)
        data = hfl_federation.locals[0]
        expected = 0.25 * flat_gradient(model, data.X, data.y)
        np.testing.assert_allclose(record.local_updates[0], expected, atol=1e-12)

    def test_deterministic(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=3, lr_schedule=LRSchedule(0.5))
        a = trainer.train(hfl_federation.locals, hfl_federation.validation)
        b = trainer.train(hfl_federation.locals, hfl_federation.validation)
        np.testing.assert_array_equal(a.model.get_flat(), b.model.get_flat())


class TestCoalitions:
    def test_subset_trains_only_members(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=2, lr_schedule=LRSchedule(0.5))
        result = trainer.train(
            hfl_federation.locals, hfl_federation.validation, participants=[1, 3]
        )
        assert result.log.participant_ids == [1, 3]
        assert result.log.records[0].local_updates.shape[0] == 2

    def test_empty_coalition_rejected(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=1, lr_schedule=LRSchedule(0.5))
        with pytest.raises(ValueError, match="at least one"):
            trainer.train(hfl_federation.locals, participants=[])

    def test_unknown_participant_rejected(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=1, lr_schedule=LRSchedule(0.5))
        with pytest.raises(ValueError, match="unknown participant"):
            trainer.train(hfl_federation.locals, participants=[0, 99])

    def test_init_theta_respected(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=1, lr_schedule=LRSchedule(0.5))
        theta0 = np.zeros(small_model_factory().num_parameters())
        result = trainer.train(
            hfl_federation.locals, hfl_federation.validation, init_theta=theta0
        )
        np.testing.assert_allclose(result.log.initial_theta, theta0)

    def test_singleton_coalition(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=2, lr_schedule=LRSchedule(0.5))
        result = trainer.train(hfl_federation.locals, participants=[2])
        assert result.log.records[0].weights[0] == pytest.approx(1.0)


class TestLedger:
    def test_communication_accounted(self, hfl_federation):
        ledger = CostLedger()
        trainer = HFLTrainer(small_model_factory, epochs=2, lr_schedule=LRSchedule(0.5))
        trainer.train(hfl_federation.locals, ledger=ledger)
        p = small_model_factory().num_parameters()
        expected = 2 * 5 * p * 8  # epochs × participants × params × 8 bytes
        assert ledger.comm_bytes["participant->server"] == expected
        assert ledger.comm_bytes["server->participant"] == expected


class TestValidationRequirements:
    def test_tracking_without_validation_rejected(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=1, lr_schedule=LRSchedule(0.5))
        with pytest.raises(ValueError, match="validation"):
            trainer.train(hfl_federation.locals, track_validation=True)

    def test_nan_metrics_when_not_tracking(self, hfl_federation):
        trainer = HFLTrainer(small_model_factory, epochs=1, lr_schedule=LRSchedule(0.5))
        result = trainer.train(hfl_federation.locals, hfl_federation.validation)
        assert np.isnan(result.log.records[0].val_loss)


class TestLogHelpers:
    def test_updates_of(self, hfl_result):
        updates = hfl_result.log.updates_of(2)
        assert updates.shape == (hfl_result.log.n_epochs, len(hfl_result.log.initial_theta))

    def test_updates_of_unknown(self, hfl_result):
        with pytest.raises(KeyError):
            hfl_result.log.updates_of(42)

    def test_empty_log_errors(self):
        from repro.hfl import TrainingLog

        log = TrainingLog(participant_ids=[0])
        with pytest.raises(ValueError):
            _ = log.initial_theta
        with pytest.raises(ValueError):
            _ = log.final_theta


class TestGradientHelpers:
    def test_validation_gradient_restores_model(self, hfl_federation):
        model = small_model_factory()
        before = model.get_flat()
        theta = np.zeros_like(before)
        validation_gradient(model, theta, hfl_federation.validation)
        np.testing.assert_array_equal(model.get_flat(), before)

    def test_flat_gradient_shape(self, hfl_federation):
        model = small_model_factory()
        data = hfl_federation.locals[0]
        g = flat_gradient(model, data.X, data.y)
        assert g.shape == (model.num_parameters(),)


class TestConvergenceOnCleanData:
    def test_high_accuracy_when_all_clean(self):
        fed = build_hfl_federation(mnist_like(1200, seed=1), 4, seed=1)
        trainer = HFLTrainer(
            lambda: make_mlp_classifier(100, 10, hidden=(16,), seed=0),
            epochs=25,
            lr_schedule=LRSchedule(0.5),
        )
        result = trainer.train(fed.locals, fed.validation, track_validation=True)
        assert result.log.records[-1].val_accuracy > 0.85
