"""Additional TrainingLog / EpochRecord invariants and DIG-FL identities."""

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, from_per_epoch
from repro.hfl import EpochRecord, TrainingLog

from tests.conftest import small_model_factory


def make_log(n_epochs=3, n_parties=4, p=6, seed=0):
    rng = np.random.default_rng(seed)
    log = TrainingLog(participant_ids=list(range(n_parties)))
    theta = rng.normal(size=p)
    for t in range(1, n_epochs + 1):
        updates = 0.1 * rng.normal(size=(n_parties, p))
        weights = np.full(n_parties, 1.0 / n_parties)
        log.records.append(
            EpochRecord(
                epoch=t,
                lr=0.1,
                theta_before=theta.copy(),
                local_updates=updates,
                weights=weights,
            )
        )
        theta = theta - weights @ updates
    return log


class TestEpochRecordInvariants:
    def test_global_update_matches_weights(self):
        log = make_log()
        record = log.records[0]
        np.testing.assert_allclose(
            record.global_update, record.weights @ record.local_updates
        )

    def test_theta_after(self):
        log = make_log()
        record = log.records[0]
        np.testing.assert_allclose(
            record.theta_after, record.theta_before - record.global_update
        )

    def test_final_theta_telescopes(self):
        """final_theta equals θ_0 minus the sum of all global updates."""
        log = make_log(n_epochs=5)
        total = sum(r.global_update for r in log.records)
        np.testing.assert_allclose(
            log.final_theta, log.initial_theta - total, atol=1e-12
        )


class TestContributionReportInvariants:
    def test_efficiency_identity_of_first_order_estimator(
        self, hfl_result, hfl_federation
    ):
        """Σ_i φ̂_{t,i} = ⟨v_t, G_t⟩ for uniform weights — the estimator
        splits the aggregate's alignment across participants exactly."""
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        from repro.hfl import validation_gradient

        model = small_model_factory()
        for t, record in enumerate(hfl_result.log.records):
            v = validation_gradient(
                model, record.theta_before, hfl_federation.validation
            )
            total = report.per_epoch[t].sum()
            assert total == pytest.approx(float(v @ record.global_update), abs=1e-10)

    def test_aligned_with_subset(self):
        a = from_per_epoch("x", [0, 1, 2], np.ones((2, 3)))
        b = from_per_epoch("y", [1, 2, 3], np.full((2, 3), 2.0))
        mine, theirs = a.aligned_with(b)
        np.testing.assert_allclose(mine, [2.0, 2.0])
        np.testing.assert_allclose(theirs, [4.0, 4.0])

    def test_per_epoch_shape_validation(self):
        with pytest.raises(ValueError):
            from_per_epoch("x", [0, 1], np.ones((3, 5)))

    def test_totals_shape_validation(self):
        from repro.core import ContributionReport

        with pytest.raises(ValueError):
            ContributionReport(
                method="x", participant_ids=[0, 1], totals=np.ones(3)
            )
