"""Tests for correlation metrics and the cost ledger."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats

from repro.metrics import (
    CostLedger,
    nbytes,
    pearson_correlation,
    relative_error,
    spearman_correlation,
    top_k_overlap,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=30), rng.normal(size=30)
        ref = stats.pearsonr(a, b).statistic
        assert pearson_correlation(a, b) == pytest.approx(ref, abs=1e-12)

    def test_constant_input_nan(self):
        assert np.isnan(pearson_correlation(np.ones(5), np.arange(5.0)))

    def test_short_input_nan(self):
        assert np.isnan(pearson_correlation(np.array([1.0]), np.array([2.0])))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    @given(st.integers(3, 40), st.integers(0, 500))
    def test_property_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        r = pearson_correlation(rng.normal(size=n), rng.normal(size=n))
        assert -1.0 <= r <= 1.0


class TestSpearman:
    def test_monotone_map_gives_one(self):
        x = np.array([1.0, 5.0, 2.0, 8.0])
        assert spearman_correlation(x, np.exp(x)) == pytest.approx(1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=25), rng.normal(size=25)
        ref = stats.spearmanr(a, b).statistic
        assert spearman_correlation(a, b) == pytest.approx(ref, abs=1e-12)

    def test_ties_match_scipy(self):
        a = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0])
        b = np.array([2.0, 1.0, 1.0, 5.0, 4.0, 4.0])
        ref = stats.spearmanr(a, b).statistic
        assert spearman_correlation(a, b) == pytest.approx(ref, abs=1e-12)


class TestTopK:
    def test_identical_rankings(self):
        x = np.array([3.0, 1.0, 2.0, 5.0])
        assert top_k_overlap(x, x, 2) == 1.0

    def test_disjoint_topk(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([4.0, 3.0, 2.0, 1.0])
        assert top_k_overlap(a, b, 2) == 0.0

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            top_k_overlap(np.ones(3), np.ones(3), 0)
        with pytest.raises(ValueError):
            top_k_overlap(np.ones(3), np.ones(3), 4)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(2.0, 2.1) == pytest.approx(0.05)

    def test_zero_actual_nonzero_estimate(self):
        assert relative_error(0.0, 1.0) == float("inf")

    def test_zero_both(self):
        assert relative_error(0.0, 0.0) == 0.0


class TestNbytes:
    def test_array(self):
        assert nbytes(np.zeros(10)) == 80

    def test_list(self):
        assert nbytes([np.zeros(2), np.zeros(3)]) == 40

    def test_scalar(self):
        assert nbytes(3.5) == 8

    def test_none(self):
        assert nbytes(None) == 0

    def test_dict(self):
        assert nbytes({"a": np.zeros(4)}) == 32

    def test_nbytes_attribute_object(self):
        class Cipher:
            nbytes = 256

        assert nbytes(Cipher()) == 256

    def test_str_and_bytes_count_encoded_length(self):
        assert nbytes(b"abc") == 3
        assert nbytes("abc") == 3
        assert nbytes("μ") == 2  # UTF-8, not code points

    def test_unsupported(self):
        with pytest.raises(TypeError):
            nbytes(object())


class TestCostLedger:
    def test_record_message(self):
        ledger = CostLedger()
        ledger.record_message("up", np.zeros(100))
        assert ledger.comm_bytes["up"] == 800
        assert ledger.total_comm_bytes == 800

    def test_record_bytes_negative(self):
        with pytest.raises(ValueError):
            CostLedger().record_bytes("up", -1)

    def test_total_mb(self):
        ledger = CostLedger()
        ledger.record_bytes("up", 1024 * 1024)
        assert ledger.total_comm_mb == pytest.approx(1.0)

    def test_computing_context(self):
        import time

        ledger = CostLedger()
        with ledger.computing():
            time.sleep(0.005)
        assert ledger.compute_seconds >= 0.005

    def test_merged_with(self):
        a, b = CostLedger(), CostLedger()
        a.record_bytes("up", 10)
        b.record_bytes("up", 5)
        b.record_bytes("down", 7)
        merged = a.merged_with(b)
        assert merged.comm_bytes["up"] == 15
        assert merged.comm_bytes["down"] == 7

    def test_summary_keys(self):
        summary = CostLedger().summary()
        assert set(summary) == {"compute_seconds", "comm_mb"}


class TestLatencyHistogram:
    def test_empty_summary(self):
        from repro.metrics import LatencyHistogram

        histogram = LatencyHistogram()
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["mean_ms"] == 0.0
        assert summary["p50_ms"] == 0.0

    def test_mean_and_count(self):
        from repro.metrics import LatencyHistogram

        histogram = LatencyHistogram()
        for seconds in (0.001, 0.002, 0.003):
            histogram.record(seconds)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(0.002)

    def test_percentiles_are_bucket_upper_bounds(self):
        from repro.metrics import LatencyHistogram

        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.0009)  # lands in the 1 ms bucket
        assert histogram.percentile(0.5) == pytest.approx(0.001)
        assert histogram.percentile(0.95) == pytest.approx(0.001)

    def test_percentile_ordering(self):
        from repro.metrics import LatencyHistogram

        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.record(i * 1e-4)  # 0.1 ms .. 10 ms spread
        assert histogram.percentile(0.5) <= histogram.percentile(0.95)
        summary = histogram.summary()
        assert summary["p50_ms"] <= summary["p95_ms"]
        assert summary["max_ms"] == pytest.approx(10.0, rel=1e-6)

    def test_thread_safety_of_record(self):
        import threading

        from repro.metrics import LatencyHistogram

        histogram = LatencyHistogram()

        def hammer():
            for _ in range(1000):
                histogram.record(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 4000

    def test_snapshot_is_internally_consistent_under_concurrent_records(self):
        """Regression: summary() used to tear across lock acquisitions.

        Every snapshot taken while four threads hammer record() must
        satisfy the single-lock invariants exactly: the bucket counts sum
        to the count and mean·count equals the total.  Before snapshot()
        existed, count and mean were read under separate acquisitions and
        could come from different instants.
        """
        import threading

        from repro.metrics import LatencyHistogram

        histogram = LatencyHistogram()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                histogram.record(0.0003)
                histogram.record(0.04)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(500):
                snap = histogram.snapshot()
                assert sum(snap["bucket_counts"]) == snap["count"]
                assert snap["mean"] * snap["count"] == pytest.approx(
                    snap["total"], rel=1e-9
                )
                summary = histogram.summary()
                assert summary["count"] * summary["mean_ms"] >= 0.0
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    @given(
        st.lists(st.floats(min_value=0.0, max_value=20.0), max_size=60),
        st.lists(st.floats(min_value=0.0, max_value=20.0), max_size=60),
    )
    def test_merge_equals_histogram_of_concatenation(self, first, second):
        """a.merge(b) is indistinguishable from observing a's and b's
        samples into one fresh histogram — bucket by bucket."""
        from repro.metrics import LatencyHistogram

        a, b, combined = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for seconds in first:
            a.record(seconds)
            combined.record(seconds)
        for seconds in second:
            b.record(seconds)
            combined.record(seconds)
        result = a.merge(b)
        assert result is a
        merged_snap, combined_snap = a.snapshot(), combined.snapshot()
        assert merged_snap["bucket_counts"] == combined_snap["bucket_counts"]
        assert merged_snap["count"] == combined_snap["count"]
        assert merged_snap["total"] == pytest.approx(combined_snap["total"])
        assert merged_snap["max"] == combined_snap["max"]

    def test_merge_rejects_mismatched_bounds(self):
        from repro.metrics import LatencyHistogram

        with pytest.raises(ValueError, match="different bounds"):
            LatencyHistogram((0.1, 1.0)).merge(LatencyHistogram((0.5, 2.0)))
