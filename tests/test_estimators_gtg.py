"""GTG-Shapley backend: determinism, truncation, masks, rank agreement.

The backend is Monte-Carlo but *seeded per round*, so the same log must
yield bit-identical estimates however it is batched; and on a log whose
participants are well-separated by construction (each ships a scaled
copy of the descent direction) its ranking must agree exactly with
DIG-FL's first-order scores.
"""

import numpy as np
import pytest

from repro.core import get_backend
from repro.core.backends import HFLRunContext
from repro.data import mnist_like
from repro.estimators import StreamingGTGShapley
from repro.hfl.log import EpochRecord, TrainingLog
from repro.hfl.trainer import flat_gradient
from repro.metrics import spearman_correlation
from repro.obs import Profiler
from tests.test_runtime_partial_estimators import (
    MASKS,
    _build_hfl_log,
    _factory,
)


@pytest.fixture(scope="module")
def validation():
    return mnist_like(40, seed=1)


@pytest.fixture(scope="module")
def partial_log():
    return _build_hfl_log()


def _separated_log(coefficients, epochs=3, lr=0.25):
    """A log whose participant ``i`` ships ``c_i`` times the true descent
    direction: bigger coefficient, strictly better participant."""
    validation = mnist_like(40, seed=1)
    model = _factory()
    theta = model.get_flat()
    log = TrainingLog(participant_ids=list(range(len(coefficients))))
    for t in range(1, epochs + 1):
        model.set_flat(theta)
        g = flat_gradient(model, validation.X, validation.y)
        updates = np.stack([lr * c * g for c in coefficients])
        weights = np.full(len(coefficients), 1.0 / len(coefficients))
        log.records.append(
            EpochRecord(
                epoch=t,
                lr=1.0,
                theta_before=theta.copy(),
                local_updates=updates,
                weights=weights,
            )
        )
        theta = theta - updates.mean(axis=0)
    return log, validation


class TestDeterminism:
    def test_same_seed_bit_identical(self, partial_log, validation):
        backend = get_backend("gtg_shapley", seed=7)
        first = backend.estimate_hfl(partial_log, validation, _factory)
        second = get_backend("gtg_shapley", seed=7).estimate_hfl(
            partial_log, validation, _factory
        )
        assert np.array_equal(first.per_epoch, second.per_epoch)
        assert np.array_equal(first.totals, second.totals)

    def test_different_seed_changes_sampling(self, validation):
        # 5 well-separated parties, loose convergence so several random
        # permutations actually run and the seed can matter.
        log, validation = _separated_log([1.0, 0.6, 0.35, 0.2, 0.05])
        kwargs = dict(
            min_permutations=4,
            convergence_tolerance=0.0,
            truncation_tolerance=0.0,
        )
        a = get_backend("gtg_shapley", seed=0, **kwargs).estimate_hfl(
            log, validation, _factory
        )
        b = get_backend("gtg_shapley", seed=123, **kwargs).estimate_hfl(
            log, validation, _factory
        )
        assert not np.array_equal(a.per_epoch, b.per_epoch)

    def test_streaming_matches_batch_ingest(self, partial_log, validation):
        backend = get_backend("gtg_shapley")
        batch = backend.estimate_hfl(partial_log, validation, _factory)
        streaming = backend.streaming_hfl(
            HFLRunContext(partial_log.participant_ids, validation, _factory)
        )
        for record in partial_log.records:
            streaming.ingest(record)
        assert np.array_equal(streaming.per_epoch(), batch.per_epoch)


class TestMasksAndTruncation:
    def test_absent_participants_score_zero(self, partial_log, validation):
        report = get_backend("gtg_shapley").estimate_hfl(
            partial_log, validation, _factory
        )
        for t, mask in enumerate(MASKS):
            if mask is None:
                continue
            assert (report.per_epoch[t, ~mask] == 0.0).all()
        assert (report.per_epoch[3] == 0.0).all()  # nobody arrived

    def test_round_truncation_zeroes_everything(self, partial_log, validation):
        # A huge between-round tolerance declares every round converged.
        report = get_backend("gtg_shapley", round_tolerance=1e9).estimate_hfl(
            partial_log, validation, _factory
        )
        assert (report.per_epoch == 0.0).all()
        assert report.extra["gtg"]["rounds_truncated"] == 3  # round 4 is empty

    def test_diagnostics_and_budget(self, partial_log, validation):
        report = get_backend("gtg_shapley", max_permutations=4).estimate_hfl(
            partial_log, validation, _factory
        )
        diag = report.extra["gtg"]
        assert diag["coalition_evaluations"] > 0
        assert 0 < diag["permutations_run"] <= 4 * 3  # <= cap x active rounds

    def test_profiler_phases_recorded(self, partial_log, validation):
        profiler = Profiler()
        get_backend("gtg_shapley").estimate_hfl(
            partial_log, validation, _factory, profiler=profiler
        )
        phases = {entry["phase"] for entry in profiler.report()}
        assert "gtg.reconstruct" in phases
        assert "gtg.eval_round" in phases

    def test_constructor_validation(self, validation):
        with pytest.raises(ValueError, match="max_permutations"):
            StreamingGTGShapley(
                [0, 1], validation, _factory, max_permutations=0
            )
        with pytest.raises(ValueError, match="do not match"):
            backend = get_backend("gtg_shapley")
            est = backend.streaming_hfl(
                HFLRunContext([0, 1], validation, _factory)
            )
            est.ingest_log(_build_hfl_log())  # 3-party log, 2-party estimator


class TestRankAgreement:
    def test_agrees_with_digfl_on_separated_log(self):
        log, validation = _separated_log([1.0, 0.5, 0.25, 0.05])
        digfl = get_backend("digfl").estimate_hfl(log, validation, _factory)
        gtg = get_backend("gtg_shapley").estimate_hfl(log, validation, _factory)
        assert spearman_correlation(gtg.totals, digfl.totals) == pytest.approx(
            1.0
        )
        # Both orderings recover the construction: party 0 first.
        assert list(np.argsort(-gtg.totals)) == [0, 1, 2, 3]
        assert list(np.argsort(-digfl.totals)) == [0, 1, 2, 3]
