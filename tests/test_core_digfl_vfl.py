"""Tests for the VFL DIG-FL estimators (Eq. 26-27)."""

import numpy as np
import pytest

from repro.core import estimate_vfl_first_order, estimate_vfl_second_order
from repro.metrics import pearson_correlation, relative_error
from repro.vfl.log import VFLTrainingLog


class TestFirstOrder:
    def test_shape(self, vfl_result):
        report = estimate_vfl_first_order(vfl_result.log)
        assert report.per_epoch.shape == (vfl_result.log.n_epochs, 5)

    def test_matches_manual_formula(self, vfl_result):
        """φ̂_{t,i} = α_t ⟨∇loss^v, ∇loss⟩ over party i's block (Eq. 27)."""
        report = estimate_vfl_first_order(vfl_result.log)
        record = vfl_result.log.records[3]
        for col, party in enumerate(vfl_result.log.active_parties):
            block = vfl_result.log.feature_blocks[party]
            expected = record.lr * record.val_gradient[block] @ record.train_gradient[block]
            assert report.per_epoch[3, col] == pytest.approx(expected, abs=1e-12)

    def test_efficiency_of_first_epoch(self, vfl_result):
        """At t=1 the per-party values sum to the full inner product: the
        estimator exactly splits ⟨v, G⟩ across blocks."""
        report = estimate_vfl_first_order(vfl_result.log)
        record = vfl_result.log.records[0]
        total = record.lr * record.val_gradient @ record.train_gradient
        assert report.per_epoch[0].sum() == pytest.approx(total, abs=1e-12)

    def test_empty_log_rejected(self, vfl_split):
        log = VFLTrainingLog(feature_blocks=list(vfl_split.feature_blocks), active_parties=[0])
        with pytest.raises(ValueError, match="empty"):
            estimate_vfl_first_order(log)


class TestSecondOrder:
    def test_close_to_first_order(self, vfl_result, vfl_split, vfl_trainer):
        """Sec. II-E / Table II: dropping the Hessian term changes totals by
        only a few percent."""
        fo = estimate_vfl_first_order(vfl_result.log)
        so = estimate_vfl_second_order(vfl_result.log, vfl_trainer.model, vfl_split.train)
        err = relative_error(float(so.totals.sum()), float(fo.totals.sum()))
        assert err < 0.15
        assert pearson_correlation(fo.totals, so.totals) > 0.95

    def test_first_epoch_identical(self, vfl_result, vfl_split, vfl_trainer):
        fo = estimate_vfl_first_order(vfl_result.log)
        so = estimate_vfl_second_order(vfl_result.log, vfl_trainer.model, vfl_split.train)
        np.testing.assert_allclose(so.per_epoch[0], fo.per_epoch[0], atol=1e-12)

    def test_coalition_log_respected(self, vfl_split, vfl_trainer):
        """Estimates on a sub-coalition log only cover active parties."""
        result = vfl_trainer.train(vfl_split.train, vfl_split.validation, parties=[1, 3])
        report = estimate_vfl_first_order(result.log)
        assert report.participant_ids == [1, 3]
