"""End-to-end auditor workflow: scenario → persist → reload → replay → render.

The product story in one test module: an operator runs a scenario, archives
the training log, and an independent auditor later reloads the artefacts,
reproduces the contribution estimates bit-for-bit and renders a report —
without retraining and without touching any participant's data.
"""

import json

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, proportional_payments
from repro.io import load_report, load_training_log, save_report, save_training_log
from repro.render import contribution_bars, report_markdown
from repro.scenario import HFLScenario


@pytest.fixture(scope="module")
def operator_run(tmp_path_factory):
    """The operator's side: run, audit, archive."""
    workdir = tmp_path_factory.mktemp("audit")
    scenario = HFLScenario(
        dataset="mnist", n_parties=5, n_mislabeled=1, n_noniid=1,
        epochs=8, seed=99,
    )
    result = scenario.run()
    log_path = workdir / "training_log.npz"
    report_path = workdir / "contributions.json"
    save_training_log(result.training.log, log_path)
    save_report(result.digfl, report_path)
    return scenario, result, log_path, report_path


class TestAuditorReplay:
    def test_reloaded_log_reproduces_estimates(self, operator_run):
        scenario, result, log_path, _ = operator_run
        log = load_training_log(log_path)
        # The auditor replays the estimator on the archived log against the
        # server-held validation set — no retraining, no local data.
        report = estimate_hfl_resource_saving(
            log, result.federation.validation, scenario.model_factory
        )
        np.testing.assert_allclose(report.totals, result.digfl.totals, atol=1e-12)

    def test_saved_report_matches(self, operator_run):
        _, result, _, report_path = operator_run
        loaded = load_report(report_path)
        np.testing.assert_allclose(loaded.totals, result.digfl.totals)
        assert loaded.method == "digfl-resource-saving"

    def test_report_json_is_plain(self, operator_run):
        _, _, _, report_path = operator_run
        payload = json.loads(report_path.read_text())
        assert payload["format"] == "repro.contribution_report.v1"
        assert len(payload["totals"]) == 5

    def test_rendered_outputs(self, operator_run):
        _, result, _, report_path = operator_run
        loaded = load_report(report_path)
        bars = contribution_bars(loaded, qualities=result.qualities)
        markdown = report_markdown(loaded, qualities=result.qualities)
        assert bars.count("\n") == 4
        assert "| participant | quality | contribution | share |" in markdown

    def test_payments_from_reloaded_report(self, operator_run):
        _, result, _, report_path = operator_run
        loaded = load_report(report_path)
        payments = proportional_payments(loaded, 10_000.0)
        assert sum(payments.values()) == pytest.approx(10_000.0)
        # The corrupted participants are paid less than the clean mean.
        clean_ids = [
            pid for pid, q in zip(loaded.participant_ids, result.qualities)
            if q == "clean"
        ]
        bad_ids = [p for p in loaded.participant_ids if p not in clean_ids]
        clean_mean = np.mean([payments[p] for p in clean_ids])
        assert all(payments[p] < clean_mean for p in bad_ids)
