"""The fleet status surface: /statusz, /robustness, RED series, exemplars.

End-to-end over real sockets, like ``tests/test_serve_http.py``: a
worker's ``/statusz`` serves SLO verdicts fed by its own traffic, the
route normalizer keeps RED-series cardinality bounded no matter how many
run ids a load test mints, duration-bucket exemplars round-trip from the
Prometheus exposition back to a real recorded span tree, and the cluster
router merges every worker's verdicts (and exemplar-bearing series)
under one scrape that still satisfies the strict exposition parser.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.io import save_vfl_training_log
from repro.obs import MetricsRegistry, Observability
from repro.serve import (
    ClusterRouter,
    EvaluationHTTPServer,
    EvaluationService,
    StaticTopology,
)
from repro.serve.http import RequestTelemetry, normalize_route
from tests.test_obs_registry import parse_prometheus

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def vfl_log_path(vfl_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve_statusz") / "vfl_run.npz"
    save_vfl_training_log(vfl_result.log, path)
    return str(path)


@pytest.fixture()
def server():
    httpd = EvaluationHTTPServer(("127.0.0.1", 0), EvaluationService())
    httpd.serve_background()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    httpd.service.close()


def _get(port, path):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            body = response.read()
            return response.status, body, response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), exc.headers


def _get_json(port, path):
    status, body, _ = _get(port, path)
    return status, json.loads(body)


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# ------------------------------------------------------------ route templates


class TestRouteNormalizer:
    @pytest.mark.parametrize(
        ("path", "template"),
        [
            ("/healthz", "/healthz"),
            ("/statusz", "/statusz"),
            ("/robustness", "/robustness"),
            ("/metricz?format=prometheus", "/metricz"),
            ("/runs", "/runs"),
            ("/runs/hfl-123/leaderboard?top=3", "/runs/{id}/leaderboard"),
            ("/runs/anything%20at%20all/weights", "/runs/{id}/weights"),
            ("/wal/stream?from=7", "/wal/stream"),
            ("/cluster/resize", "/cluster/resize"),
            ("/control/promote", "/control/promote"),
            ("/", "/"),
            ("/bogus", "/other"),
            ("/runs/x/bogus", "/other"),
            ("/runs/x/y/z/deep", "/other"),
        ],
    )
    def test_templates(self, path, template):
        assert normalize_route(path) == template

    def test_thousand_run_ids_cost_one_series(self):
        """The cardinality bound: 1000 distinct run ids, one histogram."""
        registry = MetricsRegistry()
        telemetry = RequestTelemetry(registry)
        for i in range(1000):
            telemetry.observe(f"/runs/run-{i}/leaderboard", 200, 0.001)
        snapshot = registry.snapshot()
        duration = snapshot["repro_http_request_duration_seconds"]["series"]
        assert len(duration) == 1
        assert duration[0]["labels"] == {"endpoint": "/runs/{id}/leaderboard"}
        requests = snapshot["repro_http_requests_total"]["series"]
        assert len(requests) == 1
        assert telemetry.endpoints()["/runs/{id}/leaderboard"]["count"] == 1000


# ------------------------------------------------------------------ /statusz


class TestStatusz:
    def test_statusz_shape_and_clean_verdict(self, server, vfl_log_path):
        status, created = _post(
            server.port, "/runs",
            {"kind": "vfl", "log_path": vfl_log_path, "run_id": "sz"},
        )
        assert status == 201
        assert _get_json(server.port, "/runs/sz/leaderboard")[0] == 200
        status, payload = _get_json(server.port, "/statusz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["health"] == "ok"
        assert payload["replication"] is None  # not a standby
        assert not payload["slo"]["burning"]
        names = {entry["name"] for entry in payload["slo"]["slos"]}
        assert names == {"availability", "latency", "shed"}
        for entry in payload["slo"]["slos"]:
            for window in entry["windows"]:
                assert window["short_burn"] >= 0.0
                assert isinstance(window["firing"], bool)
        # The leaderboard traffic above is already classified.
        assert payload["slo"]["counts"]["requests"] >= 2
        assert "/runs/{id}/leaderboard" in payload["endpoints"]

    def test_statusz_stable_under_concurrent_scrapes(
        self, server, vfl_log_path
    ):
        status, _ = _post(
            server.port, "/runs",
            {"kind": "vfl", "log_path": vfl_log_path, "run_id": "hammer"},
        )
        assert status == 201
        errors: list = []

        def scraper():
            for _ in range(20):
                try:
                    code, payload = _get_json(server.port, "/statusz")
                    assert code == 200
                    assert payload["status"] in ("ok", "burning")
                except Exception as exc:  # noqa: BLE001 - collected for report
                    errors.append(exc)

        def traffic():
            for _ in range(20):
                _get_json(server.port, "/runs/hammer/leaderboard")

        threads = [threading.Thread(target=scraper) for _ in range(4)]
        threads.append(threading.Thread(target=traffic))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_post_statusz_is_405(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/statusz",
            data=b"{}",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET"


# --------------------------------------------------------------- /robustness


class TestRobustness:
    def test_missing_matrix_is_typed_404(self, tmp_path):
        httpd = EvaluationHTTPServer(
            ("127.0.0.1", 0),
            EvaluationService(),
            robustness_file=str(tmp_path / "nope.json"),
        )
        httpd.serve_background()
        try:
            status, payload = _get_json(httpd.port, "/robustness")
            assert status == 404
            assert "robustness matrix" in payload["error"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            httpd.service.close()

    def test_serves_the_saved_matrix_fresh(self, tmp_path):
        matrix = tmp_path / "BENCH_scenarios.json"
        matrix.write_text(json.dumps({"ok": True, "cells": []}))
        httpd = EvaluationHTTPServer(
            ("127.0.0.1", 0), EvaluationService(),
            robustness_file=str(matrix),
        )
        httpd.serve_background()
        try:
            status, payload = _get_json(httpd.port, "/robustness")
            assert status == 200
            assert payload["ok"] is True
            assert payload["file"] == str(matrix)
            # Fresh per request: a re-run is visible immediately.
            matrix.write_text(json.dumps({"ok": False, "cells": [1]}))
            status, payload = _get_json(httpd.port, "/robustness")
            assert status == 200
            assert payload["ok"] is False
        finally:
            httpd.shutdown()
            httpd.server_close()
            httpd.service.close()


# ------------------------------------------------------------- estimator auto


class TestEstimatorAuto:
    def test_auto_resolves_to_a_concrete_backend(self, server, vfl_log_path):
        status, created = _post(
            server.port, "/runs",
            {
                "kind": "vfl",
                "log_path": vfl_log_path,
                "run_id": "auto-vfl",
                "estimator": "auto",
            },
        )
        assert status == 201
        # The paper's DIG-FL is the only VFL-capable backend, so auto
        # must land there — and the response names the concrete choice.
        assert created["estimator"] == "digfl"
        assert created["estimator_requested"] == "auto"

    def test_explicit_estimator_does_not_echo_requested(
        self, server, vfl_log_path
    ):
        status, created = _post(
            server.port, "/runs",
            {"kind": "vfl", "log_path": vfl_log_path, "run_id": "explicit"},
        )
        assert status == 201
        assert "estimator_requested" not in created

    def test_auto_with_bad_options_is_typed_400(self, server, vfl_log_path):
        status, payload = _post(
            server.port, "/runs",
            {
                "kind": "vfl",
                "log_path": vfl_log_path,
                "run_id": "auto-bad",
                "estimator": "auto",
                "estimator_options": {"banana": 1},
            },
        )
        assert status == 400
        assert "auto-selected estimator" in payload["error"]


# ------------------------------------------- exemplar → span tree round-trip


class TestExemplarRoundTrip:
    def test_prometheus_exemplar_resolves_to_a_recorded_span_tree(
        self, vfl_log_path
    ):
        """The observability loop closes: a tail latency seen on
        ``/metricz`` carries a trace id that pulls up the exact request's
        span tree from the armed tracer."""
        obs = Observability(trace=True)
        httpd = EvaluationHTTPServer(
            ("127.0.0.1", 0), EvaluationService(obs=obs)
        )
        httpd.serve_background()
        try:
            status, _ = _post(
                httpd.port, "/runs",
                {"kind": "vfl", "log_path": vfl_log_path, "run_id": "traced"},
            )
            assert status == 201
            for _ in range(3):
                assert _get_json(httpd.port, "/runs/traced/leaderboard")[0] == 200
            status, body, _ = _get(httpd.port, "/metricz?format=prometheus")
            assert status == 200
            metrics = parse_prometheus(body.decode())
            histogram = metrics["repro_http_request_duration_seconds"]
            exemplars = {
                labels: exemplar
                for (name, labels), exemplar in histogram["exemplars"].items()
            }
            leaderboard = [
                exemplar
                for labels, exemplar in exemplars.items()
                if ("endpoint", "/runs/{id}/leaderboard") in labels
            ]
            assert leaderboard, "no exemplar on the leaderboard duration series"
            trace_id = dict(leaderboard[0]["labels"])["trace_id"]
            spans = obs.tracer.spans(trace_id=trace_id)
            assert spans, f"exemplar trace {trace_id} has no recorded spans"
            roots = [span for span in spans if span.name == "http.request"]
            assert roots
            assert roots[0].attributes["path"].startswith("/runs/traced/")
        finally:
            httpd.shutdown()
            httpd.server_close()
            httpd.service.close()


# ------------------------------------------------------------ repro slo check


class TestSloCheckCli:
    def test_healthy_server_exits_zero_and_prints_the_table(
        self, server, capsys
    ):
        from repro.cli import main

        assert _get_json(server.port, "/healthz")[0] == 200
        assert main(["slo", "check", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "BURNING" not in out

    def test_burning_server_exits_one(self, server):
        from repro.cli import main
        from repro.obs.slo import SloTracker

        # Swap in a deterministic-clock tracker and burn an hour of 5%
        # errors through it — the served verdict flips without a single
        # real failure or sleep.
        clock_t = [1000.0]
        tracker = SloTracker(clock=lambda: clock_t[0])
        server.telemetry.slo_tracker = tracker
        for i in range(3600):
            clock_t[0] += 1.0
            status = 500 if i % 20 == 19 else 200
            tracker.observe(status=status, latency_s=0.001)
        assert main(["slo", "check", "--port", str(server.port)]) == 1

    def test_unreachable_server_exits_two(self, capsys):
        from repro.cli import main

        code = main(
            ["slo", "check", "--port", "1", "--timeout-s", "1"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_json_mode_prints_the_raw_payload(self, server, capsys):
        from repro.cli import main

        assert main(["slo", "check", "--port", str(server.port), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] in ("ok", "burning")
        assert "slo" in payload


# -------------------------------------------------------------------- router


class TestRouterStatusSurface:
    @pytest.fixture()
    def workers(self, tmp_path):
        matrix = tmp_path / "matrix.json"
        matrix.write_text(json.dumps({"ok": True, "cells": []}))
        servers = [
            EvaluationHTTPServer(
                ("127.0.0.1", 0), EvaluationService(),
                robustness_file=str(matrix),
            )
            for _ in range(2)
        ]
        for server in servers:
            server.serve_background()
        yield servers
        for server in servers:
            server.shutdown()
            server.server_close()
            server.service.close()

    @pytest.fixture()
    def cluster(self, workers, tmp_path):
        matrix = tmp_path / "router-matrix.json"
        matrix.write_text(json.dumps({"ok": True, "router": True}))
        topology = StaticTopology(
            {
                index: ("127.0.0.1", server.port)
                for index, server in enumerate(workers)
            }
        )
        router = ClusterRouter(
            ("127.0.0.1", 0), topology, robustness_file=str(matrix)
        )
        router.serve_background()
        yield router, workers
        router.shutdown()
        router.server_close()

    def test_merged_statusz_carries_every_worker(
        self, cluster, vfl_log_path
    ):
        router, workers = cluster
        status, created = _post(
            router.port, "/runs", {"kind": "vfl", "log_path": vfl_log_path}
        )
        assert status == 201
        run_id = created["run_id"]
        assert _get_json(router.port, f"/runs/{run_id}/leaderboard")[0] == 200
        status, payload = _get_json(router.port, "/statusz")
        assert status == 200
        assert payload["status"] == "ok"
        assert sorted(payload["workers"]) == ["0", "1"]
        assert payload["shards_down"] == []
        for worker in payload["workers"].values():
            assert worker["status"] in ("ok", "burning")
            assert {"availability", "latency", "shed"} == {
                entry["name"] for entry in worker["slo"]["slos"]
            }
        # The router's own SLO engine judged the proxied traffic.
        assert payload["slo"]["counts"]["requests"] >= 2

    def test_merged_statusz_reports_down_shards(self, cluster):
        router, workers = cluster
        workers[1].shutdown()
        workers[1].server_close()
        status, payload = _get_json(router.port, "/statusz")
        assert status == 200
        assert payload["shards_down"] == ["1"]
        assert payload["workers"]["1"]["status"] == "down"

    def test_router_serves_its_own_robustness_file(self, cluster):
        router, _ = cluster
        status, payload = _get_json(router.port, "/robustness")
        assert status == 200
        assert payload["router"] is True

    def test_merged_prometheus_with_red_and_exemplars_parses_strictly(
        self, cluster, vfl_log_path
    ):
        router, workers = cluster
        status, created = _post(
            router.port, "/runs", {"kind": "vfl", "log_path": vfl_log_path}
        )
        assert status == 201
        run_id = created["run_id"]
        for _ in range(3):
            assert _get_json(
                router.port, f"/runs/{run_id}/leaderboard"
            )[0] == 200
        assert _get_json(router.port, "/statusz")[0] == 200
        status, body, headers = _get(
            router.port, "/metricz?format=prometheus"
        )
        assert status == 200
        metrics = parse_prometheus(body.decode())
        red = metrics["repro_http_requests_total"]
        worker_labels = {
            dict(labels).get("worker")
            for _name, labels in red["samples"]
        }
        # RED series from the router's own telemetry and each worker's.
        assert "router" in worker_labels
        assert worker_labels & {"0", "1"}
        duration = metrics["repro_http_request_duration_seconds"]
        assert duration["samples"], "merged duration histogram is empty"
