"""Tests for contribution-based payment mechanisms."""

import numpy as np
import pytest

from repro.core import (
    ContributionReport,
    from_per_epoch,
    payment_summary,
    proportional_payments,
    shapley_payments,
    streaming_payments,
)


def report_with_totals(totals):
    totals = np.asarray(totals, dtype=np.float64)
    return ContributionReport(
        method="test", participant_ids=list(range(len(totals))), totals=totals
    )


class TestProportional:
    def test_budget_balanced(self):
        payments = proportional_payments(report_with_totals([1.0, 3.0]), 100.0)
        assert sum(payments.values()) == pytest.approx(100.0)
        assert payments[1] == pytest.approx(75.0)

    def test_negative_contributor_gets_zero(self):
        payments = proportional_payments(report_with_totals([2.0, -1.0]), 50.0)
        assert payments[1] == 0.0
        assert payments[0] == pytest.approx(50.0)

    def test_all_negative_withholds_budget(self):
        payments = proportional_payments(report_with_totals([-1.0, -2.0]), 50.0)
        assert all(v == 0.0 for v in payments.values())

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            proportional_payments(report_with_totals([1.0]), 0.0)


class TestShapleyPayments:
    def test_default_is_proportional(self):
        report = report_with_totals([1.0, -1.0, 2.0])
        assert shapley_payments(report, 90.0) == proportional_payments(report, 90.0)

    def test_signed_division_budget_balanced(self):
        report = report_with_totals([3.0, -1.0])
        payments = shapley_payments(report, 100.0, allow_negative=True)
        assert sum(payments.values()) == pytest.approx(100.0)
        assert payments[1] < 0  # the harmful participant owes the pool

    def test_signed_zero_sum_rejected(self):
        report = report_with_totals([1.0, -1.0])
        with pytest.raises(ValueError, match="sum to ~0"):
            shapley_payments(report, 10.0, allow_negative=True)


class TestStreaming:
    def test_per_round_budget_balanced(self):
        per_epoch = np.array([[1.0, 1.0], [3.0, 1.0], [0.0, 2.0]])
        report = from_per_epoch("digfl", [0, 1], per_epoch)
        payments = streaming_payments(report, 10.0)
        assert sum(payments.values()) == pytest.approx(30.0)

    def test_round_with_no_positive_splits_uniformly(self):
        per_epoch = np.array([[-1.0, -2.0]])
        report = from_per_epoch("digfl", [0, 1], per_epoch)
        payments = streaming_payments(report, 10.0)
        assert payments[0] == pytest.approx(5.0)
        assert payments[1] == pytest.approx(5.0)

    def test_requires_per_epoch(self):
        report = report_with_totals([1.0, 2.0])
        with pytest.raises(ValueError, match="per-epoch"):
            streaming_payments(report, 10.0)

    def test_streaming_rewards_timing(self):
        """A participant helpful only early still gets paid for those rounds."""
        per_epoch = np.array([[5.0, 0.0], [0.0, 5.0], [0.0, 5.0]])
        report = from_per_epoch("digfl", [0, 1], per_epoch)
        payments = streaming_payments(report, 9.0)
        assert payments[0] == pytest.approx(9.0)
        assert payments[1] == pytest.approx(18.0)


class TestSummary:
    def test_format(self):
        text = payment_summary({1: 10.0, 0: 5.0})
        lines = text.splitlines()
        assert lines[0].startswith("participant")
        assert "total" in lines[-1]
        assert "15.00" in lines[-1]
