"""Round-trip tests for training-log and report serialisation."""

import json

import numpy as np
import pytest

from repro.core import estimate_hfl_resource_saving, estimate_vfl_first_order
from repro.io import (
    TrainingLogIntegrityError,
    load_report,
    load_training_log,
    load_vfl_training_log,
    save_report,
    save_training_log,
    save_vfl_training_log,
)
from repro.hfl import TrainingLog
from repro.hfl.log import EpochRecord
from repro.vfl.log import VFLTrainingLog

from tests.conftest import small_model_factory


class TestHFLLogRoundtrip:
    def test_arrays_identical(self, hfl_result, tmp_path):
        path = tmp_path / "log.npz"
        save_training_log(hfl_result.log, path)
        loaded = load_training_log(path)
        assert loaded.participant_ids == hfl_result.log.participant_ids
        assert loaded.n_epochs == hfl_result.log.n_epochs
        for a, b in zip(loaded.records, hfl_result.log.records):
            np.testing.assert_array_equal(a.theta_before, b.theta_before)
            np.testing.assert_array_equal(a.local_updates, b.local_updates)
            np.testing.assert_array_equal(a.weights, b.weights)
            assert a.epoch == b.epoch
            assert a.lr == b.lr

    def test_estimates_identical_after_roundtrip(
        self, hfl_result, hfl_federation, tmp_path
    ):
        """The whole point: estimators replayed on a loaded log agree."""
        path = tmp_path / "log.npz"
        save_training_log(hfl_result.log, path)
        loaded = load_training_log(path)
        original = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        replayed = estimate_hfl_resource_saving(
            loaded, hfl_federation.validation, small_model_factory
        )
        np.testing.assert_allclose(replayed.totals, original.totals, atol=1e-12)

    def test_val_metrics_survive(self, hfl_result, tmp_path):
        path = tmp_path / "log.npz"
        save_training_log(hfl_result.log, path)
        loaded = load_training_log(path)
        np.testing.assert_allclose(
            loaded.val_loss_curve(), hfl_result.log.val_loss_curve()
        )

    def test_empty_log_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_training_log(TrainingLog(participant_ids=[0]), tmp_path / "x.npz")

    def test_wrong_format_rejected(self, vfl_result, tmp_path):
        path = tmp_path / "vfl.npz"
        save_vfl_training_log(vfl_result.log, path)
        with pytest.raises(ValueError, match="not an HFL"):
            load_training_log(path)


class TestVFLLogRoundtrip:
    def test_arrays_identical(self, vfl_result, tmp_path):
        path = tmp_path / "log.npz"
        save_vfl_training_log(vfl_result.log, path)
        loaded = load_vfl_training_log(path)
        assert loaded.active_parties == vfl_result.log.active_parties
        for a, b in zip(loaded.feature_blocks, vfl_result.log.feature_blocks):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(loaded.records, vfl_result.log.records):
            np.testing.assert_array_equal(a.train_gradient, b.train_gradient)
            np.testing.assert_array_equal(a.val_gradient, b.val_gradient)

    def test_estimates_identical_after_roundtrip(self, vfl_result, tmp_path):
        path = tmp_path / "log.npz"
        save_vfl_training_log(vfl_result.log, path)
        loaded = load_vfl_training_log(path)
        original = estimate_vfl_first_order(vfl_result.log)
        replayed = estimate_vfl_first_order(loaded)
        np.testing.assert_allclose(replayed.totals, original.totals, atol=1e-12)

    def test_empty_rejected(self, vfl_split, tmp_path):
        log = VFLTrainingLog(
            feature_blocks=list(vfl_split.feature_blocks), active_parties=[0]
        )
        with pytest.raises(ValueError, match="empty"):
            save_vfl_training_log(log, tmp_path / "x.npz")

    def test_wrong_format_rejected(self, hfl_result, tmp_path):
        path = tmp_path / "hfl.npz"
        save_training_log(hfl_result.log, path)
        with pytest.raises(ValueError, match="not a VFL"):
            load_vfl_training_log(path)


class TestContentChecksums:
    def test_checksum_embedded_on_save(self, hfl_result, tmp_path):
        path = tmp_path / "log.npz"
        save_training_log(hfl_result.log, path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
        assert len(meta["checksum"]) == 64  # sha256 hex digest

    @pytest.mark.parametrize("kind", ["hfl", "vfl"])
    def test_truncated_file_detected(self, hfl_result, vfl_result, tmp_path, kind):
        """Corruption-detection: a partially written file must not load."""
        path = tmp_path / "log.npz"
        if kind == "hfl":
            save_training_log(hfl_result.log, path)
        else:
            save_vfl_training_log(vfl_result.log, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: int(len(raw) * 0.7)])
        loader = load_training_log if kind == "hfl" else load_vfl_training_log
        with pytest.raises(TrainingLogIntegrityError):
            loader(path)

    def test_flipped_array_bytes_detected(self, hfl_result, tmp_path):
        """A bit-rot file that still unzips must fail the checksum."""
        path = tmp_path / "log.npz"
        save_training_log(hfl_result.log, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        tampered = np.array(arrays["local_updates"])
        tampered[0, 0, 0] += 1.0
        arrays["local_updates"] = tampered
        np.savez_compressed(path, **arrays)
        with pytest.raises(TrainingLogIntegrityError, match="integrity"):
            load_training_log(path)

    @pytest.mark.parametrize("kind", ["hfl", "vfl"])
    def test_legacy_file_without_checksum_warns_and_loads(
        self, hfl_result, vfl_result, tmp_path, kind
    ):
        """Back-compat: pre-checksum files load with a warning."""
        path = tmp_path / "log.npz"
        if kind == "hfl":
            save_training_log(hfl_result.log, path)
        else:
            save_vfl_training_log(vfl_result.log, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(str(arrays["meta"]))
        del meta["checksum"]
        arrays["meta"] = json.dumps(meta)
        np.savez_compressed(path, **arrays)
        loader = load_training_log if kind == "hfl" else load_vfl_training_log
        with pytest.warns(UserWarning, match="no embedded checksum"):
            loaded = loader(path)
        assert loaded.n_epochs > 0

    def test_not_a_zipfile_reported_as_integrity_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(TrainingLogIntegrityError, match="corrupt or truncated"):
            load_training_log(path)


class TestAppliedUpdateRoundtrip:
    def _log_with_applied(self):
        rng = np.random.default_rng(0)
        log = TrainingLog(participant_ids=[0, 1, 2])
        for epoch in (1, 2):
            updates = rng.normal(size=(3, 4))
            log.records.append(
                EpochRecord(
                    epoch=epoch,
                    lr=0.5,
                    theta_before=rng.normal(size=4),
                    local_updates=updates,
                    weights=np.full(3, 1 / 3),
                    # Round 2 used a non-linear aggregator.
                    applied_update=(
                        np.median(updates, axis=0) if epoch == 2 else None
                    ),
                )
            )
        return log

    def test_applied_update_survives(self, tmp_path):
        log = self._log_with_applied()
        path = tmp_path / "log.npz"
        save_training_log(log, path)
        loaded = load_training_log(path)
        assert loaded.records[0].applied_update is None
        np.testing.assert_array_equal(
            loaded.records[1].applied_update, log.records[1].applied_update
        )
        # global_update must reconstruct from the applied value, not w @ U.
        np.testing.assert_array_equal(
            loaded.records[1].global_update, log.records[1].global_update
        )
        np.testing.assert_array_equal(loaded.final_theta, log.final_theta)

    def test_log_without_applied_updates_stores_no_extra_arrays(
        self, hfl_result, tmp_path
    ):
        path = tmp_path / "log.npz"
        save_training_log(hfl_result.log, path)
        with np.load(path, allow_pickle=False) as data:
            assert "applied_update" not in data.files


class TestReportRoundtrip:
    def test_totals_and_per_epoch(self, hfl_result, hfl_federation, tmp_path):
        report = estimate_hfl_resource_saving(
            hfl_result.log, hfl_federation.validation, small_model_factory
        )
        path = tmp_path / "report.json"
        save_report(report, path)
        loaded = load_report(path)
        assert loaded.method == report.method
        assert loaded.participant_ids == report.participant_ids
        np.testing.assert_allclose(loaded.totals, report.totals)
        np.testing.assert_allclose(loaded.per_epoch, report.per_epoch)

    def test_report_without_per_epoch(self, tmp_path):
        from repro.core import ContributionReport

        report = ContributionReport(
            method="exact", participant_ids=[0, 1], totals=np.array([1.0, 2.0])
        )
        path = tmp_path / "r.json"
        save_report(report, path)
        loaded = load_report(path)
        assert loaded.per_epoch is None

    def test_unjsonable_extra_dropped(self, tmp_path):
        from repro.core import ContributionReport

        report = ContributionReport(
            method="x",
            participant_ids=[0],
            totals=np.array([1.0]),
            extra={"ok": 5, "bad": object()},
        )
        path = tmp_path / "r.json"
        save_report(report, path)
        loaded = load_report(path)
        assert loaded.extra == {"ok": 5}

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a contribution report"):
            load_report(path)
