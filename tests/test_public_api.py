"""Meta-tests: the public API surface stays coherent.

Checks every subpackage's ``__all__`` resolves, everything exported is
documented, and the top-level package re-exports the core entry points —
the kind of drift that silently breaks downstream users.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.autodiff",
    "repro.core",
    "repro.crypto",
    "repro.data",
    "repro.estimators",
    "repro.experiments",
    "repro.hfl",
    "repro.metrics",
    "repro.models",
    "repro.nn",
    "repro.obs",
    "repro.robust",
    "repro.runtime",
    "repro.scenario",
    "repro.serve",
    "repro.shapley",
    "repro.utils",
    "repro.vfl",
]

MODULES_WITHOUT_ALL = ["repro.io", "repro.cli", "repro.render"]


class TestAllExportsResolve:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_exist(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted(self, package):
        module = importlib.import_module(package)
        assert list(module.__all__) == sorted(
            module.__all__
        ), f"{package}.__all__ is not sorted"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicates(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))


class TestDocumentation:
    @pytest.mark.parametrize("package", PACKAGES + MODULES_WITHOUT_ALL)
    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize("package", PACKAGES)
    def test_exported_callables_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{package}: missing docstrings on {undocumented}"


class TestTopLevelSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_core_entry_points_reexported(self):
        import repro

        for name in (
            "estimate_hfl_resource_saving",
            "estimate_hfl_interactive",
            "estimate_vfl_first_order",
            "DIGFLReweighter",
            "ContributionReport",
        ):
            assert hasattr(repro, name)

    def test_no_heavyweight_deps(self):
        """The library must not drag in torch/tensorflow/sklearn."""
        import sys

        import repro  # noqa: F401 - trigger imports
        import repro.core  # noqa: F401
        import repro.experiments  # noqa: F401

        for forbidden in ("torch", "tensorflow", "sklearn", "jax"):
            assert forbidden not in sys.modules
