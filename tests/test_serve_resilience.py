"""Resilience primitives and their wiring through the evaluation service.

Unit-level: deadlines, the admission queue, the circuit-breaker state
machine (driven by an injected clock, so every transition is asserted
deterministically), and the decorrelated-jitter retry schedule.
Service-level: per-request deadlines surfacing as
:class:`DeadlineExceeded` at the ``Future`` boundary, load shedding with
a p95-derived ``Retry-After``, idempotent close with fail-fast
:class:`ServiceClosed` everywhere after, the publisher-outlives-service
race, and the concurrent register/ingest/query/close hammer.
"""

import threading

import numpy as np
import pytest

from repro.serve import (
    AdmissionQueue,
    ChaosPolicy,
    CircuitBreaker,
    ContributionPublisher,
    Deadline,
    DeadlineExceeded,
    EvaluationService,
    QueryFailed,
    RetryPolicy,
    ServiceClosed,
    ServiceOverloaded,
    inject_chaos,
)
from repro.serve.resilience import Backoff, retry_after_seconds

# Inert without the pytest-timeout plugin (CI installs it); a deadlock in
# the close-race hammer then fails instead of wedging the suite.
pytestmark = pytest.mark.timeout(180)


class TestDeadline:
    def test_none_budget_means_no_deadline_object(self):
        assert Deadline.start(None) is None

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline(0)

    def test_check_passes_then_raises_with_progress(self):
        deadline = Deadline(10_000)
        deadline.check(epochs=3)  # plenty of budget left
        expired = Deadline(0.001)
        while not expired.expired():
            pass
        with pytest.raises(DeadlineExceeded) as excinfo:
            expired.check(epochs=7)
        assert excinfo.value.progress == {"epochs": 7}
        assert excinfo.value.elapsed_ms >= excinfo.value.budget_ms

    def test_remaining_never_negative(self):
        expired = Deadline(0.001)
        while not expired.expired():
            pass
        assert expired.remaining_s() == 0.0


class TestAdmissionQueue:
    def test_unlimited_queue_never_sheds(self):
        queue = AdmissionQueue(None)
        for _ in range(100):
            assert queue.try_acquire()
        assert queue.shed == 0
        assert queue.stats()["depth"] == 100

    def test_limit_sheds_and_release_readmits(self):
        queue = AdmissionQueue(2)
        assert queue.try_acquire()
        assert queue.try_acquire()
        assert not queue.try_acquire()
        assert queue.shed == 1
        queue.release()
        assert queue.try_acquire()
        assert queue.stats()["peak_depth"] == 2

    def test_in_flight_gauge_brackets_execution(self):
        queue = AdmissionQueue(4)
        queue.try_acquire()
        queue.enter()
        assert queue.stats()["in_flight"] == 1
        queue.exit()
        queue.release()
        stats = queue.stats()
        assert stats["in_flight"] == 0
        assert stats["peak_in_flight"] == 1

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            AdmissionQueue(0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, 30.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(2, 30.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 30.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(30.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else still refused

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 30.0, clock=clock)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms_the_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 30.0, clock=clock)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_caller_error_cancels_the_probe_without_wedging(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 30.0, clock=clock)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()  # the probe slot is taken...
        breaker.cancel_probe()  # ...but the probe died of a caller error
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the slot was freed: a new probe may run
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cancel_probe_without_a_probe_is_a_no_op(self):
        breaker = CircuitBreaker(2, 30.0, clock=FakeClock())
        breaker.cancel_probe()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_stats_shape(self):
        breaker = CircuitBreaker(2, 5.0, clock=FakeClock())
        breaker.record_failure()
        assert breaker.stats() == {
            "state": "closed",
            "consecutive_failures": 1,
            "opens": 0,
        }


class TestRetryPolicy:
    def test_schedule_is_seeded_and_bounded(self):
        a = list(RetryPolicy(6, base_delay_s=0.05, max_delay_s=1.0, seed=9).delays())
        b = list(RetryPolicy(6, base_delay_s=0.05, max_delay_s=1.0, seed=9).delays())
        assert a == b
        assert len(a) == 6
        assert all(0.05 <= d <= 1.0 for d in a)

    def test_different_seeds_decorrelate(self):
        a = list(RetryPolicy(6, seed=1).delays())
        b = list(RetryPolicy(6, seed=2).delays())
        assert a != b

    def test_zero_retries_yields_nothing(self):
        assert list(RetryPolicy(0).delays()) == []

    def test_retry_after_is_whole_seconds_floored_at_one(self):
        assert retry_after_seconds(0.0, 0) == 1.0
        assert retry_after_seconds(0.3, 4) == 2.0  # ceil(0.3 * 5)


@pytest.fixture()
def vfl_service(vfl_result):
    with EvaluationService(max_workers=2) as svc:
        run_id = svc.register_vfl_log(vfl_result.log, run_id="r")
        yield svc, run_id


class TestServiceDeadlines:
    def test_deadline_overrun_surfaces_at_the_future_boundary(self, vfl_result):
        with EvaluationService(max_workers=1, query_deadline_ms=30.0) as svc:
            run_id = svc.register_vfl_log(vfl_result.log)
            # Every compute sleeps well past the 30ms budget.
            inject_chaos(
                svc, run_id, ChaosPolicy(latency_prob=1.0, latency_ms=300.0)
            )
            svc.ingest(run_id, vfl_result.log.records[0])  # chaos ingest ok
            with pytest.raises(DeadlineExceeded) as excinfo:
                svc.query("contributions", run_id)
            assert excinfo.value.budget_ms == pytest.approx(30.0)

    def test_warm_hits_beat_any_deadline(self, vfl_result):
        with EvaluationService(query_deadline_ms=10_000.0) as svc:
            run_id = svc.register_vfl_log(vfl_result.log)
            first = svc.query("leaderboard", run_id, top=2)
            second = svc.query("leaderboard", run_id, top=2)
            assert second == first
            assert second["stale"] is False

    def test_overrunning_compute_is_banked_for_the_retry(self, vfl_result):
        """The 504'd value still lands in the cache: retry = warm hit."""
        with EvaluationService(max_workers=1, query_deadline_ms=40.0) as svc:
            run_id = svc.register_vfl_log(vfl_result.log)
            policy = ChaosPolicy(latency_prob=1.0, latency_ms=150.0)
            inject_chaos(svc, run_id, policy)
            with pytest.raises(DeadlineExceeded):
                svc.query("weights", run_id)
            # Let the abandoned worker finish and cache its value.
            for _ in range(400):
                if svc.admission.stats()["in_flight"] == 0:
                    break
                threading.Event().wait(0.005)
            policy.disarm()
            payload = svc.query("weights", run_id)
            assert payload["stale"] is False


class TestLoadShedding:
    def test_saturated_pool_sheds_with_retry_hint(self, vfl_result):
        release = threading.Event()
        svc = EvaluationService(max_workers=1, admission_limit=1)
        try:
            run_id = svc.register_vfl_log(vfl_result.log)
            svc.ingest(run_id, vfl_result.log.records[0])  # fresh digest
            inject_chaos(
                svc, run_id,
                ChaosPolicy(
                    latency_prob=1.0, latency_ms=1.0,
                    sleep=lambda _s: release.wait(timeout=60),
                ),
            )
            blocker = threading.Thread(
                target=lambda: svc.query("contributions", run_id)
            )
            blocker.start()
            for _ in range(2000):
                if svc.admission.depth.value >= 1:
                    break
                threading.Event().wait(0.005)
            with pytest.raises(ServiceOverloaded) as excinfo:
                svc.query("contributions", run_id)
            assert excinfo.value.retry_after_s >= 1.0
            assert svc.admission.shed == 1
            release.set()
            blocker.join(timeout=60)
            assert not blocker.is_alive()
            # Capacity freed: the same query is admitted again.
            assert svc.query("contributions", run_id)["stale"] is False
        finally:
            release.set()
            svc.close()


class TestBreakerProbeRelease:
    def test_caller_error_during_probe_does_not_wedge_the_breaker(
        self, vfl_result
    ):
        """A bad-argument query admitted as the half-open probe must free
        the probe slot: it says nothing about the estimator's health, and
        holding the slot would refuse every future compute forever."""
        with EvaluationService(breaker_failures=1, breaker_reset_s=0.0) as svc:
            run_id = svc.register_vfl_log(vfl_result.log)
            policy = ChaosPolicy(error_prob=1.0)
            inject_chaos(svc, run_id, policy)
            with pytest.raises(QueryFailed):
                svc.weights(run_id)  # trips the breaker (no stale yet)
            policy.disarm()
            # reset_s=0: immediately half-open.  The probe slot goes to a
            # caller error (invalid scheme reaching the estimator)...
            with pytest.raises(ValueError, match="scheme"):
                svc.weights(run_id, scheme="not-a-scheme")
            # ...and must be released: the next valid query probes,
            # succeeds, and closes the breaker.
            assert svc.weights(run_id)["stale"] is False
            assert svc.health()["status"] == "ok"


class TestClose:
    def test_close_is_idempotent(self, vfl_result):
        svc = EvaluationService()
        svc.register_vfl_log(vfl_result.log)
        svc.close()
        svc.close()  # second close is a no-op, not an error
        assert svc.closed

    def test_everything_fails_fast_after_close(self, vfl_result):
        svc = EvaluationService()
        run_id = svc.register_vfl_log(vfl_result.log)
        record = vfl_result.log.records[0]
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.contributions(run_id)
        with pytest.raises(ServiceClosed):
            svc.query("leaderboard", run_id)
        with pytest.raises(ServiceClosed):
            svc.ingest(run_id, record)
        with pytest.raises(ServiceClosed):
            svc.submit("leaderboard", run_id)
        with pytest.raises(ServiceClosed):
            svc.register_vfl_log(vfl_result.log, run_id="late")
        assert svc.health()["status"] == "closed"

    def test_publisher_outliving_service_dead_letters_immediately(
        self, vfl_result
    ):
        """The race satellite: no retry storm against a closed service."""
        sleeps = []
        svc = EvaluationService()
        run_id = svc.register_vfl(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        publisher = svc.publisher(run_id, sleep=sleeps.append)
        svc.close()
        detail = publisher.publish(vfl_result.log.records[0])
        assert detail["dead_letter"] is True
        assert detail["attempts"] == 1
        assert "ServiceClosed" in detail["error"]
        assert sleeps == []  # closed is permanent: no backoff attempted

    def test_concurrent_query_close_race_has_no_bare_errors(self, vfl_result):
        """Queries racing a close land on a payload or ServiceClosed —
        never on RuntimeError from the dying pool."""
        unexpected = []
        for _ in range(5):  # several rounds to actually hit the window
            svc = EvaluationService(max_workers=2)
            run_id = svc.register_vfl_log(vfl_result.log)
            svc.query("contributions", run_id)  # warm
            start = threading.Barrier(4)

            def hammer():
                start.wait()
                for _ in range(50):
                    try:
                        svc.query("contributions", run_id)
                    except ServiceClosed:
                        return
                    except Exception as exc:  # pragma: no cover
                        unexpected.append(exc)
                        return

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            start.wait()
            svc.close()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()
        assert not unexpected, unexpected

    def test_concurrent_register_ingest_close_race(self, vfl_result):
        """Registration and ingestion racing a close: every outcome is a
        success or ServiceClosed, and successful ingests stay consistent."""
        unexpected = []
        svc = EvaluationService(max_workers=2)
        base = svc.register_vfl_log(vfl_result.log, run_id="base")
        start = threading.Barrier(3)

        def register_loop():
            start.wait()
            for i in range(40):
                try:
                    svc.register_vfl(
                        vfl_result.log.feature_blocks,
                        vfl_result.log.active_parties,
                        run_id=f"race-{i}",
                    )
                except ServiceClosed:
                    return
                except Exception as exc:  # pragma: no cover
                    unexpected.append(exc)
                    return

        def ingest_loop():
            start.wait()
            for record in vfl_result.log.records * 3:
                try:
                    svc.ingest_log(base, vfl_result.log)
                except ServiceClosed:
                    return
                except Exception as exc:  # pragma: no cover
                    unexpected.append(exc)
                    return

        threads = [
            threading.Thread(target=register_loop),
            threading.Thread(target=ingest_loop),
        ]
        for thread in threads:
            thread.start()
        start.wait()
        svc.close()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not unexpected, unexpected


class TestPublisherRetries:
    def _registered(self, vfl_result):
        svc = EvaluationService()
        run_id = svc.register_vfl(
            vfl_result.log.feature_blocks, vfl_result.log.active_parties
        )
        return svc, run_id

    def test_transient_failures_are_retried_through(self, vfl_result):
        from repro.serve import FlakyProxy

        svc, run_id = self._registered(vfl_result)
        with svc:
            sleeps = []
            flaky = FlakyProxy(svc, failures=2)
            publisher = ContributionPublisher(
                flaky, run_id, max_retries=4, sleep=sleeps.append
            )
            detail = publisher.publish(vfl_result.log.records[0])
            assert detail["epochs"] == 1
            assert "dead_letter" not in detail
            assert publisher.retries == 2
            assert len(sleeps) == 2
            assert publisher.dead_letters == []

    def test_retries_never_double_ingest(self, vfl_result):
        """Sequence numbering: a failure *after* the ingest landed must
        not ingest the epoch again on retry."""
        from repro.serve import FlakyProxy

        svc, run_id = self._registered(vfl_result)
        with svc:
            flaky = FlakyProxy(svc, failures=1, methods=("leaderboard",))
            publisher = ContributionPublisher(
                flaky, run_id, sleep=lambda _s: None
            )
            detail = publisher.publish(vfl_result.log.records[0])
            assert detail["epochs"] == 1  # not 2: the re-sent seq was a no-op
            batch_row = vfl_result.log.records[0]
            assert svc.contributions(run_id)["epochs"] == 1
            del batch_row

    def test_landed_ingest_with_failed_detail_degrades_not_dead_letters(
        self, vfl_result
    ):
        """The epoch *is* being served: only the follow-up leaderboard
        query died.  There is no gap, so the stream must not be poisoned
        and the detail reports the publish as degraded, not dead."""
        from repro.serve import FlakyProxy

        svc, run_id = self._registered(vfl_result)
        with svc:
            flaky = FlakyProxy(svc, failures=100, methods=("leaderboard",))
            publisher = ContributionPublisher(
                flaky, run_id, max_retries=2, sleep=lambda _s: None
            )
            detail = publisher.publish(vfl_result.log.records[0])
            assert detail["detail_degraded"] is True
            assert "dead_letter" not in detail
            assert detail["epochs"] == 1
            assert publisher.dead_letters == []
            # No gap: the next epoch publishes (and is served) normally.
            later = publisher.publish(vfl_result.log.records[1])
            assert "dead_letter" not in later
            assert later["epochs"] == 2
            assert svc.contributions(run_id)["epochs"] == 2

    def test_exhausted_retries_dead_letter_and_poison_the_stream(
        self, vfl_result
    ):
        from repro.serve import FlakyProxy

        svc, run_id = self._registered(vfl_result)
        with svc:
            flaky = FlakyProxy(svc, failures=100)
            publisher = ContributionPublisher(
                flaky, run_id, max_retries=2, sleep=lambda _s: None
            )
            detail = publisher.publish(vfl_result.log.records[0])
            assert detail["dead_letter"] is True
            assert detail["attempts"] == 3  # 1 try + 2 retries
            assert detail["seq"] == 1
            # The gap poisons the stream: later records are dead-lettered
            # without an attempt rather than spliced in out of order.
            later = publisher.publish(vfl_result.log.records[1])
            assert later["dead_letter"] is True
            assert later["attempts"] == 0
            assert "gap" in later["error"]
            assert publisher.dead_letters == [detail, later]
            # The remedy: an ingest_log replay backfills the whole gap.
            assert svc.ingest_log(run_id, vfl_result.log) == (
                vfl_result.log.n_epochs
            )

    def test_out_of_order_seq_is_rejected(self, vfl_result):
        svc, run_id = self._registered(vfl_result)
        with svc:
            with pytest.raises(ValueError, match="out-of-order"):
                svc.ingest(run_id, vfl_result.log.records[0], seq=5)


class TestBackoff:
    def test_first_attempt_is_immediate(self):
        backoff = Backoff(0.5, 30.0, clock=FakeClock())
        assert backoff.ready()
        assert backoff.remaining_s() == 0.0
        assert backoff.attempts == 0

    def test_delays_double_up_to_the_cap_with_bounded_jitter(self):
        clock = FakeClock()
        backoff = Backoff(1.0, 8.0, seed=3, clock=clock)
        delays = [backoff.record_failure() for _ in range(6)]
        for nominal, delay in zip([1.0, 2.0, 4.0, 8.0, 8.0, 8.0], delays):
            assert 0.5 * nominal <= delay < 1.5 * nominal
        assert backoff.attempts == 6

    def test_ready_flips_exactly_at_the_armed_deadline(self):
        clock = FakeClock()
        backoff = Backoff(1.0, 30.0, seed=0, clock=clock)
        delay = backoff.record_failure()
        assert not backoff.ready()
        assert backoff.remaining_s() == pytest.approx(delay)
        clock.advance(delay / 2)
        assert not backoff.ready()
        clock.advance(delay / 2)
        assert backoff.ready()
        assert backoff.remaining_s() == 0.0

    def test_reset_restarts_the_schedule_at_base(self):
        clock = FakeClock()
        backoff = Backoff(1.0, 30.0, seed=0, clock=clock)
        for _ in range(5):
            backoff.record_failure()
        backoff.reset()
        assert backoff.attempts == 0
        assert backoff.ready()
        # The next failure arms a base-scale delay again, not 16s.
        assert backoff.record_failure() < 1.5 * 1.0

    def test_same_seed_same_schedule(self):
        a = Backoff(0.5, 30.0, seed=42, clock=FakeClock())
        b = Backoff(0.5, 30.0, seed=42, clock=FakeClock())
        assert [a.record_failure() for _ in range(4)] == [
            b.record_failure() for _ in range(4)
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="base_s"):
            Backoff(0.0, 1.0)
        with pytest.raises(ValueError, match="base_s"):
            Backoff(2.0, 1.0)


class TestHealthAndStats:
    def test_stats_report_admission_and_breakers(self, vfl_service):
        svc, run_id = vfl_service
        svc.query("contributions", run_id)
        stats = svc.stats()
        assert stats["closed"] is False
        assert stats["admission"]["shed"] == 0
        assert stats["breakers"] == {}  # nothing tripped: not reported
        assert svc.health() == {
            "status": "ok",
            "runs": 1,
            "degraded_runs": [],
        }
