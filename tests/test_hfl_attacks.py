"""Tests for update-level adversaries and DIG-FL's response to them."""

import numpy as np
import pytest

from repro.core import DIGFLReweighter, estimate_hfl_resource_saving, flag_low_quality
from repro.hfl import (
    AdversarialHFLTrainer,
    gaussian_noise,
    random_update,
    scale,
    sign_flip,
    zero_update,
)
from repro.nn import LRSchedule

from tests.conftest import small_model_factory


@pytest.fixture(scope="module")
def clean_federation():
    from repro.data import build_hfl_federation, mnist_like

    return build_hfl_federation(mnist_like(1000, seed=10), 5, seed=10)


def train_with(fed, attacks, epochs=8, reweighter=None):
    trainer = AdversarialHFLTrainer(
        small_model_factory, epochs, LRSchedule(0.5), attacks=attacks
    )
    return trainer.train(
        fed.locals,
        fed.validation,
        reweighter=reweighter,
        track_validation=True,
    )


class TestTransforms:
    def test_sign_flip(self):
        update = np.array([1.0, -2.0])
        np.testing.assert_allclose(sign_flip(2.0)(update, 1), [-2.0, 4.0])

    def test_scale(self):
        np.testing.assert_allclose(scale(0.5)(np.array([4.0]), 1), [2.0])

    def test_zero(self):
        np.testing.assert_allclose(zero_update()(np.ones(3), 1), 0.0)

    def test_gaussian_noise_seeded(self):
        attack = gaussian_noise(0.1, seed=1)
        a = attack(np.zeros(4), epoch=2)
        b = gaussian_noise(0.1, seed=1)(np.zeros(4), epoch=2)
        np.testing.assert_array_equal(a, b)

    def test_gaussian_noise_varies_by_epoch(self):
        attack = gaussian_noise(0.1, seed=1)
        assert not np.allclose(attack(np.zeros(4), 1), attack(np.zeros(4), 2))

    def test_random_update_ignores_input(self):
        attack = random_update(1.0, seed=0)
        a = attack(np.ones(4), 1)
        b = attack(np.full(4, 100.0), 1)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            sign_flip(0.0)
        with pytest.raises(ValueError):
            gaussian_noise(-1.0)
        with pytest.raises(ValueError):
            random_update(0.0)


class TestAdversarialTrainer:
    def test_no_attacks_equals_plain(self, clean_federation):
        from repro.hfl import HFLTrainer

        plain = HFLTrainer(small_model_factory, 3, LRSchedule(0.5))
        adversarial = AdversarialHFLTrainer(
            small_model_factory, 3, LRSchedule(0.5), attacks={}
        )
        a = plain.train(clean_federation.locals, clean_federation.validation)
        b = adversarial.train(clean_federation.locals, clean_federation.validation)
        np.testing.assert_allclose(a.model.get_flat(), b.model.get_flat(), atol=1e-12)

    def test_attack_visible_in_log(self, clean_federation):
        result = train_with(clean_federation, {0: zero_update()}, epochs=2)
        record = result.log.records[0]
        np.testing.assert_allclose(record.local_updates[0], 0.0)
        assert not np.allclose(record.local_updates[1], 0.0)

    def test_shape_changing_attack_rejected(self, clean_federation):
        bad = lambda update, epoch: update[:3]
        trainer = AdversarialHFLTrainer(
            small_model_factory, 1, LRSchedule(0.5), attacks={0: bad}
        )
        with pytest.raises(ValueError, match="shape"):
            trainer.train(clean_federation.locals, clean_federation.validation)

    def test_sign_flip_hurts_accuracy(self, clean_federation):
        honest = train_with(clean_federation, {})
        attacked = train_with(
            clean_federation, {i: sign_flip(1.0) for i in range(2)}
        )
        assert (
            attacked.log.records[-1].val_accuracy
            < honest.log.records[-1].val_accuracy
        )


class TestDIGFLDetectsAttacks:
    def test_sign_flipper_has_lowest_contribution(self, clean_federation):
        result = train_with(clean_federation, {2: sign_flip(1.0)})
        report = estimate_hfl_resource_saving(
            result.log, clean_federation.validation, small_model_factory
        )
        assert int(np.argmin(report.totals)) == 2

    def test_random_updater_contribution_is_noise(self, clean_federation):
        """A pure-noise uploader's per-epoch contributions are zero-mean:
        they flip sign across epochs, unlike honest participants whose
        contributions stay predominantly positive."""
        result = train_with(
            clean_federation, {2: random_update(1.0, seed=3)}, epochs=12
        )
        report = estimate_hfl_resource_saving(
            result.log, clean_federation.validation, small_model_factory
        )
        attacker_signs = np.sign(report.per_epoch[:, 2])
        assert (attacker_signs > 0).any() and (attacker_signs < 0).any()
        honest_positive = (report.per_epoch[:, [0, 1, 3, 4]] > 0).mean()
        assert honest_positive > 0.9

    def test_attacker_flagged_as_outlier(self, clean_federation):
        result = train_with(clean_federation, {1: sign_flip(1.0)})
        report = estimate_hfl_resource_saving(
            result.log, clean_federation.validation, small_model_factory
        )
        assert flag_low_quality(report, threshold=1.5) == [1]

    def test_free_rider_contribution_near_zero(self, clean_federation):
        result = train_with(clean_federation, {3: zero_update()})
        report = estimate_hfl_resource_saving(
            result.log, clean_federation.validation, small_model_factory
        )
        assert abs(report.totals[3]) < 1e-12

    def test_reweighting_neutralises_sign_flip(self, clean_federation):
        attacks = {0: sign_flip(1.0), 1: sign_flip(1.0)}
        plain = train_with(clean_federation, attacks)
        defended = train_with(
            clean_federation,
            attacks,
            reweighter=DIGFLReweighter(clean_federation.validation),
        )
        assert (
            defended.log.records[-1].val_accuracy
            > plain.log.records[-1].val_accuracy + 0.05
        )
