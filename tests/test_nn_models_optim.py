"""Tests for model factories and optimisers."""

import numpy as np
import pytest

from repro.autodiff import backward
from repro.nn import (
    LRSchedule,
    SGD,
    make_cnn_classifier,
    make_hfl_model,
    make_mlp_classifier,
)


def _toy_problem(seed=0, n=150, d=10, classes=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    W = rng.normal(size=(d, classes))
    y = np.argmax(X @ W, axis=1)
    return X, y


class TestMLPFactory:
    def test_output_shape(self):
        m = make_mlp_classifier(10, 3, hidden=(8,), seed=0)
        from repro.autodiff import Tensor

        assert m(Tensor(np.zeros((4, 10)))).shape == (4, 3)

    def test_flattens_images(self):
        m = make_mlp_classifier(100, 10, seed=0)
        from repro.autodiff import Tensor

        assert m(Tensor(np.zeros((2, 1, 10, 10)))).shape == (2, 10)

    def test_relu_option(self):
        m = make_mlp_classifier(4, 2, activation="relu", seed=0)
        assert m.num_parameters() > 0

    def test_bad_activation(self):
        with pytest.raises(KeyError):
            make_mlp_classifier(4, 2, activation="gelu", seed=0)

    def test_training_reduces_loss(self):
        X, y = _toy_problem()
        m = make_mlp_classifier(10, 3, hidden=(16,), seed=0)
        opt = SGD(m.parameters(), lr=0.5)
        initial = m.loss(X, y).item()
        for _ in range(40):
            opt.zero_grad()
            backward(m.loss(X, y))
            opt.step()
        assert m.loss(X, y).item() < initial * 0.5
        assert m.accuracy(X, y) > 0.8

    def test_predict_shape(self):
        X, y = _toy_problem()
        m = make_mlp_classifier(10, 3, seed=0)
        assert m.predict(X).shape == y.shape


class TestCNNFactory:
    def test_output_shape(self):
        m = make_cnn_classifier((1, 6, 6), 4, channels=2, seed=0)
        from repro.autodiff import Tensor

        assert m(Tensor(np.zeros((3, 1, 6, 6)))).shape == (3, 4)

    def test_odd_conv_output_rejected(self):
        with pytest.raises(ValueError, match="odd conv output"):
            make_cnn_classifier((1, 5, 5), 2, seed=0)

    def test_loss_differentiable(self):
        m = make_cnn_classifier((1, 6, 6), 2, channels=2, seed=0)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(4, 1, 6, 6))
        y = rng.integers(0, 2, size=4)
        backward(m.loss(X, y))
        assert all(p.grad is not None for p in m.parameters())


class TestHFLModelRegistry:
    @pytest.mark.parametrize("name", ["mnist", "cifar10", "motor", "real"])
    def test_known_models(self, name):
        m = make_hfl_model(name, seed=0)
        assert m.num_parameters() > 0

    def test_cnn_arch(self):
        m = make_hfl_model("mnist", arch="cnn", seed=0)
        assert m.num_parameters() > 0

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown HFL dataset"):
            make_hfl_model("imagenet")

    def test_unknown_arch(self):
        with pytest.raises(ValueError, match="arch"):
            make_hfl_model("mnist", arch="transformer")

    def test_motor_is_binary(self):
        assert make_hfl_model("motor", seed=0).num_classes == 2


class TestSGD:
    def test_plain_step(self):
        from repro.autodiff import Tensor

        p = Tensor(np.array([1.0]), requires_grad=True)
        p.grad = Tensor(np.array([0.5]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        from repro.autodiff import Tensor

        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = Tensor(np.array([1.0]))
        opt.step()  # v=1, p=-1
        p.grad = Tensor(np.array([1.0]))
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_none_grad_skipped(self):
        from repro.autodiff import Tensor

        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)

    def test_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1, momentum=1.0)


class TestLRSchedule:
    def test_constant(self):
        sched = LRSchedule(0.3)
        assert sched.lr_at(1) == sched.lr_at(50) == 0.3

    def test_decay(self):
        sched = LRSchedule(1.0, decay=0.5)
        assert sched.lr_at(1) == 1.0
        assert sched.lr_at(3) == pytest.approx(0.25)

    def test_epoch_one_indexed(self):
        with pytest.raises(ValueError, match="1-indexed"):
            LRSchedule(0.1).lr_at(0)

    def test_bad_base_lr(self):
        with pytest.raises(ValueError):
            LRSchedule(-1.0)

    def test_bad_decay(self):
        with pytest.raises(ValueError):
            LRSchedule(0.1, decay=0.0)
