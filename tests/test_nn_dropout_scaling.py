"""Tests for Dropout and the scalability experiment helpers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, backward, grad, tsum
from repro.nn import Dropout


class TestDropout:
    def test_eval_is_identity(self):
        layer = Dropout(0.5, seed=0).eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_zero_probability_is_identity(self):
        layer = Dropout(0.0, seed=0)
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_training_masks_and_rescales(self):
        layer = Dropout(0.5, seed=0)
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling 1/(1-p)
        assert 0.3 < (out != 0).mean() < 0.7

    def test_expected_value_preserved(self):
        layer = Dropout(0.3, seed=1)
        x = Tensor(np.ones(200_00))
        out = layer(x).data
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_gradient_flows_through_mask(self):
        layer = Dropout(0.5, seed=2)
        x = Tensor(np.ones(50), requires_grad=True)
        out = layer(x)
        (g,) = grad(tsum(out), [x])
        # Gradient equals the mask itself (0 or 1/keep).
        np.testing.assert_array_equal(g.data, out.data)

    def test_train_eval_toggle(self):
        layer = Dropout(0.5, seed=3)
        assert layer.training
        assert not layer.eval().training
        assert layer.train().training

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_usable_in_sequential(self):
        from repro.nn import Linear, Sequential

        model = Sequential(Linear(4, 8, seed=0), Dropout(0.2, seed=0), Linear(8, 2, seed=1))
        x = Tensor(np.ones((5, 4)))
        backward(tsum(model(x)))
        assert all(p.grad is not None for p in model.parameters())


class TestScalabilityExperiments:
    def test_participant_scaling_shape(self):
        from repro.experiments import run_participant_scaling

        report = run_participant_scaling(party_counts=(3, 5), epochs=3)
        assert len(report.rows) == 2
        r3, r5 = report.rows
        assert r3.metrics["retrainings"] == 8
        assert r5.metrics["retrainings"] == 32
        # Exponential ground-truth cost grows much faster than DIG-FL's.
        exact_growth = r5.metrics["t_exact_s"] / max(r3.metrics["t_exact_s"], 1e-9)
        digfl_growth = r5.metrics["t_digfl_s"] / max(r3.metrics["t_digfl_s"], 1e-9)
        assert exact_growth > digfl_growth

    def test_model_size_scaling_shape(self):
        from repro.experiments import run_model_size_scaling

        report = run_model_size_scaling(hidden_sizes=(8, 32), epochs=3)
        params = [row.labels["params"] for row in report.rows]
        assert params[1] > params[0]
