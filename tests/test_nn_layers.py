"""Layer tests: shapes, gradchecks vs finite differences, error paths."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, tsum
from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sigmoid, Tanh

RNG = np.random.default_rng(99)


def layer_gradcheck(layer, x: np.ndarray, atol=1e-5):
    """Check input and parameter gradients of ``sum(layer(x)**2)``.

    The loss is recomputed from scratch for every finite-difference probe,
    perturbing either the input array or a parameter's data in place.
    """

    def loss_value() -> float:
        return tsum(layer(Tensor(x)) ** 2.0).item()

    leaf = Tensor(x, requires_grad=True)
    loss = tsum(layer(leaf) ** 2.0)
    inputs = [leaf, *layer.parameters()]
    grads = grad(loss, inputs, allow_unused=True)

    eps = 1e-6
    for tensor, g in zip(inputs, grads):
        flat = tensor.data.ravel()  # views x itself for the leaf tensor
        idx = RNG.choice(flat.size, size=min(5, flat.size), replace=False)
        for i in idx:
            orig = flat[i]
            flat[i] = orig + eps
            up = loss_value()
            flat[i] = orig - eps
            down = loss_value()
            flat[i] = orig
            numeric = (up - down) / (2 * eps)
            assert g.data.ravel()[i] == pytest.approx(numeric, abs=atol, rel=1e-3)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, seed=0)
        assert layer(Tensor(RNG.normal(size=(7, 5)))).shape == (7, 3)

    def test_affine_formula(self):
        layer = Linear(4, 2, seed=0)
        x = RNG.normal(size=(3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, atol=1e-12)

    def test_bias_initialised_zero(self):
        np.testing.assert_allclose(Linear(3, 3, seed=0).bias.data, 0.0)

    def test_glorot_scale(self):
        layer = Linear(100, 100, seed=0)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound

    def test_seeded_determinism(self):
        a = Linear(4, 4, seed=5).weight.data
        b = Linear(4, 4, seed=5).weight.data
        np.testing.assert_array_equal(a, b)

    def test_gradcheck(self):
        layer_gradcheck(Linear(4, 3, seed=1), RNG.normal(size=(5, 4)))


class TestActivationsAndFlatten:
    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid])
    def test_shape_preserved(self, cls):
        layer = cls()
        x = Tensor(RNG.normal(size=(3, 4)))
        assert layer(x).shape == (3, 4)

    def test_flatten(self):
        out = Flatten()(Tensor(RNG.normal(size=(2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_flatten_gradcheck(self):
        layer_gradcheck(Flatten(), RNG.normal(size=(2, 3, 2)))


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(2, 4, kernel_size=3, seed=0)
        out = conv(Tensor(RNG.normal(size=(5, 2, 8, 8))))
        assert out.shape == (5, 4, 6, 6)

    def test_stride(self):
        conv = Conv2d(1, 1, kernel_size=2, stride=2, seed=0)
        out = conv(Tensor(RNG.normal(size=(1, 1, 6, 6))))
        assert out.shape == (1, 1, 3, 3)

    def test_matches_naive_convolution(self):
        conv = Conv2d(2, 3, kernel_size=3, seed=0)
        x = RNG.normal(size=(2, 2, 5, 5))
        out = conv(Tensor(x)).data
        # Naive direct convolution for reference.
        w = conv.weight.data  # (fan_in, out_c)
        for b in range(2):
            for oc in range(3):
                for i in range(3):
                    for j in range(3):
                        patch = x[b, :, i : i + 3, j : j + 3].ravel()
                        ref = patch @ w[:, oc] + conv.bias.data[oc]
                        assert out[b, oc, i, j] == pytest.approx(ref, abs=1e-10)

    def test_wrong_channels_raises(self):
        conv = Conv2d(3, 1, kernel_size=3, seed=0)
        with pytest.raises(ValueError, match="expected"):
            conv(Tensor(RNG.normal(size=(1, 2, 6, 6))))

    def test_gradcheck(self):
        layer_gradcheck(Conv2d(1, 2, kernel_size=2, seed=2), RNG.normal(size=(2, 1, 4, 4)))

    def test_index_cache_reused(self):
        conv = Conv2d(1, 1, kernel_size=2, seed=0)
        conv(Tensor(RNG.normal(size=(1, 1, 4, 4))))
        conv(Tensor(RNG.normal(size=(1, 1, 4, 4))))
        assert len(conv._index_cache) == 1


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(Tensor(x))
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_gradient_goes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        (g,) = grad(tsum(MaxPool2d(2)(x)), [x])
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(g.data[0, 0], expected)

    def test_avgpool_values(self):
        x = np.ones((1, 2, 4, 4))
        out = AvgPool2d(2)(Tensor(x))
        np.testing.assert_allclose(out.data, 1.0)
        assert out.shape == (1, 2, 2, 2)

    def test_avgpool_gradcheck(self):
        layer_gradcheck(AvgPool2d(2), RNG.normal(size=(1, 1, 4, 4)))

    @pytest.mark.parametrize("cls", [MaxPool2d, AvgPool2d])
    def test_indivisible_raises(self, cls):
        with pytest.raises(ValueError, match="not divisible"):
            cls(3)(Tensor(RNG.normal(size=(1, 1, 4, 4))))
