"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset, mnist_like


def _tabular(n=50, d=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        name="t", X=rng.normal(size=(n, d)), y=rng.normal(size=n), task="regression"
    )


class TestConstruction:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            Dataset(name="b", X=np.zeros((3, 2)), y=np.zeros(4), task="regression")

    def test_classification_needs_classes(self):
        with pytest.raises(ValueError, match="num_classes"):
            Dataset(name="b", X=np.zeros((3, 2)), y=np.zeros(3, dtype=int), task="binary")

    def test_len(self):
        assert len(_tabular(17)) == 17

    def test_n_features_tabular(self):
        assert _tabular(d=6).n_features == 6

    def test_n_features_images(self):
        ds = mnist_like(10, seed=0)
        assert ds.n_features == 100


class TestSubset:
    def test_selects_rows(self):
        ds = _tabular()
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.X, ds.X[[1, 3, 5]])

    def test_copies(self):
        ds = _tabular()
        sub = ds.subset(np.array([0]))
        sub.X[0, 0] = 999
        assert ds.X[0, 0] != 999

    def test_rename(self):
        assert _tabular().subset(np.array([0]), name="new").name == "new"


class TestFeatureSlice:
    def test_selects_columns(self):
        ds = _tabular(d=5)
        sliced = ds.feature_slice(np.array([0, 2]))
        np.testing.assert_array_equal(sliced.X, ds.X[:, [0, 2]])

    def test_rejects_images(self):
        with pytest.raises(ValueError, match="tabular"):
            mnist_like(10, seed=0).feature_slice(np.array([0]))


class TestValidationSplit:
    def test_sizes(self):
        train, val = _tabular(100).validation_split(0.1, seed=0)
        assert len(val) == 10
        assert len(train) == 90

    def test_disjoint_and_complete(self):
        ds = _tabular(60)
        ds = Dataset(name="t", X=np.arange(60.0).reshape(60, 1), y=np.zeros(60), task="regression")
        train, val = ds.validation_split(0.25, seed=1)
        combined = np.sort(np.concatenate([train.X.ravel(), val.X.ravel()]))
        np.testing.assert_array_equal(combined, np.arange(60.0))

    def test_deterministic(self):
        a = _tabular().validation_split(0.2, seed=5)[1].X
        b = _tabular().validation_split(0.2, seed=5)[1].X
        np.testing.assert_array_equal(a, b)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            _tabular().validation_split(0.0)
        with pytest.raises(ValueError):
            _tabular().validation_split(1.0)

    def test_at_least_one_validation_row(self):
        _, val = _tabular(20).validation_split(0.01, seed=0)
        assert len(val) >= 1


class TestStandardized:
    def test_zero_mean_unit_std(self):
        std = _tabular(200).standardized()
        np.testing.assert_allclose(std.X.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(std.X.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_safe(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        ds = Dataset(name="c", X=X, y=np.zeros(10), task="regression")
        std = ds.standardized()
        assert np.all(np.isfinite(std.X))

    def test_rejects_images(self):
        with pytest.raises(ValueError, match="tabular"):
            mnist_like(10, seed=0).standardized()
