"""Tests for the functional grad API, double-backward and HVPs."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    backward,
    grad,
    hvp,
    mul,
    tsum,
    value_and_grad,
)


class TestGradAPI:
    def test_scalar_output(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (g,) = grad(tsum(mul(x, x)), [x])
        np.testing.assert_allclose(g.data, 2 * x.data)

    def test_nonscalar_output_defaults_to_ones_seed(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (g,) = grad(mul(x, x), [x])
        np.testing.assert_allclose(g.data, 2 * x.data)

    def test_explicit_grad_output(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        seed = Tensor(np.array([10.0, 0.1]))
        (g,) = grad(mul(x, x), [x], grad_output=seed)
        np.testing.assert_allclose(g.data, 2 * x.data * seed.data)

    def test_grad_output_shape_mismatch(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="grad_output shape"):
            grad(mul(x, x), [x], grad_output=Tensor(np.ones(2)))

    def test_unreachable_input_raises(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError, match="not reachable"):
            grad(tsum(x), [y])

    def test_allow_unused_gives_zeros(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = Tensor(np.ones(3), requires_grad=True)
        _, gy = grad(tsum(x), [x, y], allow_unused=True)
        np.testing.assert_allclose(gy.data, np.zeros(3))

    def test_non_grad_output_raises(self):
        x = Tensor(np.ones(2))
        with pytest.raises(ValueError, match="does not require grad"):
            grad(tsum(x), [x])

    def test_non_tensor_output_raises(self):
        with pytest.raises(TypeError):
            grad(np.ones(3), [Tensor(np.ones(3), requires_grad=True)])

    def test_fanout_accumulates(self):
        """A tensor consumed twice receives the sum of both adjoints."""
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2.0
        z = y + y  # y used twice
        (g,) = grad(tsum(z), [x])
        np.testing.assert_allclose(g.data, [4.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        (g,) = grad(tsum(a + b), [x])
        np.testing.assert_allclose(g.data, [8.0])

    def test_grad_of_intermediate(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y * y
        (gy,) = grad(tsum(z), [y])
        np.testing.assert_allclose(gy.data, [12.0])

    def test_deep_chain_iterative_toposort(self):
        """1000-op chain must not hit Python's recursion limit."""
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(1000):
            y = y + 0.001
        (g,) = grad(tsum(y), [x])
        np.testing.assert_allclose(g.data, [1.0])


class TestBackward:
    def test_populates_leaf_grads(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        backward(tsum(mul(x, x)))
        np.testing.assert_allclose(x.grad.data, 2 * x.data)

    def test_accumulates_across_calls(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        backward(tsum(x * 2.0))
        backward(tsum(x * 3.0))
        np.testing.assert_allclose(x.grad.data, [5.0])


class TestValueAndGrad:
    def test_returns_both(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        value, (g,) = value_and_grad(lambda ps: tsum(mul(ps[0], ps[0])), [x])
        assert value == pytest.approx(9.0)
        np.testing.assert_allclose(g.data, [6.0])


class TestDoubleBackward:
    def test_grad_of_grad_scalar(self):
        """d²/dx² of x³ is 6x."""
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x * x
        (g1,) = grad(tsum(y), [x], create_graph=True)
        (g2,) = grad(tsum(g1), [x])
        np.testing.assert_allclose(g2.data, [12.0])

    def test_third_derivative(self):
        """d³/dx³ of x³ is 6."""
        x = Tensor(np.array([5.0]), requires_grad=True)
        y = x * x * x
        (g1,) = grad(tsum(y), [x], create_graph=True)
        (g2,) = grad(tsum(g1), [x], create_graph=True)
        (g3,) = grad(tsum(g2), [x])
        np.testing.assert_allclose(g3.data, [6.0])

    def test_without_create_graph_grads_are_leaves(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (g,) = grad(tsum(x * x), [x])
        assert not g.requires_grad


class TestHVP:
    def _quadratic(self, A):
        """f(x) = 0.5 xᵀAx has Hessian exactly A."""

        def loss_fn(params):
            (x,) = params
            Ax = Tensor(A) @ x
            return tsum(mul(x, Ax)) * 0.5

        return loss_fn

    def test_quadratic_hessian(self):
        rng = np.random.default_rng(0)
        M = rng.normal(size=(4, 4))
        A = M + M.T  # symmetric
        x = Tensor(rng.normal(size=4), requires_grad=True)
        v = Tensor(rng.normal(size=4))
        (hv,) = hvp(self._quadratic(A), [x], [v])
        np.testing.assert_allclose(hv.data, A @ v.data, atol=1e-10)

    def test_hvp_linear_in_v(self):
        rng = np.random.default_rng(1)
        M = rng.normal(size=(3, 3))
        A = M + M.T
        x = Tensor(rng.normal(size=3), requires_grad=True)
        v1 = rng.normal(size=3)
        v2 = rng.normal(size=3)
        (h1,) = hvp(self._quadratic(A), [x], [Tensor(v1)])
        (h2,) = hvp(self._quadratic(A), [x], [Tensor(v2)])
        (h12,) = hvp(self._quadratic(A), [x], [Tensor(v1 + v2)])
        np.testing.assert_allclose(h12.data, h1.data + h2.data, atol=1e-10)

    def test_hvp_matches_finite_difference_on_nonquadratic(self):
        rng = np.random.default_rng(2)
        W = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        X = Tensor(rng.normal(size=(6, 3)))

        def loss_fn(params):
            from repro.autodiff import tanh

            (w,) = params
            return tsum(mul(tanh(X @ w), tanh(X @ w)))

        v = rng.normal(size=(3, 2))
        (hv,) = hvp(loss_fn, [W], [Tensor(v)])

        eps = 1e-6
        Wp = Tensor(W.data + eps * v, requires_grad=True)
        Wm = Tensor(W.data - eps * v, requires_grad=True)
        gp = grad(loss_fn([Wp]), [Wp])[0].data
        gm = grad(loss_fn([Wm]), [Wm])[0].data
        np.testing.assert_allclose(hv.data, (gp - gm) / (2 * eps), atol=1e-5)

    def test_multi_param_hvp(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=2), requires_grad=True)
        b = Tensor(rng.normal(size=2), requires_grad=True)

        def loss_fn(params):
            pa, pb = params
            return tsum(mul(pa, pa)) * 0.5 + tsum(mul(pa, pb)) + tsum(mul(pb, pb))

        va, vb = rng.normal(size=2), rng.normal(size=2)
        ha, hb = hvp(loss_fn, [a, b], [Tensor(va), Tensor(vb)])
        # H = [[I, I], [I, 2I]]
        np.testing.assert_allclose(ha.data, va + vb, atol=1e-10)
        np.testing.assert_allclose(hb.data, va + 2 * vb, atol=1e-10)

    def test_length_mismatch(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError, match="equal length"):
            hvp(lambda ps: tsum(ps[0]), [x], [])
