"""The pre-aggregation screening pass and its quarantine ledger."""

import numpy as np
import pytest

from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule
from repro.robust import (
    QuarantineLedger,
    ScreenConfig,
    UpdateScreener,
    rms_norm,
)
from repro.robust.quarantine import RULE_COSINE, RULE_NONFINITE, RULE_NORM

from tests.conftest import small_model_factory


def _screener(**overrides):
    config = ScreenConfig(**overrides)
    return UpdateScreener(config, QuarantineLedger())


class TestNonFiniteRule:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_quarantines_poisoned_row(self, bad):
        screener = _screener()
        updates = np.ones((4, 6))
        updates[2, 3] = bad
        verdict = screener.screen(1, [0, 1, 2, 3], updates)
        np.testing.assert_array_equal(verdict, [True, True, False, True])
        (incident,) = screener.ledger.incidents
        assert incident.rule == RULE_NONFINITE
        assert incident.party == 2 and incident.round == 1
        assert incident.detail["nonfinite_coordinates"] == 1.0

    def test_disabled_by_config(self):
        screener = _screener(check_nonfinite=False, cosine_threshold=None)
        updates = np.ones((3, 4))
        updates[0, 0] = np.nan
        verdict = screener.screen(1, [0, 1, 2], updates)
        assert verdict.all()


class TestNormRule:
    def test_blowup_against_warmed_scale(self):
        screener = _screener(norm_factor=5.0, cosine_threshold=None)
        screener.observe_norms([1.0, 1.0, 1.0])
        updates = np.ones((3, 4))
        updates[1] *= 100.0
        verdict = screener.screen(3, [10, 11, 12], updates)
        np.testing.assert_array_equal(verdict, [True, False, True])
        (incident,) = screener.ledger.incidents
        assert incident.rule == RULE_NORM and incident.party == 11
        assert incident.detail["factor"] == pytest.approx(100.0)

    def test_cold_start_uses_current_cohort(self):
        """With no history the round's own norms arm the rule — an attacker
        in a big enough first round is still caught."""
        screener = _screener(norm_factor=5.0, cosine_threshold=None)
        updates = np.ones((5, 4))
        updates[4] *= 1000.0
        verdict = screener.screen(1, list(range(5)), updates)
        np.testing.assert_array_equal(verdict, [True] * 4 + [False])

    def test_not_armed_below_min_samples(self):
        screener = _screener(
            norm_factor=5.0, min_scale_samples=3, cosine_threshold=None
        )
        updates = np.stack([np.ones(4), np.full(4, 1000.0)])
        verdict = screener.screen(1, [0, 1], updates)
        assert verdict.all()  # 2 candidate norms < min_scale_samples

    def test_accepted_norms_feed_the_history(self):
        screener = _screener(cosine_threshold=None)
        updates = np.ones((3, 9))
        screener.screen(1, [0, 1, 2], updates)
        assert list(screener._norms) == [rms_norm(np.ones(9))] * 3


class TestCosineRule:
    def test_sign_flip_attacker_caught(self):
        screener = _screener(norm_factor=100.0)
        rng = np.random.default_rng(0)
        honest = 1.0 + rng.normal(scale=0.05, size=(5, 8))
        attacker = -honest.mean(axis=0)  # matches honest norm, flipped sign
        updates = np.vstack([honest, attacker])
        verdict = screener.screen(1, list(range(6)), updates)
        np.testing.assert_array_equal(verdict, [True] * 5 + [False])
        (incident,) = screener.ledger.incidents
        assert incident.rule == RULE_COSINE
        assert incident.detail["cosine"] < -0.5

    def test_disabled_for_heterogeneous_blocks(self):
        """VFL feature blocks have different dimensions — no cohort median."""
        screener = _screener(norm_factor=100.0)
        blocks = [np.ones(3), np.ones(5), -np.ones(4), np.ones(2)]
        verdict = screener.screen(1, [0, 1, 2, 3], blocks, homogeneous=False)
        assert verdict.all()

    def test_skipped_below_min_cohort(self):
        screener = _screener(min_cohort=4)
        updates = np.vstack([np.ones((2, 6)), -np.ones((1, 6))])
        verdict = screener.screen(1, [0, 1, 2], updates)
        assert verdict.all()

    def test_threshold_none_disables(self):
        screener = _screener(cosine_threshold=None)
        updates = np.vstack([np.ones((5, 6)), -np.ones((1, 6))])
        verdict = screener.screen(1, list(range(6)), updates)
        assert verdict.all()


class TestMaskDiscipline:
    def test_screen_only_clears_bits(self):
        screener = _screener()
        updates = np.ones((4, 5))
        updates[0] = 0.0  # the absent row is zero, like the engine writes it
        mask = np.array([False, True, True, True])
        verdict = screener.screen(1, [0, 1, 2, 3], updates, mask)
        assert not verdict[0]  # stayed absent
        assert verdict[1:].all()

    def test_absent_rows_not_screened_or_ledgered(self):
        screener = _screener()
        updates = np.ones((4, 5))
        updates[0] = np.nan  # never arrived; garbage row must be ignored
        mask = np.array([False, True, True, True])
        verdict = screener.screen(1, [0, 1, 2, 3], updates, mask)
        np.testing.assert_array_equal(verdict, mask)
        assert len(screener.ledger) == 0

    def test_party_id_count_mismatch(self):
        with pytest.raises(ValueError, match="party ids"):
            _screener().screen(1, [0, 1], np.ones((3, 4)))


class TestWarmStart:
    def test_resumed_screener_matches_uninterrupted(self):
        """Replaying a checkpointed log rebuilds the identical scale state."""
        federation = build_hfl_federation(mnist_like(300, seed=0), 3, seed=0)
        trainer = HFLTrainer(
            small_model_factory, epochs=4, lr_schedule=LRSchedule(0.5)
        )
        live = UpdateScreener(ScreenConfig())
        result = trainer.train(
            federation.locals, federation.validation, screener=live
        )
        warmed = UpdateScreener(ScreenConfig())
        warmed.warm_start(result.log)
        assert list(warmed._norms) == list(live._norms)

    def test_warm_start_skips_quarantined_rounds(self):
        from repro.hfl.log import EpochRecord, TrainingLog

        log = TrainingLog(participant_ids=[0, 1])
        log.records.append(
            EpochRecord(
                epoch=1,
                lr=0.1,
                theta_before=np.zeros(4),
                local_updates=np.array([np.ones(4), np.zeros(4)]),
                weights=np.array([1.0, 0.0]),
                participation=np.array([True, False]),
            )
        )
        screener = UpdateScreener(ScreenConfig())
        screener.warm_start(log)
        assert list(screener._norms) == [rms_norm(np.ones(4))]


class TestScreenConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ScreenConfig(norm_factor=1.0)
        with pytest.raises(ValueError):
            ScreenConfig(cosine_threshold=-2.0)
        with pytest.raises(ValueError):
            ScreenConfig(min_cohort=1)
        with pytest.raises(ValueError):
            ScreenConfig(history_window=0)


class TestLedger:
    def test_accessors(self):
        ledger = QuarantineLedger()
        ledger.record(1, 4, RULE_NONFINITE, nonfinite_coordinates=2.0)
        ledger.record(2, 4, RULE_NORM, rms_norm=9.0, scale=1.0, factor=9.0)
        ledger.record(2, 1, RULE_COSINE, cosine=-0.9)
        assert ledger.parties() == [1, 4]
        assert ledger.rounds_of(4) == [1, 2]
        assert ledger.by_rule() == {
            RULE_NONFINITE: 1, RULE_NORM: 1, RULE_COSINE: 1
        }
        assert ledger.summary()["incidents"] == 3

    def test_json_roundtrip(self, tmp_path):
        ledger = QuarantineLedger()
        ledger.record(3, 2, RULE_NORM, rms_norm=50.0, scale=1.0, factor=50.0)
        path = tmp_path / "ledger.json"
        ledger.save(path)
        loaded = QuarantineLedger.load(path)
        assert loaded.incidents == ledger.incidents

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something.else", "incidents": []}')
        with pytest.raises(ValueError, match="not a quarantine ledger"):
            QuarantineLedger.load(path)
