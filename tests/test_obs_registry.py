"""Tests for the metrics registry and its Prometheus text renderer."""

import threading

import pytest

from repro.metrics.cost import Gauge, LatencyHistogram
from repro.obs.registry import Counter, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.value == 5

    def test_monotone(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)
        with pytest.raises(ValueError):
            Counter(-3)

    def test_threaded_increments_do_not_lose_counts(self):
        counter = Counter()

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestRegistryCreation:
    def test_get_or_create_shares_one_instrument_per_key(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_hits_total", help="hits")
        b = registry.counter("repro_hits_total")
        assert a is b
        labelled = registry.counter("repro_hits_total", labels={"kind": "warm"})
        assert labelled is not a

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("repro_thing")

    def test_invalid_names_and_labels_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_ok", labels={"bad-label": "x"})

    def test_register_absorbs_existing_instruments(self):
        registry = MetricsRegistry()
        histogram = LatencyHistogram()
        gauge = Gauge()
        registry.register("repro_latency_seconds", histogram)
        registry.register("repro_depth", gauge)
        snapshot = registry.snapshot()
        assert snapshot["repro_latency_seconds"]["type"] == "histogram"
        assert snapshot["repro_depth"]["type"] == "gauge"

    def test_register_callback_needs_explicit_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="explicit kind"):
            registry.register("repro_cb", lambda: 1)
        registry.register("repro_cb", lambda: 41, kind="counter")
        (series,) = registry.snapshot()["repro_cb"]["series"]
        assert series["value"] == 41.0

    def test_register_occupied_key_needs_exist_ok(self):
        registry = MetricsRegistry()
        registry.register("repro_g", Gauge())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("repro_g", Gauge())
        replacement = Gauge(7)
        registry.register("repro_g", replacement, exist_ok=True)
        (series,) = registry.snapshot()["repro_g"]["series"]
        assert series["value"] == 7.0

    def test_register_same_object_twice_is_a_no_op(self):
        registry = MetricsRegistry()
        gauge = Gauge()
        registry.register("repro_g", gauge)
        assert registry.register("repro_g", gauge) is gauge

    def test_unregister_drops_series_then_family(self):
        registry = MetricsRegistry()
        registry.gauge("repro_lag", labels={"worker": "a"}).set(3)
        registry.gauge("repro_lag", labels={"worker": "b"}).set(5)
        assert registry.unregister("repro_lag", labels={"worker": "a"})
        snapshot = registry.snapshot()
        (series,) = snapshot["repro_lag"]["series"]
        assert series["labels"] == {"worker": "b"}
        # Dropping the last series removes the family entirely, and the
        # name becomes reusable (even under a different kind).
        assert registry.unregister("repro_lag", labels={"worker": "b"})
        assert "repro_lag" not in registry.snapshot()
        registry.counter("repro_lag").inc()
        # Absent name or labels: False, not an error.
        assert not registry.unregister("repro_never")
        assert not registry.unregister("repro_lag", labels={"worker": "z"})


class TestSnapshot:
    def test_histogram_series_is_internally_consistent(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat_seconds")
        for seconds in (0.001, 0.01, 2.0):
            histogram.record(seconds)
        (series,) = registry.snapshot()["repro_lat_seconds"]["series"]
        snap = series["value"]
        assert sum(snap["bucket_counts"]) == snap["count"] == 3
        assert snap["mean"] * snap["count"] == pytest.approx(snap["total"])

    def test_labelled_series_sorted_and_distinct(self):
        registry = MetricsRegistry()
        registry.counter("repro_ev_total", labels={"event": "hit"}).inc(2)
        registry.counter("repro_ev_total", labels={"event": "miss"}).inc(5)
        series = registry.snapshot()["repro_ev_total"]["series"]
        assert [s["labels"] for s in series] == [
            {"event": "hit"},
            {"event": "miss"},
        ]
        assert [s["value"] for s in series] == [2.0, 5.0]


def parse_prometheus(text: str) -> dict:
    """A deliberately strict mini-parser for the exposition format.

    Returns ``{metric_name: {"type": ..., "samples": {(sample_name,
    labels_tuple): value}}}`` and raises on any line it does not
    understand — the round-trip contract the renderer is held to.
    """
    import re

    metrics: dict = {}
    current = None
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$"
    )
    for line in text.splitlines():
        if not line:
            raise ValueError("blank line in exposition output")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"unknown type {kind!r}")
            current = metrics.setdefault(name, {"type": kind, "samples": {}})
            continue
        match = sample_re.match(line)
        if match is None or current is None:
            raise ValueError(f"unparseable sample line {line!r}")
        sample_name, _, raw_labels, raw_value = match.groups()
        labels = []
        if raw_labels:
            for pair in raw_labels.split(","):
                label, value = pair.split("=", 1)
                if not (value.startswith('"') and value.endswith('"')):
                    raise ValueError(f"unquoted label value in {line!r}")
                labels.append((label, value[1:-1]))
        value = float("inf") if raw_value == "+Inf" else float(raw_value)
        current["samples"][(sample_name, tuple(labels))] = value
    return metrics


class TestPrometheusRendering:
    def test_round_trips_through_a_parser(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", help="cache hits").inc(12)
        registry.gauge("repro_depth", labels={"queue": "admit"}).set(3)
        histogram = registry.histogram("repro_lat_seconds", help="latency")
        for seconds in (0.0005, 0.0005, 0.02):
            histogram.record(seconds)

        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["repro_hits_total"]["type"] == "counter"
        assert parsed["repro_hits_total"]["samples"][
            ("repro_hits_total", ())
        ] == 12.0
        assert parsed["repro_depth"]["samples"][
            ("repro_depth", (("queue", "admit"),))
        ] == 3.0
        histogram_samples = parsed["repro_lat_seconds"]["samples"]
        assert histogram_samples[("repro_lat_seconds_count", ())] == 3.0
        assert histogram_samples[("repro_lat_seconds_sum", ())] == pytest.approx(
            0.021
        )

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_h_seconds", bounds=(0.001, 0.01, 0.1)
        )
        for seconds in (0.0005, 0.005, 0.05, 5.0):
            histogram.record(seconds)
        samples = parse_prometheus(registry.render_prometheus())[
            "repro_h_seconds"
        ]["samples"]
        buckets = [
            value
            for (name, labels), value in sorted(samples.items())
            if name == "repro_h_seconds_bucket"
        ]
        # Cumulative, monotone, and the +Inf bucket equals the count.
        le_values = sorted(
            (dict(labels)["le"], value)
            for (name, labels), value in samples.items()
            if name == "repro_h_seconds_bucket"
        )
        by_le = dict(le_values)
        assert by_le["+Inf"] == 4.0
        assert by_le["0.001"] <= by_le["0.01"] <= by_le["0.1"] <= by_le["+Inf"]
        assert len(buckets) == 4

    def test_escapes_label_values_and_help(self):
        registry = MetricsRegistry()
        registry.counter(
            'repro_esc_total',
            help='line\nbreak',
            labels={"path": 'a"b\\c'},
        ).inc()
        text = registry.render_prometheus()
        assert '# HELP repro_esc_total line\\nbreak' in text
        assert 'path="a\\"b\\\\c"' in text
        parse_prometheus(text)  # still parseable after escaping

    def test_empty_registry_renders_empty_string(self):
        assert MetricsRegistry().render_prometheus() == ""
