"""Tests for the metrics registry and its Prometheus text renderer."""

import threading

import pytest

from repro.metrics.cost import Gauge, LatencyHistogram
from repro.obs.registry import Counter, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.value == 5

    def test_monotone(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)
        with pytest.raises(ValueError):
            Counter(-3)

    def test_threaded_increments_do_not_lose_counts(self):
        counter = Counter()

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestRegistryCreation:
    def test_get_or_create_shares_one_instrument_per_key(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_hits_total", help="hits")
        b = registry.counter("repro_hits_total")
        assert a is b
        labelled = registry.counter("repro_hits_total", labels={"kind": "warm"})
        assert labelled is not a

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("repro_thing")

    def test_invalid_names_and_labels_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_ok", labels={"bad-label": "x"})

    def test_register_absorbs_existing_instruments(self):
        registry = MetricsRegistry()
        histogram = LatencyHistogram()
        gauge = Gauge()
        registry.register("repro_latency_seconds", histogram)
        registry.register("repro_depth", gauge)
        snapshot = registry.snapshot()
        assert snapshot["repro_latency_seconds"]["type"] == "histogram"
        assert snapshot["repro_depth"]["type"] == "gauge"

    def test_register_callback_needs_explicit_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="explicit kind"):
            registry.register("repro_cb", lambda: 1)
        registry.register("repro_cb", lambda: 41, kind="counter")
        (series,) = registry.snapshot()["repro_cb"]["series"]
        assert series["value"] == 41.0

    def test_register_occupied_key_needs_exist_ok(self):
        registry = MetricsRegistry()
        registry.register("repro_g", Gauge())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("repro_g", Gauge())
        replacement = Gauge(7)
        registry.register("repro_g", replacement, exist_ok=True)
        (series,) = registry.snapshot()["repro_g"]["series"]
        assert series["value"] == 7.0

    def test_register_same_object_twice_is_a_no_op(self):
        registry = MetricsRegistry()
        gauge = Gauge()
        registry.register("repro_g", gauge)
        assert registry.register("repro_g", gauge) is gauge

    def test_unregister_drops_series_then_family(self):
        registry = MetricsRegistry()
        registry.gauge("repro_lag", labels={"worker": "a"}).set(3)
        registry.gauge("repro_lag", labels={"worker": "b"}).set(5)
        assert registry.unregister("repro_lag", labels={"worker": "a"})
        snapshot = registry.snapshot()
        (series,) = snapshot["repro_lag"]["series"]
        assert series["labels"] == {"worker": "b"}
        # Dropping the last series removes the family entirely, and the
        # name becomes reusable (even under a different kind).
        assert registry.unregister("repro_lag", labels={"worker": "b"})
        assert "repro_lag" not in registry.snapshot()
        registry.counter("repro_lag").inc()
        # Absent name or labels: False, not an error.
        assert not registry.unregister("repro_never")
        assert not registry.unregister("repro_lag", labels={"worker": "z"})


class TestSnapshot:
    def test_histogram_series_is_internally_consistent(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat_seconds")
        for seconds in (0.001, 0.01, 2.0):
            histogram.record(seconds)
        (series,) = registry.snapshot()["repro_lat_seconds"]["series"]
        snap = series["value"]
        assert sum(snap["bucket_counts"]) == snap["count"] == 3
        assert snap["mean"] * snap["count"] == pytest.approx(snap["total"])

    def test_labelled_series_sorted_and_distinct(self):
        registry = MetricsRegistry()
        registry.counter("repro_ev_total", labels={"event": "hit"}).inc(2)
        registry.counter("repro_ev_total", labels={"event": "miss"}).inc(5)
        series = registry.snapshot()["repro_ev_total"]["series"]
        assert [s["labels"] for s in series] == [
            {"event": "hit"},
            {"event": "miss"},
        ]
        assert [s["value"] for s in series] == [2.0, 5.0]


def parse_prometheus(text: str) -> dict:
    """A deliberately strict mini-parser for the exposition format.

    Returns ``{metric_name: {"type": ..., "samples": {(sample_name,
    labels_tuple): value}, "exemplars": {...}}}`` and raises on any line
    it does not understand — the round-trip contract the renderer is
    held to.  An OpenMetrics exemplar tail (`` # {trace_id="..."} v``)
    is only legal on histogram ``_bucket`` samples, and its labels obey
    the same quoting rules as sample labels.
    """
    import re

    metrics: dict = {}
    current = None
    # One label pair: name="value" with backslash escapes — the value may
    # contain '}' and ',' (route templates do), so the grammar is built
    # from quoted pairs, not from "anything but a closing brace".
    pair = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    labels_block = rf"(?:{pair}(?:,{pair})*)?"
    sample_re = re.compile(
        rf"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{{({labels_block})\}})? (\S+)"
        rf"(?: # \{{({labels_block})\}} (\S+))?$"
    )
    pair_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)')

    def parse_labels(raw: str, line: str) -> tuple:
        labels, pos = [], 0
        while pos < len(raw):
            match = pair_re.match(raw, pos)
            if match is None:
                raise ValueError(f"bad label pair in {line!r}")
            labels.append((match.group(1), match.group(2)))
            pos = match.end()
        return tuple(labels)

    for line in text.splitlines():
        if not line:
            raise ValueError("blank line in exposition output")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"unknown type {kind!r}")
            current = metrics.setdefault(
                name, {"type": kind, "samples": {}, "exemplars": {}}
            )
            continue
        match = sample_re.match(line)
        if match is None or current is None:
            raise ValueError(f"unparseable sample line {line!r}")
        sample_name, _, raw_labels, raw_value, raw_ex_labels, raw_ex_value = (
            match.groups()
        )
        labels = parse_labels(raw_labels, line) if raw_labels else ()
        value = float("inf") if raw_value == "+Inf" else float(raw_value)
        key = (sample_name, labels)
        current["samples"][key] = value
        if raw_ex_labels is not None:
            if not sample_name.endswith("_bucket"):
                raise ValueError(f"exemplar on a non-bucket sample {line!r}")
            current["exemplars"][key] = {
                "labels": parse_labels(raw_ex_labels, line),
                "value": float(raw_ex_value),
            }
    return metrics


class TestPrometheusRendering:
    def test_round_trips_through_a_parser(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", help="cache hits").inc(12)
        registry.gauge("repro_depth", labels={"queue": "admit"}).set(3)
        histogram = registry.histogram("repro_lat_seconds", help="latency")
        for seconds in (0.0005, 0.0005, 0.02):
            histogram.record(seconds)

        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["repro_hits_total"]["type"] == "counter"
        assert parsed["repro_hits_total"]["samples"][
            ("repro_hits_total", ())
        ] == 12.0
        assert parsed["repro_depth"]["samples"][
            ("repro_depth", (("queue", "admit"),))
        ] == 3.0
        histogram_samples = parsed["repro_lat_seconds"]["samples"]
        assert histogram_samples[("repro_lat_seconds_count", ())] == 3.0
        assert histogram_samples[("repro_lat_seconds_sum", ())] == pytest.approx(
            0.021
        )

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_h_seconds", bounds=(0.001, 0.01, 0.1)
        )
        for seconds in (0.0005, 0.005, 0.05, 5.0):
            histogram.record(seconds)
        samples = parse_prometheus(registry.render_prometheus())[
            "repro_h_seconds"
        ]["samples"]
        buckets = [
            value
            for (name, labels), value in sorted(samples.items())
            if name == "repro_h_seconds_bucket"
        ]
        # Cumulative, monotone, and the +Inf bucket equals the count.
        le_values = sorted(
            (dict(labels)["le"], value)
            for (name, labels), value in samples.items()
            if name == "repro_h_seconds_bucket"
        )
        by_le = dict(le_values)
        assert by_le["+Inf"] == 4.0
        assert by_le["0.001"] <= by_le["0.01"] <= by_le["0.1"] <= by_le["+Inf"]
        assert len(buckets) == 4

    def test_escapes_label_values_and_help(self):
        registry = MetricsRegistry()
        registry.counter(
            'repro_esc_total',
            help='line\nbreak',
            labels={"path": 'a"b\\c'},
        ).inc()
        text = registry.render_prometheus()
        assert '# HELP repro_esc_total line\\nbreak' in text
        assert 'path="a\\"b\\\\c"' in text
        parse_prometheus(text)  # still parseable after escaping

    def test_empty_registry_renders_empty_string(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestExemplars:
    def test_record_keeps_slowest_trace_per_bucket_ties_to_latest(self):
        histogram = LatencyHistogram(bounds=(0.01, 0.1))
        histogram.record(0.002, trace_id="t-fast")
        histogram.record(0.009, trace_id="t-slow")
        histogram.record(0.004, trace_id="t-mid")
        histogram.record(0.009, trace_id="t-tie-latest")
        histogram.record(0.05)  # untraced: no exemplar for this bucket
        snap = histogram.snapshot()
        assert snap["exemplars"] == {
            0: {"trace_id": "t-tie-latest", "value": 0.009}
        }
        assert histogram.slowest_exemplar() == {
            "trace_id": "t-tie-latest",
            "value": 0.009,
        }

    def test_merge_snapshot_is_keep_slowest_and_order_independent(self):
        def make(trace_id, seconds):
            histogram = LatencyHistogram(bounds=(0.01, 0.1))
            histogram.record(seconds, trace_id=trace_id)
            return histogram.snapshot()

        a, b = make("worker-a", 0.003), make("worker-b", 0.007)
        ab = LatencyHistogram(bounds=(0.01, 0.1))
        ab.merge_snapshot(a)
        ab.merge_snapshot(b)
        ba = LatencyHistogram(bounds=(0.01, 0.1))
        ba.merge_snapshot(b)
        ba.merge_snapshot(a)
        # Counts add; exemplars do NOT add — the slowest one wins in
        # either merge order, and the other is dropped, not summed.
        for merged in (ab, ba):
            snap = merged.snapshot()
            assert snap["count"] == 2
            assert snap["exemplars"] == {
                0: {"trace_id": "worker-b", "value": 0.007}
            }

    def test_merge_snapshot_equal_values_break_ties_on_trace_id(self):
        def snap_with(trace_id):
            histogram = LatencyHistogram(bounds=(0.01,))
            histogram.record(0.005, trace_id=trace_id)
            return histogram.snapshot()

        for order in (("aaa", "zzz"), ("zzz", "aaa")):
            merged = LatencyHistogram(bounds=(0.01,))
            for trace_id in order:
                merged.merge_snapshot(snap_with(trace_id))
            assert merged.snapshot()["exemplars"][0]["trace_id"] == "zzz"

    def test_merge_snapshot_survives_json_round_trip(self):
        import json

        histogram = LatencyHistogram(bounds=(0.01, 0.1))
        histogram.record(0.05, trace_id="deadbeef")
        wire = json.loads(json.dumps(histogram.snapshot()))
        merged = LatencyHistogram(bounds=(0.01, 0.1)).merge_snapshot(wire)
        assert merged.snapshot()["exemplars"] == {
            1: {"trace_id": "deadbeef", "value": 0.05}
        }

    def test_renderer_emits_openmetrics_exemplars(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_ex_seconds", bounds=(0.01, 0.1), labels={"endpoint": "/runs"}
        )
        histogram.record(0.003, trace_id="abc123")
        histogram.record(5.0, trace_id="overflow1")  # lands in +Inf
        text = registry.render_prometheus()
        parsed = parse_prometheus(text)
        exemplars = parsed["repro_ex_seconds"]["exemplars"]
        key_fast = (
            "repro_ex_seconds_bucket",
            (("endpoint", "/runs"), ("le", "0.01")),
        )
        key_inf = (
            "repro_ex_seconds_bucket",
            (("endpoint", "/runs"), ("le", "+Inf")),
        )
        assert exemplars[key_fast] == {
            "labels": (("trace_id", "abc123"),),
            "value": 0.003,
        }
        assert exemplars[key_inf] == {
            "labels": (("trace_id", "overflow1"),),
            "value": 5.0,
        }

    def test_registry_merge_same_bucket_from_two_workers(self):
        # Regression for the merge hazard: two workers land in the same
        # bucket; the merged registry must count both observations but
        # keep exactly one exemplar — the slowest — regardless of which
        # worker is merged first.
        def worker_snapshot(trace_id, seconds):
            registry = MetricsRegistry()
            registry.histogram("repro_m_seconds", bounds=(0.01,)).record(
                seconds, trace_id=trace_id
            )
            return registry.snapshot()

        merged = MetricsRegistry()
        merged.merge(worker_snapshot("w0-trace", 0.004), labels={"worker": "x"})
        merged.merge(worker_snapshot("w1-trace", 0.002), labels={"worker": "x"})
        (series,) = merged.snapshot()["repro_m_seconds"]["series"]
        assert series["value"]["count"] == 2
        assert series["value"]["exemplars"] == {
            0: {"trace_id": "w0-trace", "value": 0.004}
        }
        parse_prometheus(merged.render_prometheus())

    def test_exemplar_on_non_bucket_sample_is_rejected_by_parser(self):
        with pytest.raises(ValueError, match="non-bucket"):
            parse_prometheus(
                "# TYPE repro_x counter\n"
                'repro_x 3 # {trace_id="oops"} 0.1\n'
            )
