"""Table III coverage: the VFL pipeline holds on every paper dataset.

Party counts are capped for test speed (the full counts run via
``python -m repro.experiments --full``); every dataset still goes through
train → DIG-FL → exact Shapley → PCC.
"""

import numpy as np
import pytest

from repro.data import VFL_DATASETS
from repro.scenario import VFLScenario

LINREG = [k for k, v in VFL_DATASETS.items() if v.vfl_model == "linreg"]
LOGREG = [k for k, v in VFL_DATASETS.items() if v.vfl_model == "logreg"]


@pytest.mark.parametrize("dataset", LINREG)
def test_linreg_datasets(dataset):
    result = VFLScenario(
        dataset=dataset,
        n_parties=min(6, VFL_DATASETS[dataset].vfl_parties),
        epochs=20,
        max_rows=400,
        compute_exact=True,
        seed=17,
    ).run()
    assert result.pcc > 0.85, f"{dataset}: PCC {result.pcc:.3f}"
    assert result.validation_score > 0.2, f"{dataset}: R² {result.validation_score}"


@pytest.mark.parametrize("dataset", LOGREG)
def test_logreg_datasets(dataset):
    result = VFLScenario(
        dataset=dataset,
        n_parties=min(6, VFL_DATASETS[dataset].vfl_parties),
        epochs=25,
        max_rows=400,
        compute_exact=True,
        seed=17,
    ).run()
    assert result.pcc > 0.75, f"{dataset}: PCC {result.pcc:.3f}"
    assert result.validation_score > 0.55, f"{dataset}: acc {result.validation_score}"


def test_all_ten_datasets_covered():
    assert len(LINREG) + len(LOGREG) == 10


def test_rankings_mostly_agree():
    """Across datasets, DIG-FL's top party matches the exact top party in
    the overwhelming majority of cases."""
    agreements = []
    for dataset, parties in (("boston", 5), ("iris", 4), ("wine_quality", 5)):
        result = VFLScenario(
            dataset=dataset, n_parties=parties, epochs=20, max_rows=300,
            compute_exact=True, seed=23,
        ).run()
        agreements.append(
            int(np.argmax(result.digfl.totals)) == int(np.argmax(result.exact.totals))
        )
    assert sum(agreements) >= 2
