"""Tests for the encrypted VFL protocol (Algorithm 3) against plaintext."""

import numpy as np
import pytest

from repro.data import boston_like, build_vfl_federation
from repro.nn import LRSchedule
from repro.vfl import VFLTrainer, build_encrypted_session
from repro.vfl.encrypted import EncryptedParty, EncryptedVFLSession, TrustedThirdParty

KEY_BITS = 256  # small keys: correctness only, paper uses 1024


@pytest.fixture(scope="module")
def small_split():
    ds = boston_like(seed=0).standardized()
    return build_vfl_federation(ds, 3, max_rows=50, seed=1)


@pytest.fixture(scope="module")
def encrypted_run(small_split):
    sched = LRSchedule(0.1)
    Xb = [small_split.train.X[:, b] for b in small_split.feature_blocks]
    Xvb = [small_split.validation.X[:, b] for b in small_split.feature_blocks]
    session = build_encrypted_session(
        "regression", Xb, small_split.train.y, sched, epochs=4,
        key_bits=KEY_BITS, seed=11,
    )
    result = session.train(small_split.train.y, small_split.validation.y, Xvb)
    return small_split, result


class TestEquivalenceWithPlaintext:
    def test_theta_matches(self, encrypted_run):
        split, enc = encrypted_run
        trainer = VFLTrainer("regression", split.feature_blocks, 4, LRSchedule(0.1))
        plain = trainer.train(split.train, split.validation)
        plain_blocks = np.concatenate([plain.theta[b] for b in split.feature_blocks])
        np.testing.assert_allclose(enc.theta, plain_blocks, atol=1e-7)

    def test_contributions_match_digfl(self, encrypted_run):
        """The parties' self-computed φ̂ must equal the plaintext estimator."""
        from repro.core import estimate_vfl_first_order

        split, enc = encrypted_run
        trainer = VFLTrainer("regression", split.feature_blocks, 4, LRSchedule(0.1))
        plain = trainer.train(split.train, split.validation)
        report = estimate_vfl_first_order(plain.log)
        np.testing.assert_allclose(enc.contributions, report.totals, atol=1e-6)

    def test_per_epoch_shape(self, encrypted_run):
        _, enc = encrypted_run
        assert enc.per_epoch_contributions.shape == (4, 3)


class TestCostAccounting:
    def test_communication_recorded(self, encrypted_run):
        _, enc = encrypted_run
        assert enc.ledger.comm_bytes["party->party"] > 0
        assert enc.ledger.comm_bytes["party->ttp"] > 0
        assert enc.ledger.comm_bytes["ttp->party"] > 0

    def test_ciphertexts_dominate_traffic(self, encrypted_run):
        """Encrypted residual chains are ~2×key-size per sample, far above
        the plaintext floats going back."""
        _, enc = encrypted_run
        assert enc.ledger.comm_bytes["party->party"] > enc.ledger.comm_bytes["ttp->party"]

    def test_compute_time_recorded(self, encrypted_run):
        _, enc = encrypted_run
        assert enc.ledger.compute_seconds > 0


class TestLogisticTaylor:
    def test_taylor_logreg_matches_plaintext_taylor(self):
        """Encrypted logistic (Taylor residual) vs a plaintext replica."""
        rng = np.random.default_rng(5)
        m, blocks = 40, [np.array([0, 1]), np.array([2, 3])]
        X = rng.normal(size=(m, 4))
        y = (X @ np.array([1.0, -1.0, 0.5, 0.0]) > 0).astype(float)
        sched = LRSchedule(0.2)
        Xb = [X[:, b] for b in blocks]
        session = build_encrypted_session(
            "binary", Xb, y, sched, epochs=3, key_bits=KEY_BITS, seed=2
        )
        enc = session.train(y, y, Xb)

        # Plaintext Taylor replica.
        theta = np.zeros(4)
        for epoch in range(1, 4):
            d = 0.25 * (X @ theta) + 0.5 - y
            grad = X.T @ d / m
            theta = theta - sched.lr_at(epoch) * grad
        plain_blocks = np.concatenate([theta[b] for b in blocks])
        np.testing.assert_allclose(enc.theta, plain_blocks, atol=1e-7)


class TestEncryptedReweighting:
    def test_matches_plaintext_reweighted_trainer(self, small_split):
        """Encrypted Eq. 31 reweighting == plaintext VFLDIGFLReweighter."""
        from repro.core import VFLDIGFLReweighter

        sched = LRSchedule(0.1)
        epochs = 4
        Xb = [small_split.train.X[:, b] for b in small_split.feature_blocks]
        Xvb = [small_split.validation.X[:, b] for b in small_split.feature_blocks]
        session = build_encrypted_session(
            "regression", Xb, small_split.train.y, sched, epochs,
            key_bits=KEY_BITS, seed=9,
        )
        enc = session.train(
            small_split.train.y, small_split.validation.y, Xvb, reweight=True
        )

        trainer = VFLTrainer(
            "regression", small_split.feature_blocks, epochs, sched
        )
        plain = trainer.train(
            small_split.train,
            small_split.validation,
            reweighter=VFLDIGFLReweighter(small_split.feature_blocks),
        )
        plain_blocks = np.concatenate(
            [plain.theta[b] for b in small_split.feature_blocks]
        )
        np.testing.assert_allclose(enc.theta, plain_blocks, atol=1e-6)

    def test_weights_recorded(self, small_split):
        sched = LRSchedule(0.1)
        Xb = [small_split.train.X[:, b] for b in small_split.feature_blocks]
        Xvb = [small_split.validation.X[:, b] for b in small_split.feature_blocks]
        session = build_encrypted_session(
            "regression", Xb, small_split.train.y, sched, 2,
            key_bits=KEY_BITS, seed=10,
        )
        enc = session.train(
            small_split.train.y, small_split.validation.y, Xvb, reweight=True
        )
        assert enc.weights.shape == (2, 3)
        # Eq. 31 scaling: weights sum to n when any contribution is positive.
        for row in enc.weights:
            assert row.sum() == pytest.approx(3.0, abs=1e-9) or np.allclose(row, 1.0)

    def test_no_reweight_weights_are_ones(self, encrypted_run):
        _, enc = encrypted_run
        np.testing.assert_allclose(enc.weights, 1.0)


class TestProtocolValidation:
    def test_label_holder_must_be_party_zero(self):
        ttp = TrustedThirdParty.create(KEY_BITS, seed=0)
        parties = [EncryptedParty(0, np.ones((4, 1)), ttp.public_key)]  # no labels
        with pytest.raises(ValueError, match="labels"):
            EncryptedVFLSession("regression", parties, ttp, LRSchedule(0.1), 1)

    def test_unknown_task(self):
        ttp = TrustedThirdParty.create(KEY_BITS, seed=0)
        parties = [
            EncryptedParty(0, np.ones((4, 1)), ttp.public_key, y=np.ones(4))
        ]
        with pytest.raises(ValueError, match="task"):
            EncryptedVFLSession("multiclass", parties, ttp, LRSchedule(0.1), 1)

    def test_residual_chain_needs_label_holder(self):
        ttp = TrustedThirdParty.create(KEY_BITS, seed=0)
        party = EncryptedParty(1, np.ones((4, 1)), ttp.public_key)
        with pytest.raises(RuntimeError, match="label holder"):
            party.start_residual_chain(np.zeros(4))

    def test_gradient_row_mismatch(self):
        ttp = TrustedThirdParty.create(KEY_BITS, seed=0)
        party = EncryptedParty(0, np.ones((4, 1)), ttp.public_key, y=np.ones(4))
        chain = party.start_residual_chain(-np.ones(4))
        with pytest.raises(ValueError, match="rows"):
            party.encrypted_gradient(chain[:2], 1, "train", scale=1.0)


class TestManyPartyChain:
    def test_five_party_regression_matches_plaintext(self):
        """The residual chain generalises beyond the paper's 2-party
        running example; verify a 5-party ring against the simulator."""
        from repro.data import boston_like, build_vfl_federation

        dataset = boston_like(seed=3).standardized()
        split = build_vfl_federation(dataset, 5, max_rows=40, seed=3)
        sched = LRSchedule(0.1)
        Xb = [split.train.X[:, b] for b in split.feature_blocks]
        Xvb = [split.validation.X[:, b] for b in split.feature_blocks]
        session = build_encrypted_session(
            "regression", Xb, split.train.y, sched, 3, key_bits=KEY_BITS, seed=12
        )
        assert len(session.parties) == 5
        enc = session.train(split.train.y, split.validation.y, Xvb)

        trainer = VFLTrainer("regression", split.feature_blocks, 3, sched)
        plain = trainer.train(split.train, split.validation)
        plain_blocks = np.concatenate([plain.theta[b] for b in split.feature_blocks])
        np.testing.assert_allclose(enc.theta, plain_blocks, atol=1e-7)

    def test_chain_traffic_grows_with_parties(self):
        """Each extra party adds one more pass of the encrypted chain."""
        from repro.data import boston_like, build_vfl_federation

        dataset = boston_like(seed=4).standardized()

        def run(n_parties):
            split = build_vfl_federation(dataset, n_parties, max_rows=30, seed=4)
            Xb = [split.train.X[:, b] for b in split.feature_blocks]
            Xvb = [split.validation.X[:, b] for b in split.feature_blocks]
            session = build_encrypted_session(
                "regression", Xb, split.train.y, LRSchedule(0.1), 1,
                key_bits=KEY_BITS, seed=13,
            )
            result = session.train(split.train.y, split.validation.y, Xvb)
            return result.ledger.comm_bytes["party->party"]

        assert run(4) > run(2)


class TestMaskingHidesGradients:
    def test_ttp_sees_masked_values_only(self, small_split):
        """What the third-party decrypts differs from the true gradient."""
        sched = LRSchedule(0.1)
        Xb = [small_split.train.X[:, b] for b in small_split.feature_blocks]
        session = build_encrypted_session(
            "regression", Xb, small_split.train.y, sched, epochs=1,
            key_bits=KEY_BITS, seed=3,
        )
        party = session.parties[0]
        chain = party.start_residual_chain(-small_split.train.y)
        for other in session.parties[1:]:
            chain = other.add_to_chain(chain)
        m = len(small_split.train.y)
        enc_grad = party.encrypted_gradient(chain, 1, "train", scale=2.0 / m)
        masked = session.ttp.decrypt_vector(enc_grad)
        true_grad = 2.0 / m * Xb[0].T @ (
            np.concatenate([Xb[i] @ session.parties[i].theta for i in range(3)])
            .reshape(3, m)
            .sum(axis=0)
            - small_split.train.y
        )
        assert not np.allclose(masked, true_grad, atol=1e-3)
        np.testing.assert_allclose(
            party.unmask(1, "train", masked), true_grad, atol=1e-7
        )
