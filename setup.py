"""Setup shim for offline editable installs (`pip install -e . --no-use-pep517`).

The environment has no network access and no `wheel` package, so the modern
PEP 517 editable path (which builds a wheel) is unavailable; this file lets
pip fall back to `setup.py develop`.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
